//! Property tests for the schema substrate: content-model membership
//! (Glushkov construction) against brute-force language enumeration, the
//! sibling-order relation `<_r`, and the chain folding underlying Lemma 5.2.

use proptest::prelude::*;
use std::collections::HashSet;
use xml_qui::core::Universe;
use xml_qui::schema::{Chain, ContentModel, Dtd, SchemaLike, Sym};

// ---------------------------------------------------------------------------
// Content models
// ---------------------------------------------------------------------------

/// Strategy producing random content models over the symbols 1..=3.
fn content_model_strategy() -> impl Strategy<Value = ContentModel> {
    let leaf = prop_oneof![
        Just(ContentModel::Epsilon),
        (1u16..=3).prop_map(|i| ContentModel::sym(Sym(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(ContentModel::seq),
            prop::collection::vec(inner.clone(), 1..3).prop_map(ContentModel::alt),
            inner.clone().prop_map(ContentModel::star),
            inner.clone().prop_map(ContentModel::plus),
            inner.prop_map(ContentModel::opt),
        ]
    })
}

/// All words of length ≤ `n` in the language of `cm`, by brute force.
fn lang_up_to(cm: &ContentModel, n: usize) -> HashSet<Vec<Sym>> {
    match cm {
        ContentModel::Epsilon => [vec![]].into_iter().collect(),
        ContentModel::Symbol(s) => {
            if n >= 1 {
                [vec![*s]].into_iter().collect()
            } else {
                HashSet::new()
            }
        }
        ContentModel::Seq(parts) => {
            let mut acc: HashSet<Vec<Sym>> = [vec![]].into_iter().collect();
            for part in parts {
                let part_words = lang_up_to(part, n);
                let mut next = HashSet::new();
                for prefix in &acc {
                    for w in &part_words {
                        if prefix.len() + w.len() <= n {
                            let mut joined = prefix.clone();
                            joined.extend(w.iter().copied());
                            next.insert(joined);
                        }
                    }
                }
                acc = next;
            }
            acc
        }
        ContentModel::Alt(parts) => parts.iter().flat_map(|p| lang_up_to(p, n)).collect(),
        ContentModel::Opt(inner) => {
            let mut out = lang_up_to(inner, n);
            out.insert(vec![]);
            out
        }
        ContentModel::Plus(inner) => {
            let once = lang_up_to(inner, n);
            star_of(&once, n, false)
        }
        ContentModel::Star(inner) => {
            let once = lang_up_to(inner, n);
            star_of(&once, n, true)
        }
    }
}

/// Closure of a word set under concatenation, bounded by length `n`.
fn star_of(once: &HashSet<Vec<Sym>>, n: usize, include_empty: bool) -> HashSet<Vec<Sym>> {
    let mut out: HashSet<Vec<Sym>> = if include_empty {
        [vec![]].into_iter().collect()
    } else {
        once.clone()
    };
    loop {
        let mut grew = false;
        let current: Vec<Vec<Sym>> = out.iter().cloned().collect();
        for w in &current {
            for extra in once {
                if w.len() + extra.len() <= n && !extra.is_empty() {
                    let mut joined = w.clone();
                    joined.extend(extra.iter().copied());
                    if out.insert(joined) {
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            return out;
        }
    }
}

/// All words over {1,2,3} of length ≤ n.
fn all_words(n: usize) -> Vec<Vec<Sym>> {
    let mut out = vec![vec![]];
    let mut frontier = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for w in &frontier {
            for s in 1u16..=3 {
                let mut ext = w.clone();
                ext.push(Sym(s));
                next.push(ext);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Glushkov-based `matches` agrees with brute-force enumeration of
    /// the language, on every word up to length 4.
    #[test]
    fn membership_agrees_with_enumeration(cm in content_model_strategy()) {
        let n = 4;
        let lang = lang_up_to(&cm, n);
        for word in all_words(n) {
            let brute = lang.contains(&word);
            let fast = cm.matches(&word);
            prop_assert_eq!(
                brute,
                fast,
                "model {} disagrees on word {:?}",
                cm.display_with(&|s: Sym| format!("s{}", s.0)),
                word
            );
        }
    }

    /// `nullable` is exactly "the empty word is in the language".
    #[test]
    fn nullable_matches_empty_word(cm in content_model_strategy()) {
        prop_assert_eq!(cm.nullable(), cm.matches(&[]));
    }

    /// Every ordered pair observed in an enumerated word is in `<_r`.
    #[test]
    fn before_pairs_cover_enumerated_words(cm in content_model_strategy()) {
        let pairs = cm.before_pairs();
        for word in lang_up_to(&cm, 5) {
            for i in 0..word.len() {
                for j in i + 1..word.len() {
                    prop_assert!(
                        pairs.contains(&(word[i], word[j])),
                        "word {:?} of {} exhibits ({:?},{:?}) not in <_r",
                        word,
                        cm.display_with(&|s: Sym| format!("s{}", s.0)),
                        word[i],
                        word[j]
                    );
                }
            }
        }
    }

    /// Symbols reported by `before_pairs` really occur in the expression.
    #[test]
    fn before_pairs_only_mention_occurring_symbols(cm in content_model_strategy()) {
        let symbols = cm.symbols();
        for (a, b) in cm.before_pairs() {
            prop_assert!(symbols.contains(&a) && symbols.contains(&b));
        }
    }
}

// ---------------------------------------------------------------------------
// Chain folding (the relation behind Lemma 5.2)
// ---------------------------------------------------------------------------

/// The recursive schema `d1` of §5.
fn d1() -> Dtd {
    Dtd::builder()
        .rule("r", "a")
        .rule("a", "(b, c, e)*")
        .rule("b", "f")
        .rule("c", "f")
        .rule("e", "f")
        .rule("f", "(a, g)")
        .rule("g", "EMPTY")
        .build("r")
        .unwrap()
}

/// All foldings of a chain: `c.a.c'.a.c'' ↪ c.a.c''` for a recursive symbol
/// `a` occurring twice.
fn foldings(dtd: &Dtd, chain: &Chain) -> Vec<Chain> {
    let syms = chain.symbols();
    let mut out = Vec::new();
    for i in 0..syms.len() {
        if !dtd.is_recursive_sym(syms[i]) {
            continue;
        }
        for j in i + 1..syms.len() {
            if syms[j] == syms[i] {
                let mut folded: Vec<Sym> = syms[..=i].to_vec();
                folded.extend_from_slice(&syms[j + 1..]);
                out.push(Chain::from_slice(&folded));
            }
        }
    }
    out
}

#[test]
fn foldings_stay_within_the_schema() {
    let dtd = d1();
    let universe = Universe::with_k(&dtd, 3);
    let chains = universe
        .rooted_chains(50_000)
        .expect("k-bounded chain set is finite");
    let mut folded_something = false;
    for chain in &chains {
        for folded in foldings(&dtd, chain) {
            folded_something = true;
            assert!(
                dtd.is_chain(&folded),
                "folding {} of {} left the schema",
                dtd.show_chain(&folded),
                dtd.show_chain(chain)
            );
            assert!(folded.len() < chain.len());
        }
    }
    assert!(folded_something, "the recursive schema must admit foldings");
}

#[test]
fn repeated_folding_reaches_a_k_chain() {
    // Lemma 5.2's engine: any chain can be folded down until every symbol
    // occurs at most once more than the recursion forces — here we check the
    // weaker, directly testable statement that folding terminates in a
    // 1-chain (no symbol repeated) for every 3-chain of d1.
    let dtd = d1();
    let universe = Universe::with_k(&dtd, 3);
    let chains = universe.rooted_chains(50_000).unwrap();
    for chain in &chains {
        let mut current = chain.clone();
        let mut guard = 0;
        while !current.is_k_chain(1) {
            let next = foldings(&dtd, &current)
                .into_iter()
                .find(|c| dtd.is_chain(c))
                .unwrap_or_else(|| {
                    panic!(
                        "chain {} has a repeated symbol but no applicable folding",
                        dtd.show_chain(&current)
                    )
                });
            current = next;
            guard += 1;
            assert!(guard < 64, "folding failed to terminate");
        }
        assert!(dtd.is_chain(&current));
        assert_eq!(current.first(), chain.first());
        assert_eq!(current.last(), chain.last());
    }
}

#[test]
fn k_chain_sets_are_nested() {
    // C_d^k ⊆ C_d^{k+1}: the finite analyses form a chain of refinements.
    let dtd = d1();
    let small: HashSet<Chain> = Universe::with_k(&dtd, 2)
        .rooted_chains(50_000)
        .unwrap()
        .into_iter()
        .collect();
    let large: HashSet<Chain> = Universe::with_k(&dtd, 3)
        .rooted_chains(200_000)
        .unwrap()
        .into_iter()
        .collect();
    assert!(small.len() < large.len());
    for c in &small {
        assert!(large.contains(c), "{} missing from C^3", dtd.show_chain(c));
    }
}
