//! Concurrency tests for the session's `&self` read path and the serving
//! layer on top of it:
//!
//! * **N-thread bit-identity** — many threads hammering `check()` on one
//!   shared session produce verdicts bit-identical (every `Verdict` field,
//!   witnesses included) to a fresh single-threaded analyzer, across engine
//!   policies and explicit budgets (including the overflow → CDAG fallback);
//! * **interleaved edits** — readers running ad-hoc checks while another
//!   thread edits the workload never observe a torn matrix, and the final
//!   session state matches a from-scratch `analyze_matrix`;
//! * an HTTP smoke test through the public facade: the wire verdict equals
//!   the in-process one.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use xml_qui::core::parallel::{analyze_matrix, Jobs};
use xml_qui::core::{
    AnalyzerConfig, EngineKind, IndependenceAnalyzer, Json, Request, Response, ServeConfig, Server,
    SessionBuilder, SessionRegistry, SharedSession, Verdict,
};
use xml_qui::schema::Dtd;
use xml_qui::xquery::{parse_query, parse_update, Query, Update};

const FIG1: &str = "doc -> (a|b)* ; a -> c ; b -> c";
/// Heavily recursive: small explicit budgets overflow here, forcing the
/// CDAG fallback inside the concurrent read path.
const RECURSIVE: &str = "a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*";

const QUERIES: &[&str] = &["//a", "//c", "//b//c", "//a//c", "//b//c//b"];
const UPDATES: &[&str] = &[
    "delete //b//c",
    "delete //c",
    "delete //c//b//c",
    "for $x in //b return insert <d/> into $x",
];

/// Bit-level equality of two verdicts (every observable field; `Verdict`
/// deliberately does not implement `PartialEq`).
fn verdicts_eq(a: &Verdict, b: &Verdict) -> bool {
    a.is_independent() == b.is_independent()
        && a.k == b.k
        && a.k_query == b.k_query
        && a.k_update == b.k_update
        && a.engine_used == b.engine_used
        && a.witness == b.witness
        && a.query_chain_count == b.query_chain_count
        && a.update_chain_count == b.update_chain_count
}

fn pairs() -> Vec<(Query, Update)> {
    QUERIES
        .iter()
        .flat_map(|q| UPDATES.iter().map(move |u| (q, u)))
        .map(|(q, u)| (parse_query(q).unwrap(), parse_update(u).unwrap()))
        .collect()
}

/// The tentpole acceptance test: 8 threads × repeated `check()` calls on one
/// shared session agree bit-for-bit with a fresh single-threaded analyzer,
/// for every engine policy and for budgets on both sides of the explicit
/// overflow threshold.
#[test]
fn concurrent_checks_are_bit_identical_across_engines_and_budgets() {
    let threads = 8;
    for schema in [FIG1, RECURSIVE] {
        let start = if schema == FIG1 { "doc" } else { "a" };
        let dtd = Dtd::parse_compact(schema, start).unwrap();
        for engine in [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag] {
            for budget in [60usize, 20_000] {
                let config = AnalyzerConfig {
                    engine,
                    explicit_budget: budget,
                    ..Default::default()
                };
                let analyzer = IndependenceAnalyzer::with_config(&dtd, config.clone());
                let pairs = pairs();
                let expected: Vec<Verdict> =
                    pairs.iter().map(|(q, u)| analyzer.check(q, u)).collect();
                let session = SessionBuilder::new(&dtd).config(config).build();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let (session, pairs, expected) = (&session, &pairs, &expected);
                        s.spawn(move || {
                            // Stagger the starting offset so threads race on
                            // *different* cold cache entries, not in lockstep.
                            for round in 0..2 {
                                for i in 0..pairs.len() {
                                    let i = (i + t * 3) % pairs.len();
                                    let (q, u) = &pairs[i];
                                    let v = session.check(q, u);
                                    assert!(
                                        verdicts_eq(&v, &expected[i]),
                                        "thread {t} round {round} pair {i} diverged \
                                         ({engine:?}, budget {budget}):\n  \
                                         concurrent: {v:?}\n  fresh:      {:?}",
                                        expected[i]
                                    );
                                }
                            }
                        });
                    }
                });
            }
        }
    }
}

/// Readers doing ad-hoc checks while another thread edits the workload:
/// every matrix snapshot a reader sees is internally consistent, ad-hoc
/// verdicts never waver, and the final state matches a from-scratch
/// analysis of the surviving workload.
#[test]
fn interleaved_edits_and_readers_match_from_scratch_matrix() {
    let dtd = Dtd::parse_compact(FIG1, "doc").unwrap();
    let config = AnalyzerConfig::default();
    let session = SessionBuilder::new(&dtd).config(config.clone()).build();
    let shared = SharedSession::new(session);
    let check = Request::Check {
        query: "//a//c".to_string(),
        update: "delete //b//c".to_string(),
    };

    std::thread::scope(|s| {
        for _ in 0..4 {
            let (shared, check) = (&shared, &check);
            s.spawn(move || {
                for _ in 0..25 {
                    match shared.handle(check) {
                        Response::Check { independent, .. } => assert!(independent),
                        other => panic!("unexpected {other:?}"),
                    }
                    match shared.handle(&Request::Matrix) {
                        Response::Matrix {
                            reports,
                            n_views,
                            n_updates,
                            independent_cells,
                        } => {
                            // A read lock means no torn matrix: one report
                            // per update, one row per view, and the summary
                            // count agrees with the rows.
                            assert_eq!(reports.len(), n_updates);
                            let independent = reports
                                .iter()
                                .flat_map(|r| r.rows.iter())
                                .filter(|(_, i)| *i)
                                .count();
                            assert!(reports.iter().all(|r| r.rows.len() == n_views));
                            assert_eq!(independent, independent_cells);
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
        // Interleave edits (writes) with the readers above.
        for (i, q) in QUERIES.iter().enumerate() {
            shared.handle(&Request::AddView {
                name: Some(format!("v{i}")),
                expr: q.to_string(),
            });
        }
        for (i, u) in UPDATES.iter().enumerate() {
            shared.handle(&Request::AddUpdate {
                name: Some(format!("u{i}")),
                expr: u.to_string(),
            });
        }
        shared.handle(&Request::Drop {
            name: "v1".to_string(),
        });
        shared.handle(&Request::Drop {
            name: "u0".to_string(),
        });
    });

    // The surviving workload matches a from-scratch batch analysis cell by
    // cell, every verdict field included.
    shared.with_read(|handler| {
        let session = handler.session();
        let views: Vec<Query> = session.views().map(|(_, q)| q.clone()).collect();
        let updates: Vec<Update> = session.updates().map(|(_, u)| u.clone()).collect();
        assert_eq!(views.len(), QUERIES.len() - 1);
        assert_eq!(updates.len(), UPDATES.len() - 1);
        let fresh = analyze_matrix(&dtd, &views, &updates, &config, Jobs::Fixed(1));
        let materialized = session.verdicts();
        for ui in 0..fresh.n_updates() {
            for vi in 0..fresh.n_views() {
                assert!(
                    verdicts_eq(materialized.verdict(ui, vi), fresh.verdict(ui, vi)),
                    "cell (view {vi}, update {ui}) diverged:\n  session: {:?}\n  fresh:   {:?}",
                    materialized.verdict(ui, vi),
                    fresh.verdict(ui, vi)
                );
            }
        }
    });
}

/// Sends one HTTP request over a fresh connection and returns the parsed
/// JSON body.
fn http_json(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Json {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let (_, body) = out.split_once("\r\n\r\n").expect("has a body");
    Json::parse(body).expect("JSON body")
}

/// End-to-end smoke through the public facade: the verdict served over the
/// wire equals the in-process one, and concurrent wire clients agree.
#[test]
fn http_serve_smoke_matches_in_process_verdict() {
    let dtd = Dtd::parse_compact(FIG1, "doc").unwrap();
    let expected = IndependenceAnalyzer::new(&dtd).check(
        &parse_query("//a//c").unwrap(),
        &parse_update("delete //b//c").unwrap(),
    );

    let registry = Arc::new(SessionRegistry::new(
        AnalyzerConfig::default(),
        Jobs::Fixed(1),
    ));
    registry.load_schema("fig1", FIG1, None).unwrap();
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_millis(500),
            ..Default::default()
        },
        registry,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let body = "{\"cmd\":\"check\",\"query\":\"//a//c\",\"update\":\"delete //b//c\"}";
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..5 {
                    let v = http_json(addr, "POST", "/sessions/fig1", body);
                    assert_eq!(v.get("type").and_then(Json::as_str), Some("verdict"));
                    assert_eq!(
                        v.get("independent").and_then(Json::as_bool),
                        Some(expected.is_independent())
                    );
                    assert_eq!(v.get("k").and_then(Json::as_usize), Some(expected.k));
                }
            });
        }
    });

    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
