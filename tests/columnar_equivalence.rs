//! Property tests pinning the columnar (structure-of-arrays) store to the
//! pointer-tree semantics it replaced.
//!
//! The store rewrite changed the memory layout (five parallel `u32` columns
//! over interned symbols) but none of the observable semantics: node ids
//! are allocated in the same bottom-up order (`new_element` takes its
//! already-built children, so every child id precedes its parent's),
//! parse → query → serialize round trips are byte-identical, and
//! freeze/snapshot generations allocate the same id sequences as a plain
//! deep clone. The maintenance simulation must stay bit-identical across
//! worker counts, since each worker now re-evaluates on a copy-on-write
//! snapshot of the columnar base instead of a private pointer tree.

use proptest::prelude::*;
use xml_qui::core::Jobs;
use xml_qui::workloads::{all_updates, all_views, maintenance_simulation_jobs};
use xml_qui::xmlstore::generator::{random_tree, GenConfig};
use xml_qui::xmlstore::{
    parse_xml, serialize_node, serialize_tree, CollectSink, NodeId, SerializeSink,
};
use xml_qui::xquery::{evaluate_query, evaluate_query_into, parse_query};

/// Queries over the generator's default `a..d` tag alphabet.
const QUERY_POOL: &[&str] = &["//a", "//b", "//a//c", "/a", "/b/c", "//d", "//c/parent::a"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parsing allocates ids exactly as the pointer tree did: contiguous
    /// from 0, every child before its parent, siblings in document order,
    /// the root last — and serialization reproduces the input bytes.
    #[test]
    fn parse_assigns_pointer_tree_id_order(seed in 0u64..1000) {
        let t = random_tree(&GenConfig::default(), seed);
        let xml = t.to_xml();
        let back = parse_xml(&xml).unwrap();
        prop_assert!(t.value_equiv(&back));
        prop_assert_eq!(serialize_tree(&back), xml);

        let n = back.store.len();
        let ids: Vec<NodeId> = back.store.locations().collect();
        prop_assert_eq!(ids.len(), n);
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(id.0 as usize, i, "locations() walks ids in allocation order");
        }
        prop_assert_eq!(back.root, NodeId(n as u32 - 1), "the root is allocated last");
        for l in back.store.locations() {
            let children = back.store.children(l);
            for c in &children {
                prop_assert!(c.0 < l.0, "child {c:?} must precede its parent {l:?}");
            }
            for pair in children.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0, "sibling ids grow in document order");
            }
        }
    }

    /// Query results delivered through a sink match the materialized
    /// sequence, and the serializing sink emits exactly the per-node
    /// serializations.
    #[test]
    fn sinks_match_materialized_query_results(seed in 0u64..1000, qi in 0usize..QUERY_POOL.len()) {
        let t = random_tree(&GenConfig::default(), seed);
        let mut store = t.store.clone();
        let q = parse_query(QUERY_POOL[qi]).unwrap();
        let expected = evaluate_query(&mut store, t.root, &q).unwrap();

        let mut collect = CollectSink::new();
        let n = evaluate_query_into(&mut store, t.root, &q, &mut collect).unwrap();
        prop_assert_eq!(n, expected.len());
        prop_assert_eq!(collect.nodes(), &expected[..]);

        let mut serialize = SerializeSink::new(Vec::<u8>::new());
        evaluate_query_into(&mut store, t.root, &q, &mut serialize).unwrap();
        let streamed = String::from_utf8(serialize.into_inner().unwrap()).unwrap();
        let materialized: String = expected
            .iter()
            .map(|&l| serialize_node(&store, l) + "\n")
            .collect();
        prop_assert_eq!(streamed, materialized);
    }

    /// A frozen store's snapshot allocates the same id sequence under
    /// mutation as a plain deep clone of the unfrozen store — the
    /// copy-on-write overlay is invisible to id allocation.
    #[test]
    fn snapshot_ids_match_clone_ids(seed in 0u64..1000) {
        let t = random_tree(&GenConfig::default(), seed);

        let mut frozen = t.store.clone();
        frozen.freeze();
        let mut snap = frozen.snapshot();
        let mut clone = t.store.clone();

        let mutate = |s: &mut xml_qui::xmlstore::Store| -> Vec<NodeId> {
            let x = s.new_text("x");
            let e = s.new_element("extra", vec![x]);
            let y = s.new_element("leaf", vec![]);
            vec![x, e, y]
        };
        let snap_ids = mutate(&mut snap);
        let clone_ids = mutate(&mut clone);
        prop_assert_eq!(&snap_ids, &clone_ids, "id allocation diverged under CoW");
        for (&a, &b) in snap_ids.iter().zip(&clone_ids) {
            prop_assert_eq!(serialize_node(&snap, a), serialize_node(&clone, b));
        }

        // A second freeze generation keeps the sequence aligned too.
        snap.freeze();
        let mut snap2 = snap.snapshot();
        prop_assert_eq!(mutate(&mut snap2), mutate(&mut clone));
        prop_assert_eq!(serialize_node(&snap2, t.root), serialize_node(&clone, t.root));
    }
}

/// The maintenance simulation (snapshot-per-worker re-evaluation over the
/// XMark workload) is bit-identical across worker counts.
#[test]
fn maintenance_is_bit_identical_across_jobs() {
    let views = all_views();
    let updates = all_updates();
    let vs = &views[..6];
    let us = &updates[..4];
    let reference = maintenance_simulation_jobs(vs, us, 1_500, "tiny", 7, Jobs::Fixed(1))
        .deterministic_fields();
    for jobs in [2, 8] {
        let report = maintenance_simulation_jobs(vs, us, 1_500, "tiny", 7, Jobs::Fixed(jobs));
        assert_eq!(report.deterministic_fields(), reference, "jobs = {jobs}");
    }
}
