//! Integration tests reproducing every worked example of the paper across
//! crates: parsing, validation, chain inference and the independence verdict.

use xml_qui::baseline::TypeSetAnalyzer;
use xml_qui::core::{EngineKind, IndependenceAnalyzer};
use xml_qui::schema::Dtd;
use xml_qui::xmlstore::parse_xml;
use xml_qui::xquery::{dynamic_independent, parse_query, parse_update, DynamicOutcome};

fn figure1() -> Dtd {
    Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
}

fn bib() -> Dtd {
    Dtd::parse_compact(
        "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
         author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
        "bib",
    )
    .unwrap()
}

#[test]
fn figure_1_document_validates_and_types() {
    let d = figure1();
    let t = parse_xml("<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>").unwrap();
    let typing = d.validate(&t).expect("Figure 1 document is valid");
    assert_eq!(typing.len(), 9);
}

#[test]
fn introduction_example_q1_u1() {
    // q1 = //a//c, u1 = delete //b//c: independent thanks to the schema.
    let d = figure1();
    let q1 = parse_query("//a//c").unwrap();
    let u1 = parse_update("delete //b//c").unwrap();
    assert!(IndependenceAnalyzer::new(&d)
        .check(&q1, &u1)
        .is_independent());
    // The schema-less / type-set views of the world miss it.
    assert!(!TypeSetAnalyzer::new(&d).independent(&q1, &u1));
    // And dynamically the query result indeed never changes.
    let t = parse_xml("<doc><a><c/></a><b><c/></b><a><c/></a></doc>").unwrap();
    assert_eq!(
        dynamic_independent(&t, &q1, &u1).unwrap(),
        DynamicOutcome::UnchangedOnThisTree
    );
}

#[test]
fn introduction_example_q2_u2() {
    let d = bib();
    let q2 = parse_query("//title").unwrap();
    let u2 = parse_update("for $x in //book return insert <author/> into $x").unwrap();
    assert!(IndependenceAnalyzer::new(&d)
        .check(&q2, &u2)
        .is_independent());
    assert!(!TypeSetAnalyzer::new(&d).independent(&q2, &u2));
}

#[test]
fn section3_nested_constructor_example() {
    // Inserting <author><first>…</first><second>…</second></author> must be
    // flagged as affecting //author//first but not //title.
    let d = bib();
    let u = parse_update(
        "for $x in //book return insert <author><first>Umberto</first><last>Eco</last></author> into $x",
    )
    .unwrap();
    let a = IndependenceAnalyzer::new(&d);
    assert!(a
        .check(&parse_query("//title").unwrap(), &u)
        .is_independent());
    assert!(!a
        .check(&parse_query("//author//first").unwrap(), &u)
        .is_independent());
    assert!(!a
        .check(&parse_query("//author//last").unwrap(), &u)
        .is_independent());
}

#[test]
fn section5_finite_analysis_example() {
    // /descendant::b vs delete /descendant::c over d1 is dependent and needs
    // k = k_q + k_u to be seen.
    let d1 = Dtd::builder()
        .rule("r", "a")
        .rule("a", "(b, c, e)*")
        .rule("b", "f")
        .rule("c", "f")
        .rule("e", "f")
        .rule("f", "(a, g)")
        .rule("g", "EMPTY")
        .build("r")
        .unwrap();
    let q = parse_query("$root/descendant::b").unwrap();
    let u = parse_update("delete $root/descendant::c").unwrap();
    let v = IndependenceAnalyzer::new(&d1).check(&q, &u);
    assert_eq!(v.k, 2);
    assert!(!v.is_independent());
}

#[test]
fn both_engines_agree_on_paper_examples() {
    let d = figure1();
    let pairs = [
        ("//a//c", "delete //b//c", true),
        ("//c", "delete //b//c", false),
        ("//a//c", "delete //a", false),
        ("//b", "for $x in /a return insert <c/> into $x", true),
    ];
    for (qs, us, expected) in pairs {
        let q = parse_query(qs).unwrap();
        let u = parse_update(us).unwrap();
        for engine in [EngineKind::Explicit, EngineKind::Cdag] {
            let analyzer = IndependenceAnalyzer::with_config(
                &d,
                xml_qui::core::AnalyzerConfig {
                    engine,
                    ..Default::default()
                },
            );
            assert_eq!(
                analyzer.check(&q, &u).is_independent(),
                expected,
                "pair ({qs}, {us}) with engine {engine:?}"
            );
        }
    }
}

#[test]
fn extended_dtd_analysis_distinguishes_types_with_same_label() {
    // §7: with an EDTD, two `item` types with different contexts can be told
    // apart. Deleting the price under new items is independent of a query
    // over old items.
    let types = Dtd::parse_compact(
        "shop -> (new, old) ; new -> item#1* ; old -> item#2* ; item#1 -> price ; item#2 -> note? ; price -> #PCDATA ; note -> #PCDATA",
        "shop",
    )
    .unwrap();
    let edtd = xml_qui::schema::Edtd::with_indexed_types(types);
    let analyzer = IndependenceAnalyzer::new(&edtd);
    let q = parse_query("/old/item").unwrap();
    let u = parse_update("delete /new/item/price").unwrap();
    assert!(analyzer.check(&q, &u).is_independent());
    let q2 = parse_query("/new/item").unwrap();
    assert!(!analyzer.check(&q2, &u).is_independent());
}
