//! Property-based soundness tests: whenever the static analysis declares a
//! pair independent, no generated valid document may exhibit a change of the
//! query result under the update (Theorem 4.2 / 5.1), and the two inference
//! engines must never disagree in the unsound direction.

use proptest::prelude::*;
use xml_qui::core::{AnalyzerConfig, EngineKind, IndependenceAnalyzer};
use xml_qui::schema::{generate_valid, Dtd, GenValidConfig};
use xml_qui::xquery::{dynamic_independent, parse_query, parse_update, DynamicOutcome};

/// A small pool of schemas exercising recursion, optional content and mixed
/// content.
fn schemas() -> Vec<Dtd> {
    vec![
        Dtd::parse_compact("doc -> (a|b)* ; a -> c? ; b -> (c, d?) ; c -> #PCDATA ; d -> EMPTY", "doc").unwrap(),
        Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
            "bib",
        )
        .unwrap(),
        Dtd::parse_compact(
            "r -> a ; a -> (b, c)* ; b -> a? ; c -> #PCDATA",
            "r",
        )
        .unwrap(),
    ]
}

/// Query templates instantiated against each schema (those that reference
/// labels absent from a schema simply select nothing, which is fine).
const QUERY_POOL: &[&str] = &[
    "//a",
    "//c",
    "//b//c",
    "//a//c",
    "//title",
    "//author//last",
    "/book/title",
    "for $x in //b return $x/c",
    "for $x in //book return <entry>{$x/title}</entry>",
    "//c/parent::node()",
    "//b/following-sibling::node()",
    "if (//d) then //c else ()",
];

const UPDATE_POOL: &[&str] = &[
    "delete //b//c",
    "delete //c",
    "delete //price",
    "for $x in //b return insert <d/> into $x",
    "for $x in //book return insert <author><last>X</last></author> into $x",
    "for $x in //a return rename $x as b",
    "for $x in //title return replace $x with <title>new</title>",
    "delete //author",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: static independence implies no observable change on any
    /// generated instance.
    #[test]
    fn static_independence_is_dynamically_sound(
        schema_idx in 0usize..3,
        q_idx in 0usize..QUERY_POOL.len(),
        u_idx in 0usize..UPDATE_POOL.len(),
        seed in 0u64..50,
    ) {
        let dtd = &schemas()[schema_idx];
        let q = parse_query(QUERY_POOL[q_idx]).unwrap();
        let u = parse_update(UPDATE_POOL[u_idx]).unwrap();
        let analyzer = IndependenceAnalyzer::new(dtd);
        let verdict = analyzer.check(&q, &u);
        if verdict.is_independent() {
            let doc = generate_valid(dtd, &GenValidConfig::with_target(300), seed);
            // Updates whose target selects several nodes raise a dynamic
            // error for rename/replace; those runs tell us nothing.
            if let Ok(outcome) = dynamic_independent(&doc, &q, &u) {
                prop_assert_eq!(
                    outcome,
                    DynamicOutcome::UnchangedOnThisTree,
                    "statically independent pair changed on seed {}: q = {}, u = {}",
                    seed,
                    QUERY_POOL[q_idx],
                    UPDATE_POOL[u_idx]
                );
            }
        }
    }

    /// The CDAG engine is an over-approximation of the explicit engine: it
    /// may miss independences the explicit engine finds, but it must never
    /// claim an independence the explicit engine rejects... and on this pool
    /// they should in fact agree exactly.
    #[test]
    fn engines_agree_on_the_pool(
        schema_idx in 0usize..3,
        q_idx in 0usize..QUERY_POOL.len(),
        u_idx in 0usize..UPDATE_POOL.len(),
    ) {
        let dtd = &schemas()[schema_idx];
        let q = parse_query(QUERY_POOL[q_idx]).unwrap();
        let u = parse_update(UPDATE_POOL[u_idx]).unwrap();
        let explicit = IndependenceAnalyzer::with_config(dtd, AnalyzerConfig {
            engine: EngineKind::Explicit,
            ..Default::default()
        });
        let cdag = IndependenceAnalyzer::with_config(dtd, AnalyzerConfig {
            engine: EngineKind::Cdag,
            ..Default::default()
        });
        let e = explicit.check(&q, &u).is_independent();
        let c = cdag.check(&q, &u).is_independent();
        prop_assert_eq!(e, c, "engines disagree on q = {}, u = {}", QUERY_POOL[q_idx], UPDATE_POOL[u_idx]);
    }

    /// Generated documents are always valid and survive an XML round-trip.
    #[test]
    fn generated_documents_are_valid_and_roundtrip(
        schema_idx in 0usize..3,
        seed in 0u64..100,
        target in 20usize..400,
    ) {
        let dtd = &schemas()[schema_idx];
        let doc = generate_valid(dtd, &GenValidConfig::with_target(target), seed);
        prop_assert!(dtd.validate(&doc).is_ok());
        let xml = doc.to_xml();
        let back = xml_qui::xmlstore::parse_xml(&xml).unwrap();
        prop_assert!(doc.value_equiv(&back));
    }
}
