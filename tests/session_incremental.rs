//! Property tests for the stateful session API (`qui_core::session`):
//!
//! * **edit-sequence bit-identity** — any random interleaving of
//!   `add_view` / `remove_view` / `add_update` / `remove_update` edits, at
//!   any worker count, leaves the session's materialized verdict matrix
//!   bit-identical (every `Verdict` field, witnesses included) to a
//!   from-scratch `analyze_matrix` over the surviving workload;
//! * **warm-check bit-identity** — a session's `check` equals a fresh
//!   `IndependenceAnalyzer::check` across all engine policies, on the first
//!   (cold) and every repeated (warm) call;
//! * the bulk `add_workload` path equals the one-at-a-time incremental
//!   path, and cache warmth is observable through `SessionStats`.
//!
//! The nightly CI run multiplies the deterministic case count via
//! `QUI_PROPTEST_CASES`.

use proptest::prelude::*;
use xml_qui::core::parallel::{analyze_matrix, Jobs};
use xml_qui::core::{
    AnalysisSession, AnalyzerConfig, EngineKind, IndependenceAnalyzer, SessionBuilder, Verdict,
};
use xml_qui::schema::Dtd;
use xml_qui::workloads::{all_updates, all_views};
use xml_qui::xquery::{parse_query, parse_update, Query, Update};

/// Schemas exercising recursion, optional content, siblings and mixed
/// content — the shapes that drive the analysis down different engine paths.
fn schemas() -> Vec<Dtd> {
    vec![
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap(),
        Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
             author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
            "bib",
        )
        .unwrap(),
        Dtd::parse_compact("r -> a ; a -> (b, c)* ; b -> a? ; c -> #PCDATA", "r").unwrap(),
        // Heavily recursive: small explicit budgets overflow here, forcing
        // the CDAG fallback inside the session.
        Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap(),
    ]
}

const QUERY_POOL: &[&str] = &[
    "//a",
    "//c",
    "//b//c",
    "//a//c",
    "//title",
    "//author//last",
    "//b//c//b",
    "for $x in //b return $x/c",
    "//node()",
];

const UPDATE_POOL: &[&str] = &[
    "delete //b//c",
    "delete //c",
    "delete //price",
    "delete //c//b//c",
    "for $x in //b return insert <d/> into $x",
    "for $x in //a return rename $x as b",
];

/// Deterministic case count, raised by the nightly run via
/// `QUI_PROPTEST_CASES`.
fn cases(default: u32) -> u32 {
    std::env::var("QUI_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Bit-level equality of two verdicts (every observable field; `Verdict`
/// deliberately does not implement `PartialEq`).
fn verdicts_eq(a: &Verdict, b: &Verdict) -> bool {
    a.is_independent() == b.is_independent()
        && a.k == b.k
        && a.k_query == b.k_query
        && a.k_update == b.k_update
        && a.engine_used == b.engine_used
        && a.witness == b.witness
        && a.query_chain_count == b.query_chain_count
        && a.update_chain_count == b.update_chain_count
}

/// Asserts the session's materialized matrix is bit-identical to a fresh
/// `analyze_matrix` over the session's surviving workload.
fn assert_session_matches_fresh(
    dtd: &Dtd,
    session: &AnalysisSession<'_, Dtd>,
    config: &AnalyzerConfig,
) {
    let views: Vec<Query> = session.views().map(|(_, q)| q.clone()).collect();
    let updates: Vec<Update> = session.updates().map(|(_, u)| u.clone()).collect();
    let fresh = analyze_matrix(dtd, &views, &updates, config, Jobs::Fixed(1));
    let materialized = session.verdicts();
    assert_eq!(materialized.n_views(), fresh.n_views());
    assert_eq!(materialized.n_updates(), fresh.n_updates());
    for ui in 0..fresh.n_updates() {
        for vi in 0..fresh.n_views() {
            assert!(
                verdicts_eq(materialized.verdict(ui, vi), fresh.verdict(ui, vi)),
                "cell (view {vi}, update {ui}) diverged after edits:\n  session: {:?}\n  fresh:   {:?}",
                materialized.verdict(ui, vi),
                fresh.verdict(ui, vi)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(10)))]

    /// The tentpole property: any random edit sequence, at jobs ∈ {1, 2, 8},
    /// yields a matrix bit-identical to a from-scratch analysis of whatever
    /// workload survived — including explicit-budget overflow fallbacks.
    #[test]
    fn edit_sequences_are_bit_identical_to_fresh_analysis(
        schema_idx in 0usize..4,
        ops in prop::collection::vec((0usize..4, 0usize..16), 1..12),
        engine_idx in 0usize..3,
        budget in prop_oneof![Just(60usize), Just(20_000usize)],
        jobs_idx in 0usize..3,
    ) {
        let dtd = &schemas()[schema_idx];
        let engine = [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag][engine_idx];
        let jobs = [1usize, 2, 8][jobs_idx];
        let config = AnalyzerConfig { engine, explicit_budget: budget, ..Default::default() };
        let mut session = SessionBuilder::new(dtd)
            .config(config.clone())
            .jobs(Jobs::Fixed(jobs))
            .build();
        let mut next_name = 0usize;
        for &(op, payload) in &ops {
            match op {
                0 => {
                    let q = parse_query(QUERY_POOL[payload % QUERY_POOL.len()]).unwrap();
                    next_name += 1;
                    session.add_view(format!("v{next_name}"), q);
                }
                1 => {
                    let u = parse_update(UPDATE_POOL[payload % UPDATE_POOL.len()]).unwrap();
                    next_name += 1;
                    session.add_update(format!("u{next_name}"), u);
                }
                2 => {
                    if session.n_views() > 0 {
                        session.remove_view_at(payload % session.n_views());
                    }
                }
                _ => {
                    if session.n_updates() > 0 {
                        session.remove_update_at(payload % session.n_updates());
                    }
                }
            }
        }
        assert_session_matches_fresh(dtd, &session, &config);
    }

    /// A session's `check` is bit-identical to a fresh analyzer's verdict
    /// across engines — cold on the first call, warm on the repeat, and
    /// still warm after unrelated checks have filled the caches.
    #[test]
    fn warm_check_equals_fresh_analyzer_across_engines(
        schema_idx in 0usize..4,
        q_idx in 0usize..QUERY_POOL.len(),
        u_idx in 0usize..UPDATE_POOL.len(),
        engine_idx in 0usize..3,
        cdag_first_idx in 0usize..2,
    ) {
        let dtd = &schemas()[schema_idx];
        let engine = [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag][engine_idx];
        let config = AnalyzerConfig { engine, cdag_first: cdag_first_idx == 0, ..Default::default() };
        let analyzer = IndependenceAnalyzer::with_config(dtd, config.clone());
        let session = SessionBuilder::new(dtd).config(config).build();
        // Unrelated checks first, so the target pair hits a part-warm cache.
        for warmup in QUERY_POOL.iter().take(3) {
            let q = parse_query(warmup).unwrap();
            let u = parse_update(UPDATE_POOL[(u_idx + 1) % UPDATE_POOL.len()]).unwrap();
            session.check(&q, &u);
        }
        let q = parse_query(QUERY_POOL[q_idx]).unwrap();
        let u = parse_update(UPDATE_POOL[u_idx]).unwrap();
        let fresh = analyzer.check(&q, &u);
        prop_assert!(verdicts_eq(&session.check(&q, &u), &fresh), "cold session check diverged");
        prop_assert!(verdicts_eq(&session.check(&q, &u), &fresh), "warm session check diverged");
    }
}

/// The bulk `add_workload` registration and the one-at-a-time incremental
/// path materialize identical matrices on the real XMark workload, and the
/// session matches a fresh `analyze_matrix` after a remove + re-add cycle.
#[test]
fn xmark_workload_session_is_consistent() {
    let dtd = xml_qui::workloads::xmark_dtd();
    let views: Vec<_> = all_views().into_iter().take(8).collect();
    let updates: Vec<_> = all_updates().into_iter().take(5).collect();
    let config = AnalyzerConfig::default();

    let mut bulk = SessionBuilder::new(&dtd).jobs(Jobs::Fixed(2)).build();
    bulk.add_workload(
        views.iter().map(|v| (v.name.to_string(), v.query.clone())),
        updates
            .iter()
            .map(|u| (u.name.to_string(), u.update.clone())),
    );
    let mut incremental = SessionBuilder::new(&dtd).jobs(Jobs::Fixed(2)).build();
    for v in &views {
        incremental.add_view(v.name, v.query.clone());
    }
    for u in &updates {
        incremental.add_update(u.name, u.update.clone());
    }
    for (ui, u) in updates.iter().enumerate() {
        assert_eq!(
            bulk.independent_flags(ui),
            incremental.independent_flags(ui),
            "update {}",
            u.name
        );
    }

    // Remove a view and an update, re-add the view, and compare against a
    // fresh analysis of the surviving workload.
    bulk.remove_view(views[2].name);
    bulk.remove_update(updates[1].name);
    bulk.add_view(views[2].name, views[2].query.clone());
    assert_session_matches_fresh(&dtd, &bulk, &config);

    // The re-add was served from the caches: no new CDAG inference ran
    // beyond what the initial registration already paid.
    let stats = bulk.stats();
    assert!(
        stats.cdag_cache_hits > 0,
        "the re-added view must hit the warm caches: {stats:?}"
    );
}

/// Removals never recompute anything: dropping rows/columns leaves the
/// remaining verdicts untouched (same `Verdict` objects, bit for bit).
#[test]
fn removals_do_not_disturb_surviving_cells() {
    let dtd = schemas().remove(0);
    let mut session = AnalysisSession::new(&dtd);
    for (i, q) in QUERY_POOL.iter().take(5).enumerate() {
        session.add_view(format!("v{i}"), parse_query(q).unwrap());
    }
    for (i, u) in UPDATE_POOL.iter().take(4).enumerate() {
        session.add_update(format!("u{i}"), parse_update(u).unwrap());
    }
    let before_cells = session.stats().cells_computed;
    let keep_flags: Vec<bool> = session.independent_flags(2);
    session.remove_view_at(1);
    session.remove_update_at(0);
    session.remove_update_at(0);
    assert_eq!(
        session.stats().cells_computed,
        before_cells,
        "removals must not recompute cells"
    );
    // Row u2 survived as row 0; its verdicts (minus the dropped column)
    // are the same objects.
    let mut expected = keep_flags;
    expected.remove(1);
    assert_eq!(session.independent_flags(0), expected);
}
