//! End-to-end use of the XML Schema frontend (§7): an XSD-defined schema is
//! translated to an Extended DTD and drives the same chain-based analyses as
//! a DTD would.

use xml_qui::core::{CommutativityAnalyzer, IndependenceAnalyzer};
use xml_qui::schema::{parse_xsd, parse_xsd_with_root};
use xml_qui::xmlstore::parse_xml_keep_attributes;
use xml_qui::xquery::{dynamic_independent, parse_query, parse_update, DynamicOutcome};

const BOOKSTORE_XSD: &str = r#"
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="bookstore">
        <xs:complexType>
          <xs:sequence>
            <xs:element ref="book" minOccurs="0" maxOccurs="unbounded"/>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="book" type="BookType"/>
      <xs:complexType name="BookType">
        <xs:sequence>
          <xs:element name="title" type="xs:string"/>
          <xs:element name="author" maxOccurs="unbounded">
            <xs:complexType>
              <xs:sequence>
                <xs:element name="last" type="xs:string"/>
                <xs:element name="first" type="xs:string" minOccurs="0"/>
              </xs:sequence>
            </xs:complexType>
          </xs:element>
          <xs:element name="price" type="xs:decimal" minOccurs="0"/>
        </xs:sequence>
        <xs:attribute name="isbn" use="required"/>
      </xs:complexType>
    </xs:schema>
"#;

#[test]
fn independence_analysis_runs_over_an_xsd_schema() {
    let edtd = parse_xsd(BOOKSTORE_XSD).unwrap();
    let analyzer = IndependenceAnalyzer::new(&edtd);
    let q = parse_query("//title").unwrap();
    let u = parse_update("for $b in //book return insert <author><last>L</last></author> into $b")
        .unwrap();
    assert!(analyzer.check(&q, &u).is_independent());
    let q2 = parse_query("//author/last").unwrap();
    assert!(!analyzer.check(&q2, &u).is_independent());
}

#[test]
fn attribute_queries_work_over_the_xsd_translation() {
    let edtd = parse_xsd(BOOKSTORE_XSD).unwrap();
    let analyzer = IndependenceAnalyzer::new(&edtd);
    let q = parse_query("//book/@isbn").unwrap();
    let u = parse_update("delete //book/price").unwrap();
    assert!(analyzer.check(&q, &u).is_independent());
    let u2 = parse_update("delete //book").unwrap();
    assert!(!analyzer.check(&q, &u2).is_independent());
}

#[test]
fn verdicts_are_dynamically_consistent_on_an_instance() {
    let edtd = parse_xsd(BOOKSTORE_XSD).unwrap();
    let doc = parse_xml_keep_attributes(
        r#"<bookstore>
             <book isbn="1"><title>a</title><author><last>x</last></author><price>5</price></book>
             <book isbn="2"><title>b</title><author><last>y</last><first>z</first></author></book>
           </bookstore>"#,
    )
    .unwrap();
    assert!(edtd.validate(&doc));
    let analyzer = IndependenceAnalyzer::new(&edtd);
    let pairs = [
        ("//title", "delete //book/price"),
        ("//author/last", "delete //book/price"),
        ("//book/@isbn", "for $a in //author return delete $a/first"),
        ("//price", "delete //book"),
    ];
    for (qs, us) in pairs {
        let q = parse_query(qs).unwrap();
        let u = parse_update(us).unwrap();
        if analyzer.check(&q, &u).is_independent() {
            assert_eq!(
                dynamic_independent(&doc, &q, &u).unwrap(),
                DynamicOutcome::UnchangedOnThisTree,
                "({qs}, {us}) declared independent but the instance changed"
            );
        }
    }
}

#[test]
fn commutativity_analysis_runs_over_an_xsd_schema() {
    let edtd = parse_xsd(BOOKSTORE_XSD).unwrap();
    let analyzer = CommutativityAnalyzer::new(&edtd);
    let u1 = parse_update("delete //book/price").unwrap();
    let u2 = parse_update("for $a in //author return delete $a/first").unwrap();
    assert!(analyzer.check(&u1, &u2).commutes());
    let u3 = parse_update("delete //book").unwrap();
    assert!(!analyzer.check(&u1, &u3).commutes());
}

#[test]
fn alternative_roots_can_be_selected() {
    let edtd = parse_xsd_with_root(BOOKSTORE_XSD, "book").unwrap();
    // With `book` as the root, a book-relative query and a price deletion
    // are analysed against the book subtree schema.
    let analyzer = IndependenceAnalyzer::new(&edtd);
    let q = parse_query("/title").unwrap();
    let u = parse_update("delete /price").unwrap();
    assert!(analyzer.check(&q, &u).is_independent());
}
