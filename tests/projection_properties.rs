//! Properties of chain-based document projection (Theorem 3.2 made
//! operational): evaluating a query on its projection gives the same result
//! as on the full document, and selective queries prune substantial parts of
//! the document.

use proptest::prelude::*;
use xml_qui::core::ChainProjector;
use xml_qui::schema::{generate_valid, Dtd, GenValidConfig};
use xml_qui::workloads::{all_views, xmark_document, xmark_dtd};
use xml_qui::xquery::dynamic::snapshot_query;
use xml_qui::xquery::parse_query;

fn bib_dtd() -> Dtd {
    Dtd::parse_compact(
        "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
         author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
        "bib",
    )
    .unwrap()
}

const QUERY_POOL: &[&str] = &[
    "//title",
    "//book/author/last",
    "//book/price",
    "//author",
    "for $b in //book return ($b/title, $b/price)",
    "//first/parent::author",
    "//title/following-sibling::author",
    "for $b in //book[author] return $b/title",
    "if (//price) then //title else //author/last",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Query results are preserved on the chain-based projection.
    #[test]
    fn projection_preserves_results(seed in 0u64..500, qi in 0usize..QUERY_POOL.len()) {
        let dtd = bib_dtd();
        let projector = ChainProjector::new(&dtd);
        let doc = generate_valid(&dtd, &GenValidConfig::with_target(200), seed);
        let q = parse_query(QUERY_POOL[qi]).unwrap();
        let projected = projector.project_for_query(&doc, &q).unwrap();
        prop_assert!(projected.size() <= doc.size());
        prop_assert_eq!(
            snapshot_query(&doc, &q).unwrap(),
            snapshot_query(&projected, &q).unwrap(),
            "query {} on seed {}", QUERY_POOL[qi], seed
        );
    }
}

#[test]
fn xmark_views_evaluate_identically_on_their_projections() {
    let dtd = xmark_dtd();
    let projector = ChainProjector::new(&dtd);
    let doc = xmark_document(3_000, 5);
    let mut pruned_something = false;
    for view in all_views() {
        let Some(projected) = projector.project_for_query(&doc, &view.query) else {
            continue; // budget exceeded: callers fall back to the full document
        };
        assert_eq!(
            snapshot_query(&doc, &view.query).unwrap(),
            snapshot_query(&projected, &view.query).unwrap(),
            "view {}",
            view.name
        );
        if projected.size() < doc.size() {
            pruned_something = true;
        }
    }
    assert!(
        pruned_something,
        "at least one selective view should shrink the document"
    );
}

#[test]
fn selective_views_shrink_the_document_substantially() {
    let dtd = xmark_dtd();
    let projector = ChainProjector::new(&dtd);
    let doc = xmark_document(5_000, 9);
    // A view over one region should not need the other regions.
    let q = parse_query("/people/person/name").unwrap();
    let projected = projector.project_for_query(&doc, &q).unwrap();
    assert!(
        projected.size() * 2 < doc.size(),
        "projection kept {}/{} nodes",
        projected.size(),
        doc.size()
    );
    assert_eq!(
        snapshot_query(&doc, &q).unwrap(),
        snapshot_query(&projected, &q).unwrap()
    );
}
