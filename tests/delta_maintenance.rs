//! Differential property suite for delta view maintenance
//! (`qui_workloads::maintain` + `qui_core::delta`):
//!
//! * **`delta_patch_matches_reeval`** — the tentpole property. Under random
//!   update streams over schema-valid documents, the delta-patched engine's
//!   serialized view contents are bit-identical to independence-pruned and
//!   to naive full re-evaluation, for every registered view after every
//!   batch, at jobs ∈ {1, 2, 8}. The view pools deliberately include the
//!   conservative-fallback shapes: constructed results (the view cannot
//!   track source nodes, so the delta path must re-evaluate), updates that
//!   threaten result membership (classified `Reevaluate`), and insertions
//!   whose base chains reach return depth (the `grows` demotion).
//! * **worker-count bit-identity** — the deterministic per-batch counters
//!   (skipped / patched / re-evaluated) and the view contents of the delta
//!   strategy are identical across worker counts, pinning that sharded
//!   re-evaluation is invisible to the observable outcome.
//! * **strategy monotonicity** — naive re-evaluates everything, pruning
//!   re-evaluates no more than naive, delta no more than pruning.
//!
//! The nightly CI run multiplies the deterministic case count via
//! `QUI_PROPTEST_CASES`.

use proptest::prelude::*;
use xml_qui::core::Jobs;
use xml_qui::schema::Dtd;
use xml_qui::workloads::{
    all_updates, all_views, xmark_document, xmark_dtd, BatchStats, MaintainStrategy,
    MaintenanceEngine,
};
use xml_qui::xmlstore::{parse_xml, Tree};
use xml_qui::xquery::{parse_query, parse_update, Update};

/// One schema + document + expression-pool scenario. Every update in the
/// pool preserves schema validity (the static analysis reasons over
/// schema-valid documents, so a validity-breaking stream would void its
/// guarantees and the strategies could legitimately disagree).
struct Fixture {
    dtd: Dtd,
    doc: fn() -> Tree,
    queries: &'static [&'static str],
    updates: &'static [&'static str],
}

fn fixtures() -> Vec<Fixture> {
    vec![
        // Fig. 1 shape with fully starred content models: deletes, inner
        // inserts and the a<->b rename all keep the document valid. The
        // pool spans every DeltaClass: `//a` vs `delete //a/c/d` is
        // Patchable, `//c` vs `delete //a` is Reevaluate (conflict runs
        // upward), `insert <c/> into //a` vs `//a/c` trips the `grows`
        // demotion, and the constructor view can never track sources.
        Fixture {
            dtd: Dtd::parse_compact("doc -> (a|b)* ; a -> c* ; b -> c* ; c -> d*", "doc").unwrap(),
            doc: || {
                parse_xml(
                    "<doc><a><c><d/><d/></c><c/></a><b><c><d/></c></b><a/>\
                     <b><c/></b><a><c><d/></c><c><d/><d/></c></a></doc>",
                )
                .unwrap()
            },
            queries: &[
                "//a",
                "//a/c",
                "//b",
                "//c/d",
                "for $x in /doc/a[c] return $x",
                "for $x in //b return <wrap/>",
            ],
            updates: &[
                "delete //a/c/d",
                "delete //a/c",
                "delete //a",
                "delete //b/c",
                "for $x in //a/c return insert <d/> into $x",
                "for $x in //a return insert <c/> into $x",
                "for $x in //b return rename $x as a",
            ],
        },
        // Mutually recursive core (the b/c clique) plus a flat wing: the
        // recursion keeps the CDAG chain sets saturated and coarse, so the
        // classifier leans on its conservative fallbacks; the x/y wing
        // gives the pruner genuinely independent pairs to skip.
        Fixture {
            dtd: Dtd::parse_compact(
                "r -> (a|x)* ; a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)* ; x -> y* ; y -> #PCDATA",
                "r",
            )
            .unwrap(),
            doc: || {
                parse_xml(
                    "<r><a><b><c/><b><b/></b></b><c><b/></c></a><x><y>t</y><y>u</y></x>\
                     <a><c/><c><c/></c></a><x/></r>",
                )
                .unwrap()
            },
            queries: &[
                "//a",
                "//b//c",
                "//x/y",
                "//a/b",
                "for $v in //a[b] return $v",
                "//c//b",
            ],
            updates: &[
                "delete //b//c",
                "delete //a/c",
                "delete //x/y",
                "for $v in //c return insert <b/> into $v",
                "for $v in //b return rename $v as c",
                "delete //a/b",
            ],
        },
        // The bibliography use case: optional and starred children only, so
        // deletes stay valid; `price?` makes `[price]` predicates genuinely
        // selective and `delete //price` a used-chain conflict for them.
        Fixture {
            dtd: xml_qui::workloads::bib_dtd(),
            doc: || xml_qui::workloads::bib_document(400, 17),
            queries: &[
                "//book",
                "//book/title",
                "//author",
                "//author/last",
                "for $b in //book[price] return $b",
            ],
            updates: &[
                "delete //author/first",
                "delete //price",
                "delete //book/author",
                "delete //book",
            ],
        },
    ]
}

/// Deterministic case count, raised by the nightly run via
/// `QUI_PROPTEST_CASES`.
fn cases(default: u32) -> u32 {
    std::env::var("QUI_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

const STRATEGIES: [MaintainStrategy; 3] = [
    MaintainStrategy::Naive,
    MaintainStrategy::Pruned,
    MaintainStrategy::Delta,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// The tentpole differential property: delta-patched view contents are
    /// bit-identical to pruned and naive full re-evaluation after every
    /// batch of a random update stream, at any worker count — including
    /// every conservative-fallback shape the fixture pools contain.
    #[test]
    fn delta_patch_matches_reeval(
        fixture_idx in 0usize..3,
        batches in prop::collection::vec(prop::collection::vec(0usize..16, 1..4), 1..4),
        jobs_idx in 0usize..3,
    ) {
        let fx = &fixtures()[fixture_idx];
        let jobs = [1usize, 2, 8][jobs_idx];

        // The three strategies at the sampled worker count, plus a
        // single-threaded delta reference for worker-count bit-identity.
        let mut engines: Vec<MaintenanceEngine<Dtd>> = STRATEGIES
            .iter()
            .map(|&s| MaintenanceEngine::new(&fx.dtd, (fx.doc)(), s, Jobs::Fixed(jobs)))
            .collect();
        engines.push(MaintenanceEngine::new(
            &fx.dtd,
            (fx.doc)(),
            MaintainStrategy::Delta,
            Jobs::Fixed(1),
        ));
        for eng in &mut engines {
            for (i, q) in fx.queries.iter().enumerate() {
                eng.register_view(&format!("v{i}"), &parse_query(q).unwrap()).unwrap();
            }
        }

        for batch_plan in &batches {
            let batch: Vec<Update> = batch_plan
                .iter()
                .map(|&i| parse_update(fx.updates[i % fx.updates.len()]).unwrap())
                .collect();
            let stats: Vec<BatchStats> = engines
                .iter_mut()
                .map(|e| e.apply_batch(&batch).unwrap())
                .collect();

            // Bit-identical contents across strategies and worker counts.
            let reference = engines[0].serialized_views();
            for (eng, label) in engines[1..].iter().zip(["pruned", "delta", "delta@jobs=1"]) {
                prop_assert_eq!(
                    &eng.serialized_views(),
                    &reference,
                    "{} diverged from naive on fixture {} after batch {:?}",
                    label,
                    fixture_idx,
                    batch_plan
                );
            }
            // Deterministic counters are worker-count independent.
            prop_assert_eq!(
                stats[2].deterministic_fields(),
                stats[3].deterministic_fields(),
                "delta counters depend on the worker count"
            );
            // Strategy precision is monotone in re-evaluation work.
            prop_assert_eq!(stats[0].reevaluated, fx.queries.len());
            prop_assert!(stats[1].reevaluated <= stats[0].reevaluated);
            prop_assert!(stats[2].reevaluated <= stats[1].reevaluated);
        }
    }
}

/// The conservative fallbacks fire — and stay correct — on one concrete
/// stream: a constructed-result view is never patched (it cannot track
/// source nodes), while a sibling source-tracking view over the same data
/// is patched in place, and both end bit-identical to naive.
#[test]
fn constructed_results_fall_back_to_reevaluation() {
    let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c* ; b -> c* ; c -> d*", "doc").unwrap();
    let doc = || parse_xml("<doc><a><c><d/></c></a><b><c/></b><a><c/></a></doc>").unwrap();
    let q_tracked = parse_query("//a").unwrap();
    // Copies the `c` subtrees into fresh `<wrap>` elements: the results are
    // constructed nodes, yet their content changes under the update below.
    let q_constructed = parse_query("for $x in //a return <wrap>{$x/c}</wrap>").unwrap();
    let u = parse_update("delete //a/c/d").unwrap();

    let mut delta = MaintenanceEngine::new(&dtd, doc(), MaintainStrategy::Delta, Jobs::Fixed(2));
    delta.register_view("tracked", &q_tracked).unwrap();
    delta.register_view("constructed", &q_constructed).unwrap();
    let stats = delta.apply_batch(std::slice::from_ref(&u)).unwrap();
    assert_eq!(
        stats.patched_views, 1,
        "the source-tracking view must be patched in place"
    );
    assert_eq!(
        stats.reevaluated, 1,
        "the constructed-result view must fall back to re-evaluation"
    );

    let mut naive = MaintenanceEngine::new(&dtd, doc(), MaintainStrategy::Naive, Jobs::Fixed(1));
    naive.register_view("tracked", &q_tracked).unwrap();
    naive.register_view("constructed", &q_constructed).unwrap();
    naive.apply_batch(std::slice::from_ref(&u)).unwrap();
    assert_eq!(delta.serialized_views(), naive.serialized_views());
}

/// The corpus sweep: on every schema of the shared corpus (hand fixtures
/// plus seeded generated shapes), a *validity-preserving* random update
/// stream keeps the three strategies bit-identical at two worker counts.
///
/// The corpus generators draw arbitrary updates, and an off-schema document
/// voids the static analysis the pruned/delta strategies rest on — so each
/// candidate update is first applied to a probe clone and validated; only
/// validity-preserving candidates enter the stream. The sweep scales with
/// `QUI_PROPTEST_CASES` like the proptest suites.
#[test]
fn corpus_streams_stay_bit_identical_across_strategies() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xml_qui::schema::validate::validate;
    use xml_qui::schema::{generate_valid, random_query, random_update, Corpus, GenValidConfig};
    use xml_qui::xquery::run_update;

    let target_applied: usize = cases(8) as usize / 2;
    let mut applied_total = 0usize;
    for (si, schema) in Corpus::seeded(0xD17A, 2).iter().enumerate() {
        let dtd = schema.dtd();
        let labels = schema.labels();
        let doc = generate_valid(&dtd, &GenValidConfig::with_target(300), 0xD0C0 + si as u64);
        let mut rng = StdRng::seed_from_u64(0x3117 ^ si as u64);

        let mut engines: Vec<MaintenanceEngine<Dtd>> = STRATEGIES
            .iter()
            .map(|&s| MaintenanceEngine::new(&dtd, doc.clone(), s, Jobs::Fixed(2)))
            .collect();
        engines.push(MaintenanceEngine::new(
            &dtd,
            doc.clone(),
            MaintainStrategy::Delta,
            Jobs::Fixed(1),
        ));
        for eng in &mut engines {
            for i in 0..4 {
                let mut q_rng = StdRng::seed_from_u64(0x9E1D ^ ((si as u64) << 8) ^ i);
                let q = random_query(&labels, &mut q_rng);
                eng.register_view(&format!("v{i}"), &parse_query(&q).unwrap())
                    .unwrap();
            }
        }

        // Draw candidates until enough validity-preserving updates applied
        // (or the candidate budget runs out — recursion-free schemas with
        // mandatory content can reject most random deletes).
        let mut probe = doc.clone();
        let mut applied = 0usize;
        for _ in 0..target_applied.max(4) * 8 {
            if applied >= target_applied.max(4) {
                break;
            }
            let u_src = random_update(&schema.start, &labels, &mut rng);
            let u = parse_update(&u_src).unwrap();
            let mut trial = probe.clone();
            if run_update(&mut trial, &u).is_err() || validate(&dtd, &trial).is_err() {
                continue;
            }
            probe = trial;
            applied += 1;
            let batch = std::slice::from_ref(&u);
            let stats: Vec<BatchStats> = engines
                .iter_mut()
                .map(|e| e.apply_batch(batch).unwrap())
                .collect();
            let reference = engines[0].serialized_views();
            for (eng, label) in engines[1..].iter().zip(["pruned", "delta", "delta@jobs=1"]) {
                assert_eq!(
                    eng.serialized_views(),
                    reference,
                    "{label} diverged from naive on corpus schema {} ({}) after `{u_src}`",
                    schema.name,
                    schema.shape
                );
            }
            assert!(stats[1].reevaluated <= stats[0].reevaluated);
            assert!(stats[2].reevaluated <= stats[1].reevaluated);
        }
        applied_total += applied;
    }
    assert!(
        applied_total > 0,
        "no validity-preserving update found on any corpus schema — the sweep pinned nothing"
    );
}

/// The real workload: an XMark update stream over views that span all three
/// maintenance decisions, bit-identical across strategies and jobs ∈
/// {1, 2, 8}, with the delta engine demonstrably patching.
#[test]
fn xmark_stream_is_bit_identical_across_strategies_and_jobs() {
    let dtd = xmark_dtd();
    // q7/q8/q9/q13 × {UA1, UB2, UN1, UI3} contain statically Patchable
    // pairs; A1 gives the pruner genuinely independent cells; UP5's replace
    // exercises the membership-threatening fallback.
    let views: Vec<_> = all_views()
        .into_iter()
        .filter(|v| ["q7", "q8", "q9", "q13", "A1"].contains(&v.name))
        .collect();
    let updates: Vec<Update> = all_updates()
        .into_iter()
        .filter(|u| ["UA1", "UB2", "UN1", "UI3", "UP5"].contains(&u.name))
        .map(|u| u.update)
        .collect();

    let mut engines: Vec<MaintenanceEngine<Dtd>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for &strategy in &STRATEGIES {
        for jobs in [1usize, 2, 8] {
            let mut eng =
                MaintenanceEngine::new(&dtd, xmark_document(2_000, 7), strategy, Jobs::Fixed(jobs));
            for v in &views {
                eng.register_view(v.name, &v.query).unwrap();
            }
            engines.push(eng);
            labels.push(format!("{strategy:?}@jobs={jobs}"));
        }
    }
    for batch in updates.chunks(2) {
        for eng in &mut engines {
            eng.apply_batch(batch).unwrap();
        }
        let reference = engines[0].serialized_views();
        for (eng, label) in engines.iter().zip(&labels) {
            assert_eq!(
                eng.serialized_views(),
                reference,
                "{label} diverged from {}",
                labels[0]
            );
        }
    }
    let delta_totals = engines[6].totals();
    assert!(
        delta_totals.patched_views > 0,
        "the XMark stream must exercise the patch path, not only fallbacks"
    );
    assert!(
        delta_totals.skipped > 0,
        "the XMark stream must exercise independence pruning"
    );
}
