//! End-to-end tests of the two "schema periphery" extensions: the attribute
//! encoding (§7) and DTD inference from document corpora, including their
//! interplay with the independence analysis.

use proptest::prelude::*;
use xml_qui::baseline::TypeSetAnalyzer;
use xml_qui::core::IndependenceAnalyzer;
use xml_qui::schema::infer::infer_dtd;
use xml_qui::schema::{generate_valid, with_attributes, AttrDecl, Dtd, GenValidConfig};
use xml_qui::xmlstore::{parse_xml_keep_attributes, serialize_tree_with_attributes, Tree};
use xml_qui::xquery::{dynamic_independent, parse_query, parse_update, DynamicOutcome};

fn catalog_dtd() -> Dtd {
    let base = Dtd::parse_compact(
        "catalog -> item* ; item -> (name, price?) ; name -> #PCDATA ; price -> #PCDATA",
        "catalog",
    )
    .unwrap();
    with_attributes(
        &base,
        &[
            AttrDecl::new("item", "id", true),
            AttrDecl::new("item", "lang", false),
            AttrDecl::new("name", "style", false),
        ],
    )
    .unwrap()
}

fn catalog_doc() -> Tree {
    parse_xml_keep_attributes(
        r#"<catalog>
             <item id="i1" lang="en"><name style="plain">chair</name><price>10</price></item>
             <item id="i2"><name>table</name></item>
           </catalog>"#,
    )
    .unwrap()
}

#[test]
fn attribute_documents_validate() {
    let dtd = catalog_dtd();
    let doc = catalog_doc();
    assert!(dtd.validate(&doc).is_ok());
}

#[test]
fn attribute_queries_evaluate_against_the_encoding() {
    let doc = catalog_doc();
    let q = parse_query("//item/@id").unwrap();
    let ids = xml_qui::xquery::dynamic::snapshot_query(&doc, &q).unwrap();
    assert_eq!(ids.len(), 2);
    assert!(ids[0].contains("i1") && ids[1].contains("i2"), "{ids:?}");
}

#[test]
fn attribute_independence_is_detected_by_chains() {
    let dtd = catalog_dtd();
    let analyzer = IndependenceAnalyzer::new(&dtd);
    let q = parse_query("//item/@id").unwrap();

    // Touching a *different* attribute of the same element is independent —
    // precisely the kind of pair the type-set baseline cannot separate once
    // both land on the shared `item` type.
    let u_lang = parse_update("delete //item/@lang").unwrap();
    assert!(analyzer.check(&q, &u_lang).is_independent());

    // Touching the queried attribute, or the whole element, is dependent.
    let u_id = parse_update("delete //item/@id").unwrap();
    assert!(!analyzer.check(&q, &u_id).is_independent());
    let u_item = parse_update("delete //item").unwrap();
    assert!(!analyzer.check(&q, &u_item).is_independent());

    // And the verdicts are dynamically consistent on the sample document.
    let doc = catalog_doc();
    assert_eq!(
        dynamic_independent(&doc, &q, &u_lang).unwrap(),
        DynamicOutcome::UnchangedOnThisTree
    );
    assert_eq!(
        dynamic_independent(&doc, &q, &u_item).unwrap(),
        DynamicOutcome::Changed
    );
}

#[test]
fn chains_beat_types_on_attributes_of_sibling_elements() {
    // name/@style and item/@id live under different elements; deleting one
    // is independent of querying the other. The chain analysis sees it.
    let dtd = catalog_dtd();
    let q = parse_query("//name/@style").unwrap();
    let u = parse_update("delete //item/@lang").unwrap();
    assert!(IndependenceAnalyzer::new(&dtd)
        .check(&q, &u)
        .is_independent());
    // (The type-set baseline may or may not: @lang and @style are distinct
    // types, but the traversed set of //name/@style includes item. We only
    // assert the chain analysis, plus baseline soundness.)
    if TypeSetAnalyzer::new(&dtd).independent(&q, &u) {
        // If the baseline also claims independence, that must at least be
        // dynamically consistent.
        let doc = catalog_doc();
        assert_eq!(
            dynamic_independent(&doc, &q, &u).unwrap(),
            DynamicOutcome::UnchangedOnThisTree
        );
    }
}

#[test]
fn attribute_roundtrip_through_serializer_preserves_validation() {
    let dtd = catalog_dtd();
    let doc = catalog_doc();
    let xml = serialize_tree_with_attributes(&doc);
    assert!(xml.contains(r#"id="i1""#), "{xml}");
    assert!(!xml.contains("<@"), "{xml}");
    let back = parse_xml_keep_attributes(&xml).unwrap();
    assert!(dtd.validate(&back).is_ok());
    assert!(doc.value_equiv(&back));
}

#[test]
fn generated_attribute_documents_validate_and_roundtrip() {
    let dtd = catalog_dtd();
    for seed in 0..10u64 {
        let doc = generate_valid(&dtd, &GenValidConfig::with_target(120), seed);
        assert!(dtd.validate(&doc).is_ok(), "seed {seed}");
        let xml = serialize_tree_with_attributes(&doc);
        let back = parse_xml_keep_attributes(&xml).unwrap();
        assert!(
            dtd.validate(&back).is_ok(),
            "seed {seed}: roundtrip broke validity"
        );
    }
}

// ---------------------------------------------------------------------------
// DTD inference
// ---------------------------------------------------------------------------

/// The schemas used as generators for the inference properties.
fn source_schemas() -> Vec<Dtd> {
    vec![
        Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
             author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
            "bib",
        )
        .unwrap(),
        Dtd::parse_compact(
            "site -> (regions, people?) ; regions -> item* ; item -> (name, mail*) ; \
             mail -> (from, to) ; from -> #PCDATA ; to -> #PCDATA ; name -> #PCDATA ; \
             people -> person* ; person -> (name, phone?) ; phone -> #PCDATA",
            "site",
        )
        .unwrap(),
        // A recursive schema: inference still terminates and covers the corpus.
        Dtd::parse_compact(
            "r -> part* ; part -> (label, part*) ; label -> #PCDATA",
            "r",
        )
        .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every document of a corpus is valid w.r.t. the DTD inferred from it.
    #[test]
    fn corpus_is_always_covered(schema_idx in 0usize..3, base_seed in 0u64..1000) {
        let dtd = &source_schemas()[schema_idx];
        let corpus: Vec<Tree> = (0..5)
            .map(|i| generate_valid(dtd, &GenValidConfig::with_target(80), base_seed * 7 + i))
            .collect();
        let inferred = infer_dtd(&corpus).unwrap();
        for (i, doc) in corpus.iter().enumerate() {
            prop_assert!(
                inferred.dtd.validate(doc).is_ok(),
                "schema {schema_idx}, document {i} rejected by its own inferred DTD"
            );
        }
    }

    /// The compact rendering of an inferred DTD re-parses to a schema that
    /// still covers the corpus (round-trip through the rule syntax).
    #[test]
    fn inferred_rules_roundtrip(schema_idx in 0usize..3, base_seed in 0u64..1000) {
        let dtd = &source_schemas()[schema_idx];
        let corpus: Vec<Tree> = (0..3)
            .map(|i| generate_valid(dtd, &GenValidConfig::with_target(60), base_seed * 11 + i))
            .collect();
        let inferred = infer_dtd(&corpus).unwrap();
        let reparsed = Dtd::parse_compact(&inferred.to_compact(), &inferred.root).unwrap();
        for doc in &corpus {
            prop_assert!(reparsed.validate(doc).is_ok());
        }
    }
}

#[test]
fn inference_feeds_the_independence_analysis() {
    // Infer a schema from generated bibliography documents, then check that
    // the paper's q2/u2 independence is still detected against the inferred
    // schema (it preserves the fact that titles never occur under authors).
    let source = &source_schemas()[0];
    let corpus: Vec<Tree> = (0..15)
        .map(|seed| generate_valid(source, &GenValidConfig::with_target(150), seed))
        .collect();
    let inferred = infer_dtd(&corpus).unwrap();
    let analyzer = IndependenceAnalyzer::new(&inferred.dtd);
    let q = parse_query("//title").unwrap();
    let u = parse_update("for $x in //book return insert <author/> into $x").unwrap();
    assert!(analyzer.check(&q, &u).is_independent());
    let q2 = parse_query("//author//last").unwrap();
    assert!(!analyzer.check(&q2, &u).is_independent());
}

#[test]
fn inference_handles_attribute_encoded_corpora() {
    let dtd = catalog_dtd();
    let corpus: Vec<Tree> = (0..10)
        .map(|seed| generate_valid(&dtd, &GenValidConfig::with_target(100), seed))
        .collect();
    let inferred = infer_dtd(&corpus).unwrap();
    // The inferred schema has the @-types whenever the corpus exercised them.
    if corpus
        .iter()
        .any(|doc| serialize_tree_with_attributes(doc).contains("id="))
    {
        assert!(inferred.dtd.sym("@id").is_some());
    }
    for doc in &corpus {
        assert!(inferred.dtd.validate(doc).is_ok());
    }
}
