//! Properties of the finite analysis (§5): behaviour of the multiplicity
//! bound `k`, agreement between the two engines, and the relationship with
//! the unrestricted analysis on non-recursive schemas.

use proptest::prelude::*;
use xml_qui::core::{
    k_for_pair, k_of_query, k_of_update, AnalyzerConfig, EngineKind, IndependenceAnalyzer,
};
use xml_qui::schema::Dtd;
use xml_qui::xquery::{parse_query, parse_update, Query, Update};

/// The recursive schema `d1` of §5.
fn d1() -> Dtd {
    Dtd::builder()
        .rule("r", "a")
        .rule("a", "(b, c, e)*")
        .rule("b", "f")
        .rule("c", "f")
        .rule("e", "f")
        .rule("f", "(a, g)")
        .rule("g", "EMPTY")
        .build("r")
        .unwrap()
}

fn fig1() -> Dtd {
    Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
}

fn check_with_k(dtd: &Dtd, q: &Query, u: &Update, k: usize, engine: EngineKind) -> bool {
    let analyzer = IndependenceAnalyzer::with_config(
        dtd,
        AnalyzerConfig {
            engine,
            k_override: Some(k),
            ..Default::default()
        },
    );
    analyzer.check(q, u).is_independent()
}

const RECURSIVE_QUERIES: &[&str] = &[
    "/r/a/b",
    "$root/descendant::b",
    "$root/descendant::b/descendant::c",
    "//f/a/c",
    "//b/ancestor::a",
    "//g/parent::f",
];

const RECURSIVE_UPDATES: &[&str] = &[
    "delete $root/descendant::c",
    "delete //f/g",
    "for $x in //a return insert <g/> into $x",
    "for $x in //b/f return rename $x as f",
    "delete //e",
];

/// Table 3 sanity checks on the `k` computation.
#[test]
fn k_values_match_the_papers_worked_examples() {
    // Maximal tag frequency for a child-only path.
    assert_eq!(k_of_query(&parse_query("/r/a/b/f/a").unwrap()), 2);
    // A single recursive step contributes 1, plus the frequency of the
    // child-step part.
    assert_eq!(
        k_of_query(&parse_query("$root/descendant::b/a/b").unwrap()),
        2
    );
    // Three recursive steps: F = 0, R = 3.
    assert_eq!(
        k_of_query(&parse_query("$root/descendant::b/descendant::c/descendant::e").unwrap()),
        3
    );
    // The §5 element-construction update: k_u = 3 (nested <b><b><c/></b></b>
    // gives tag frequency 2 for b, plus one recursive step).
    let u = parse_update("for $x in /a/b return insert <b><b><c/></b></b> into $x").unwrap();
    assert_eq!(k_of_update(&u), 3);
    // k for a pair is the sum.
    let q = parse_query("$root/descendant::b").unwrap();
    let d = parse_update("delete $root/descendant::c").unwrap();
    assert_eq!(k_for_pair(&q, &d), k_of_query(&q) + k_of_update(&d));
}

#[test]
fn section5_dependence_needs_the_summed_bound() {
    let dtd = d1();
    let q = parse_query("$root/descendant::b").unwrap();
    let u = parse_update("delete $root/descendant::c").unwrap();
    let k_max = k_of_query(&q).max(k_of_update(&u));
    let k_sum = k_of_query(&q) + k_of_update(&u);
    // With k = max the conflict is invisible; with k = k_q + k_u it is found.
    assert!(check_with_k(&dtd, &q, &u, k_max, EngineKind::Explicit));
    assert!(!check_with_k(&dtd, &q, &u, k_sum, EngineKind::Explicit));
    assert!(!check_with_k(&dtd, &q, &u, k_sum, EngineKind::Cdag));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Dependence is monotone in `k`: once a conflict is visible with `k`
    /// chains it stays visible with more (C_d^k ⊆ C_d^{k+1}).
    #[test]
    fn dependence_is_monotone_in_k(
        qi in 0usize..RECURSIVE_QUERIES.len(),
        ui in 0usize..RECURSIVE_UPDATES.len(),
        extra in 1usize..3,
    ) {
        let dtd = d1();
        let q = parse_query(RECURSIVE_QUERIES[qi]).unwrap();
        let u = parse_update(RECURSIVE_UPDATES[ui]).unwrap();
        let k = k_for_pair(&q, &u);
        let at_k = check_with_k(&dtd, &q, &u, k, EngineKind::Cdag);
        let at_more = check_with_k(&dtd, &q, &u, k + extra, EngineKind::Cdag);
        if !at_k {
            prop_assert!(!at_more, "dependence at k = {k} vanished at k = {}", k + extra);
        }
    }

    /// On a non-recursive schema the bound is irrelevant: every k gives the
    /// same verdict as the unrestricted analysis.
    #[test]
    fn k_is_irrelevant_on_non_recursive_schemas(
        qi in 0usize..4usize,
        ui in 0usize..3usize,
        k in 1usize..6,
    ) {
        let dtd = fig1();
        let queries = ["//a//c", "//c", "//b", "/a/c"];
        let updates = ["delete //b//c", "delete //c", "for $x in /b return insert <c/> into $x"];
        let q = parse_query(queries[qi]).unwrap();
        let u = parse_update(updates[ui]).unwrap();
        let fixed = check_with_k(&dtd, &q, &u, k, EngineKind::Explicit);
        let natural = IndependenceAnalyzer::new(&dtd).check(&q, &u).is_independent();
        prop_assert_eq!(fixed, natural);
    }

    /// The CDAG engine never claims independence the explicit engine refutes
    /// (it may only be *less* precise), and on this workload the two agree.
    #[test]
    fn engines_agree_on_the_recursive_workload(
        qi in 0usize..RECURSIVE_QUERIES.len(),
        ui in 0usize..RECURSIVE_UPDATES.len(),
    ) {
        let dtd = d1();
        let q = parse_query(RECURSIVE_QUERIES[qi]).unwrap();
        let u = parse_update(RECURSIVE_UPDATES[ui]).unwrap();
        let k = k_for_pair(&q, &u);
        let explicit = check_with_k(&dtd, &q, &u, k, EngineKind::Explicit);
        let cdag = check_with_k(&dtd, &q, &u, k, EngineKind::Cdag);
        prop_assert_eq!(explicit, cdag, "engines disagree on ({}, {})", RECURSIVE_QUERIES[qi], RECURSIVE_UPDATES[ui]);
    }
}

#[test]
fn k_grows_with_nested_iteration_but_not_with_sequencing() {
    // For/let nesting sums the per-branch frequencies (Table 3), sequencing
    // takes the maximum.
    let nested = parse_query("for $x in /a/a return for $y in /a/b return $x").unwrap();
    let sequenced = parse_query("(/a/a, /a/b)").unwrap();
    assert!(k_of_query(&nested) > k_of_query(&sequenced));
    assert_eq!(k_of_query(&sequenced), 2);
}

#[test]
fn rename_and_element_tags_count_towards_k() {
    let plain = parse_update("delete //b").unwrap();
    let renaming = parse_update("for $x in //b return rename $x as b").unwrap();
    assert!(k_of_update(&renaming) >= k_of_update(&plain));
    let constructing = parse_update("for $x in //b return insert <b/> into $x").unwrap();
    assert!(k_of_update(&constructing) >= k_of_update(&plain));
}

#[test]
fn xmark_pairs_use_bounded_k() {
    // The paper reports k between 2 and 6 on the XMark workload; our
    // transcription should stay in single digits too (a runaway k would make
    // the finite analysis useless).
    let views = xml_qui::workloads::all_views();
    let updates = xml_qui::workloads::all_updates();
    let mut max_k = 0;
    for u in updates.iter().take(10) {
        for v in views.iter().take(12) {
            max_k = max_k.max(k_for_pair(&v.query, &u.update));
        }
    }
    assert!(max_k >= 2, "k suspiciously small: {max_k}");
    assert!(max_k <= 12, "k blew up: {max_k}");
}
