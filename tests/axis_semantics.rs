//! Per-axis semantics and the soundness of single-step chain inference
//! (Lemma 3.1): for every node of a valid document and every XPath step, the
//! chain of every node selected by the step is among the chains inferred by
//! `TC(AC(c, axis), φ)`.

use std::collections::HashSet;

use xml_qui::core::engine::explicit::ExplicitEngine;
use xml_qui::core::Universe;
use xml_qui::schema::{generate_valid, Dtd, GenValidConfig};
use xml_qui::xmlstore::{parse_xml, NodeId, Store, Tree};
use xml_qui::xquery::eval::evaluate_query_with_env;
use xml_qui::xquery::{Axis, NodeTest, Query};

fn sibling_dtd() -> Dtd {
    Dtd::parse_compact(
        "r -> (a, b*, c?) ; a -> (d, e) ; b -> d? ; c -> EMPTY ; d -> #PCDATA ; e -> EMPTY",
        "r",
    )
    .unwrap()
}

fn sample_doc() -> Tree {
    parse_xml("<r><a><d>x</d><e/></a><b><d>y</d></b><b/><c/></r>").unwrap()
}

/// Evaluates a single step from one context node.
fn eval_step(tree: &Tree, ctx: NodeId, axis: Axis, test: NodeTest) -> Vec<NodeId> {
    let mut work = tree.clone();
    let mut env = xml_qui::xquery::eval::Env::new();
    env.insert("$x".to_string(), vec![ctx]);
    let q = Query::step("$x", axis, test);
    evaluate_query_with_env(&mut work.store, &env, &q).unwrap()
}

/// The expected node set for an axis, computed directly from the store's
/// navigation primitives (the evaluator must agree with them).
fn expected_axis(store: &Store, ctx: NodeId, axis: Axis) -> Vec<NodeId> {
    match axis {
        Axis::SelfAxis => vec![ctx],
        Axis::Child => store.children(ctx).to_vec(),
        Axis::Descendant => store.descendants(ctx),
        Axis::DescendantOrSelf => store.descendants_or_self(ctx),
        Axis::Parent => store.parent(ctx).into_iter().collect(),
        Axis::Ancestor => store.ancestors(ctx),
        Axis::AncestorOrSelf => {
            let mut v = vec![ctx];
            v.extend(store.ancestors(ctx));
            v
        }
        Axis::FollowingSibling => store.following_siblings(ctx),
        Axis::PrecedingSibling => store.preceding_siblings(ctx),
    }
}

#[test]
fn every_axis_matches_store_navigation() {
    let tree = sample_doc();
    for ctx in tree.reachable() {
        for axis in Axis::all() {
            let got: HashSet<NodeId> = eval_step(&tree, ctx, axis, NodeTest::AnyNode)
                .into_iter()
                .collect();
            let expected: HashSet<NodeId> =
                expected_axis(&tree.store, ctx, axis).into_iter().collect();
            assert_eq!(got, expected, "axis {axis:?} from node {ctx:?}");
        }
    }
}

#[test]
fn node_tests_filter_by_kind_and_tag() {
    let tree = sample_doc();
    let root = tree.root;
    // child::b selects exactly the two b children.
    let bs = eval_step(&tree, root, Axis::Child, NodeTest::Tag("b".into()));
    assert_eq!(bs.len(), 2);
    assert!(bs.iter().all(|&n| tree.store.tag(n) == Some("b")));
    // descendant::text() selects the two text nodes.
    let texts = eval_step(&tree, root, Axis::Descendant, NodeTest::Text);
    assert_eq!(texts.len(), 2);
    assert!(texts.iter().all(|&n| tree.store.is_text(n)));
    // child::* selects elements only (all four children here are elements).
    let elems = eval_step(&tree, root, Axis::Child, NodeTest::AnyElement);
    assert_eq!(elems.len(), 4);
    // descendant-or-self::node() includes the context node itself.
    let all = eval_step(&tree, root, Axis::DescendantOrSelf, NodeTest::AnyNode);
    assert!(all.contains(&root));
    assert_eq!(all.len(), tree.size());
}

#[test]
fn sibling_axes_respect_document_order() {
    let tree = sample_doc();
    let root = tree.root;
    let children = tree.store.children(root).to_vec(); // a, b, b, c
    let first_b = children[1];
    let after: Vec<_> = eval_step(&tree, first_b, Axis::FollowingSibling, NodeTest::AnyNode);
    assert_eq!(after, vec![children[2], children[3]]);
    let before: Vec<_> = eval_step(&tree, first_b, Axis::PrecedingSibling, NodeTest::AnyNode);
    assert_eq!(before, vec![children[0]]);
    // With a tag test only the matching siblings remain.
    let after_c = eval_step(
        &tree,
        first_b,
        Axis::FollowingSibling,
        NodeTest::Tag("c".into()),
    );
    assert_eq!(after_c, vec![children[3]]);
}

/// Lemma 3.1 (soundness of step chains), checked dynamically: on documents
/// generated from non-recursive schemas, for every context node, axis and
/// node test, the chain of every selected node belongs to the statically
/// inferred step-chain set.
#[test]
fn step_chain_inference_covers_dynamic_steps() {
    let schemas = [
        sibling_dtd(),
        Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
             author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
            "bib",
        )
        .unwrap(),
    ];
    let tests = [
        NodeTest::AnyNode,
        NodeTest::AnyElement,
        NodeTest::Text,
        NodeTest::Tag("d".into()),
        NodeTest::Tag("author".into()),
    ];
    for dtd in &schemas {
        let universe = Universe::unrestricted(dtd);
        let engine = ExplicitEngine::new(&universe, 100_000);
        for seed in [3u64, 17, 91] {
            let doc = generate_valid(dtd, &GenValidConfig::with_target(120), seed);
            let typing = dtd.validate(&doc).expect("generated document is valid");
            for ctx in doc.reachable() {
                let ctx_chain = typing.chain_of(&doc.store, ctx).expect("typed node");
                for axis in Axis::all() {
                    let step_chains = engine.ac(&ctx_chain, axis).expect("within budget");
                    for test in &tests {
                        let allowed = engine.tc(step_chains.clone(), test);
                        for selected in eval_step(&doc, ctx, axis, test.clone()) {
                            let chain = typing
                                .chain_of(&doc.store, selected)
                                .expect("selected node is typed");
                            assert!(
                                allowed.contains(&chain),
                                "axis {axis:?}, test {test:?}: dynamic chain {} not inferred",
                                dtd.show_chain(&chain)
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The `<_r` sibling-order relation used by the sibling-axis rules must agree
/// with the orders that actually occur in generated documents.
#[test]
fn before_pairs_cover_observed_sibling_orders() {
    let dtd = sibling_dtd();
    for seed in 0..10u64 {
        let doc = generate_valid(&dtd, &GenValidConfig::with_target(100), seed);
        let typing = dtd.validate(&doc).unwrap();
        for node in doc.reachable() {
            if !doc.store.is_element(node) {
                continue;
            }
            let Some(sym) = typing.type_of(node) else {
                continue;
            };
            let pairs = dtd.before_pairs(sym);
            let kids = doc.store.children(node).to_vec();
            for i in 0..kids.len() {
                for j in i + 1..kids.len() {
                    let a = typing.type_of(kids[i]).unwrap();
                    let b = typing.type_of(kids[j]).unwrap();
                    assert!(
                        pairs.contains(&(a, b)),
                        "observed {}-before-{} under {} but <_r does not allow it",
                        dtd.name(a),
                        dtd.name(b),
                        dtd.name(sym)
                    );
                }
            }
        }
    }
}
