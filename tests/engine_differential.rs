//! The differential harness for the two inference engines (and the pieces
//! the CDAG-first promotion rests on):
//!
//! * **verdict equivalence** — across randomized schemas, queries, updates
//!   and multiplicity bounds `k ∈ {1..4}`, the CDAG engine's independence
//!   verdict equals the explicit (reference) engine's wherever the latter
//!   is feasible, and the explicit witness chains are *denoted* by the CDAG
//!   sets (checked through `CdagEngine::enumerate`);
//! * **k-ladder equivalence** — `extend(k → k+1)` produces exactly the DAGs
//!   a fresh build at `k+1` produces, saturated or not;
//! * **CDAG-backed projection** — on recursive schemas where the explicit
//!   projection spec overflows its budget, the compiled `PathAutomaton`
//!   still preserves query results (and actually prunes);
//! * **auto fallback boundary** — a workload straddling `explicit_budget`
//!   produces bit-identical mixed-engine verdicts for jobs ∈ {1, 2, 8};
//! * **witness totality** — every dependent verdict carries a valid
//!   conflict witness, including cells whose explicit confirmation
//!   overflowed (their witness is synthesized from the CDAG sub-DAGs).
//!
//! The nightly workflow re-runs this suite with a larger deterministic case
//! count via `QUI_PROPTEST_CASES`.

use proptest::prelude::*;
use xml_qui::core::engine::cdag::{CdagEngine, QueryKLadder, UpdateKLadder};
use xml_qui::core::engine::explicit::ExplicitEngine;
use xml_qui::core::parallel::assert_matches_sequential;
use xml_qui::core::{
    analyze_matrix, AnalyzerConfig, ChainProjector, EngineKind, IndependenceAnalyzer, Jobs,
    Universe,
};
use xml_qui::schema::Corpus;
use xml_qui::schema::{Chain, Dtd, SchemaLike};
use xml_qui::xmlstore::parse_xml;
use xml_qui::xquery::dynamic::snapshot_query;
use xml_qui::xquery::{parse_query, parse_update, Axis, NodeTest, Query, Update};

/// Deterministic case count, raised by the nightly run via
/// `QUI_PROPTEST_CASES`.
fn cases(default: u32) -> u32 {
    std::env::var("QUI_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------------------
// The randomized workload: schema pool × per-schema expression pools
// ---------------------------------------------------------------------------

/// Schema pool: non-recursive, mildly recursive (§5's d1), and the heavily
/// recursive cliques that force the CDAG representation.
fn schema_pool() -> Vec<Dtd> {
    vec![
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap(),
        Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
             author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
            "bib",
        )
        .unwrap(),
        Dtd::builder()
            .rule("r", "a")
            .rule("a", "(b, c, e)*")
            .rule("b", "f")
            .rule("c", "f")
            .rule("e", "f")
            .rule("f", "(a, g)")
            .rule("g", "EMPTY")
            .build("r")
            .unwrap(),
        Dtd::parse_compact(
            "r -> (a|x)* ; a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)* ; x -> y ; y -> EMPTY",
            "r",
        )
        .unwrap(),
        Dtd::parse_compact(
            "a -> (b|d)* ; b -> c ; d -> c ; c -> (e?, f?) ; e -> EMPTY ; f -> EMPTY",
            "a",
        )
        .unwrap(),
    ]
}

/// The schema corpus as plain DTDs: the five hand-written fixtures plus two
/// seeded generated shapes, so the differential properties run over every
/// corpus schema the traffic simulator registers (and more shapes than the
/// hand pool above covers — deep chains, wide fan-out, recursion cliques).
fn corpus_pool() -> Vec<Dtd> {
    Corpus::seeded(0xC0FFEE, 2)
        .iter()
        .map(|s| s.dtd())
        .collect()
}

/// Assembles a navigation query from drawn (axis, label-index) pairs over
/// the schema alphabet, so every schema gets structurally varied queries
/// without hand-curating per-schema pools.
fn build_query(schema: &Dtd, shape: usize, l1: usize, l2: usize) -> Query {
    let labels = schema.labels();
    let a = &labels[l1 % labels.len()];
    let b = &labels[l2 % labels.len()];
    let src = match shape % 8 {
        0 => format!("//{a}"),
        1 => format!("/{a}/{b}"),
        2 => format!("//{a}//{b}"),
        3 => format!("//{a}/{b}"),
        4 => format!("//{a}/parent::node()"),
        5 => format!("//{a}/ancestor::{b}"),
        6 => format!("for $x in //{a} return $x/{b}"),
        7 => format!("//{a}/following-sibling::{b}"),
        _ => unreachable!(),
    };
    parse_query(&src).expect("generated query parses")
}

/// Assembles an update the same way.
fn build_update(schema: &Dtd, shape: usize, l1: usize, l2: usize) -> Update {
    let labels = schema.labels();
    let a = &labels[l1 % labels.len()];
    let b = &labels[l2 % labels.len()];
    let src = match shape % 6 {
        0 => format!("delete //{a}"),
        1 => format!("delete //{a}//{b}"),
        2 => format!("delete /{a}/{b}"),
        3 => format!("for $x in //{a} return insert <{b}/> into $x"),
        4 => format!("for $x in //{a} return rename $x as {b}"),
        5 => format!("for $x in //{a} return replace $x with <{b}/>"),
        _ => unreachable!(),
    };
    parse_update(&src).expect("generated update parses")
}

/// Explicit-engine verdict at bound `k`, or `None` on budget overflow.
fn explicit_verdict(schema: &Dtd, q: &Query, u: &Update, k: usize) -> Option<bool> {
    let universe = Universe::with_k(schema, k);
    let eng = ExplicitEngine::new(&universe, 100_000);
    let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), q).ok()?;
    let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), u).ok()?;
    Some(xml_qui::core::conflict::find_conflict(&qc, &uc).is_none())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// The headline differential property, in three parts:
    ///
    /// 1. **Soundness** (universal): the CDAG never claims independence the
    ///    explicit engine refutes — its chain sets over-approximate.
    /// 2. **Attributability**: when the CDAG flags dependence the explicit
    ///    engine at the same `k` disproves, the disagreement must be one of
    ///    the CDAG's *documented* over-approximations — either the
    ///    depth-for-multiplicity relaxation (`k`-chains vs `k·|d|`-deep
    ///    chains; then the explicit engine at the depth-equivalent bound
    ///    also flags dependence) or grid-horizon saturation (the inference
    ///    hit the depth cap and truncated suffixes into extensible ends,
    ///    reported by `take_saturated`). Anything else is an engine bug and
    ///    fails the suite.
    /// 3. **Production equality** (zero mismatches): the CDAG-first `Auto`
    ///    verdict equals the pure explicit verdict wherever the explicit
    ///    engine is feasible.
    ///
    /// When both engines flag dependence, the explicit witness chains must
    /// additionally be *denoted* by the CDAG sets (via `enumerate`).
    #[test]
    fn cdag_verdicts_match_explicit_verdicts(
        si in 0usize..5,
        q_shape in 0usize..8,
        ql1 in 0usize..16,
        ql2 in 0usize..16,
        u_shape in 0usize..6,
        ul1 in 0usize..16,
        ul2 in 0usize..16,
        k in 1usize..5,
    ) {
        let schemas = schema_pool();
        let schema = &schemas[si];
        let q = build_query(schema, q_shape, ql1, ql2);
        let u = build_update(schema, u_shape, ul1, ul2);

        let Some(explicit) = explicit_verdict(schema, &q, &u, k) else {
            // Explicit overflow: nothing to differentiate against (the CDAG
            // verdict is the production answer by construction).
            return Ok(());
        };
        let eng = CdagEngine::new(schema, k);
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        let saturated = eng.take_saturated();
        let cdag = eng.independent(&qc, &uc);

        // (1) Soundness: a CDAG independence proof is always right.
        if cdag {
            prop_assert!(
                explicit,
                "UNSOUND: CDAG claims ({}, {}) independent at k = {} over schema #{}, explicit refutes",
                q, u, k, si
            );
        }
        // (2) Attributability: a CDAG dependence the explicit engine
        // disproves must come from a documented over-approximation.
        if !cdag && explicit && !saturated {
            let k_relaxed = k * schema.schema_size() + 2;
            if let Some(relaxed) = explicit_verdict(schema, &q, &u, k_relaxed) {
                prop_assert!(
                    !relaxed,
                    "CDAG dependence on ({}, {}) at k = {} is NOT a documented relaxation: \
                     the inference never saturated and the explicit engine stays \
                     independent at k = {}",
                    q, u, k, k_relaxed
                );
            }
        }
        // (3) Production equality: the CDAG-first auto pipeline answers
        // with full explicit precision.
        let auto = IndependenceAnalyzer::with_config(
            schema,
            AnalyzerConfig {
                k_override: Some(k),
                explicit_budget: 100_000,
                ..Default::default()
            },
        )
        .check(&q, &u);
        prop_assert_eq!(
            auto.is_independent(), explicit,
            "the CDAG-first auto verdict mismatches the explicit engine on ({}, {}) at k = {}",
            q, u, k
        );

        // Witness containment: the explicit witness chains must be denoted
        // by the (over-approximating) CDAG sets.
        if !explicit && !cdag {
            let universe = Universe::with_k(schema, k);
            let ex = ExplicitEngine::new(&universe, 100_000);
            let eqc = ex.infer_query(&ex.root_gamma(q.free_vars()), &q).unwrap();
            let euc = ex.infer_update(&ex.root_gamma(u.free_vars()), &u).unwrap();
            let witness = xml_qui::core::conflict::find_conflict(&eqc, &euc)
                .expect("dependence implies a witness");
            let denoted = |dag: &xml_qui::core::engine::cdag::ChainDag, chain: &Chain| {
                match eng.enumerate(dag, 100_000) {
                    // The witness may also be an *extension* of a denoted
                    // extensible chain; prefix containment covers both.
                    Some(chains) => chains.iter().any(|c| c.is_prefix_of(chain) || c == chain),
                    None => true, // too many chains to enumerate — skip
                }
            };
            let q_dag = qc.returns.clone().union(&qc.used);
            prop_assert!(
                denoted(&q_dag, &witness.query_chain.chain)
                    // Element chains are not rooted; they are checked by the
                    // explicit/CDAG set equality tests instead.
                    || !witness.query_chain.chain.symbols().first().map(|&s| s == schema.start_type()).unwrap_or(true),
                "CDAG query sets do not denote the witness chain of ({q}, {u})"
            );
            prop_assert!(
                denoted(&uc, &witness.update_chain.chain)
                    || !witness.update_chain.chain.symbols().first().map(|&s| s == schema.start_type()).unwrap_or(true),
                "CDAG update set does not denote the witness chain of ({q}, {u})"
            );
        }
    }

    /// The corpus-wide differential: on every schema of the shared corpus
    /// (hand-written fixtures and seeded generated shapes alike) the CDAG
    /// engine stays sound against the explicit engine, and the CDAG-first
    /// `Auto` pipeline keeps full explicit precision. This is the lighter
    /// sibling of the headline property above — the attributability and
    /// witness-containment clauses stay on the curated pool, where the
    /// relaxed-`k` re-check is affordable; soundness and production
    /// equality, the clauses the traffic simulator rides on, run corpus-wide.
    #[test]
    fn corpus_schemas_keep_engine_agreement(
        si in 0usize..7,
        q_shape in 0usize..8,
        ql1 in 0usize..24,
        ql2 in 0usize..24,
        u_shape in 0usize..6,
        ul1 in 0usize..24,
        ul2 in 0usize..24,
        k in 1usize..4,
    ) {
        let pool = corpus_pool();
        let schema = &pool[si % pool.len()];
        let q = build_query(schema, q_shape, ql1, ql2);
        let u = build_update(schema, u_shape, ul1, ul2);
        let Some(explicit) = explicit_verdict(schema, &q, &u, k) else {
            return Ok(());
        };
        let eng = CdagEngine::new(schema, k);
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        prop_assert!(
            !eng.independent(&qc, &uc) || explicit,
            "UNSOUND: CDAG claims ({}, {}) independent at k = {} on corpus schema #{}, explicit refutes",
            q, u, k, si % pool.len()
        );
        let auto = IndependenceAnalyzer::with_config(
            schema,
            AnalyzerConfig {
                k_override: Some(k),
                explicit_budget: 100_000,
                ..Default::default()
            },
        )
        .check(&q, &u);
        prop_assert_eq!(
            auto.is_independent(), explicit,
            "the CDAG-first auto verdict mismatches the explicit engine on ({}, {}) at k = {} on corpus schema #{}",
            q, u, k, si % pool.len()
        );
    }

    /// The k-ladder is indistinguishable from fresh builds at every bound —
    /// for queries and updates, saturated (recursive) or not.
    #[test]
    fn ladder_extension_equals_fresh_builds(
        si in 0usize..5,
        q_shape in 0usize..8,
        u_shape in 0usize..6,
        l1 in 0usize..16,
        l2 in 0usize..16,
        k0 in 1usize..3,
    ) {
        let schemas = schema_pool();
        let schema = &schemas[si];
        let q = build_query(schema, q_shape, l1, l2);
        let u = build_update(schema, u_shape, l2, l1);
        let mut q_ladder = QueryKLadder::new(schema, &q, k0, true);
        let mut u_ladder = UpdateKLadder::new(schema, &u, k0, true);
        for k in k0..=k0 + 3 {
            let q_stepped = q_ladder.extend_to(&q, k).clone();
            let u_stepped = u_ladder.extend_to(&u, k).clone();
            let eng = CdagEngine::new(schema, k);
            let q_fresh = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
            let u_fresh = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
            prop_assert_eq!(&q_stepped, &q_fresh, "query ladder diverged at k = {} for {}", k, q);
            prop_assert_eq!(&u_stepped, &u_fresh, "update ladder diverged at k = {} for {}", k, u);
        }
    }

    /// On the recursive cliques (schema #3 of the pool) the explicit
    /// projection spec overflows, and the compiled automaton must still
    /// preserve query results on concrete documents.
    #[test]
    fn automaton_projection_preserves_results_on_recursive_schemas(
        q_shape in 0usize..4,
        l1 in 0usize..4,
        l2 in 0usize..4,
        doc_i in 0usize..4,
    ) {
        let schema = Dtd::parse_compact(
            "r -> (a|x)* ; a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)* ; x -> y ; y -> EMPTY",
            "r",
        )
        .unwrap();
        // Descendant-heavy shapes over the clique labels so the explicit
        // spec overflows its (reduced) budget.
        let clique = ["a", "b", "c", "y"];
        let (a, b) = (clique[l1 % 4], clique[l2 % 4]);
        let src = match q_shape {
            0 => format!("//{a}"),
            1 => format!("//{a}//{b}"),
            2 => format!("//{a}/{b}"),
            3 => format!("//{a}//{b}//{a}"),
            _ => unreachable!(),
        };
        let q = parse_query(&src).unwrap();
        let docs = [
            "<r><a><b><c><b/></c></b></a><x><y/></x></r>",
            "<r><a><c><b><b><c/></b></b></c><b/></a><a/><x><y/></x><x><y/></x></r>",
            "<r><x><y/></x></r>",
            "<r><a><b><b><b><c/></b></b></b><c><c/></c></a></r>",
        ];
        let doc = parse_xml(docs[doc_i]).unwrap();
        let projector = ChainProjector::new(&schema).with_budget(64);
        let projection = projector.streaming_projection_for_query(&q);
        let projected = xml_qui::xmlstore::project_spec(&doc, &projection);
        prop_assert_eq!(
            snapshot_query(&doc, &q).unwrap(),
            snapshot_query(&projected, &q).unwrap(),
            "projection changed the result of {} on document #{}",
            src, doc_i
        );
    }

    /// The level-synchronous word-bitset descendant closure is bit-identical
    /// to the naive depth-first reference (`step_descendant_reference`, the
    /// pre-bitset implementation) — result ends, used ends, edges and the
    /// saturation flag — on random contexts, for every worker count.
    #[test]
    fn descendant_step_bitset_matches_dfs_reference(
        schema_idx in 0usize..5,
        k in 1usize..4,
        prefix in prop::collection::vec((0usize..3, 0usize..8), 0..3),
        or_self_pick in 0usize..2,
        test_pick in 0usize..12,
        jobs_pick in 0usize..3,
    ) {
        let or_self = or_self_pick == 1;
        let jobs = [1usize, 2, 8][jobs_pick];
        let schemas = schema_pool();
        let schema = &schemas[schema_idx % schemas.len()];
        let labels = schema.labels();
        let pick_test = |i: usize| -> NodeTest {
            match i % (labels.len() + 3) {
                0 => NodeTest::AnyNode,
                1 => NodeTest::AnyElement,
                2 => NodeTest::Text,
                j => NodeTest::Tag(labels[j - 3].clone()),
            }
        };
        let eng = CdagEngine::new(schema, k).with_jobs(Jobs::Fixed(jobs));
        // Build a context by stepping from the root along a random prefix.
        let mut ctx = eng.root_dag();
        for &(axis_i, label_i) in &prefix {
            let axis = [Axis::Child, Axis::Descendant, Axis::DescendantOrSelf][axis_i];
            let (next, _) = eng.step(&ctx, axis, &pick_test(label_i));
            if next.is_empty() {
                break;
            }
            ctx = next;
        }
        let test = pick_test(test_pick);
        eng.take_saturated(); // reset whatever the prefix steps recorded
        let (res_a, used_a) = eng.step_descendant(&ctx, or_self, &test);
        let sat_a = eng.take_saturated();
        let (res_b, used_b) = eng.step_descendant_reference(&ctx, or_self, &test);
        let sat_b = eng.take_saturated();
        prop_assert_eq!(res_a, res_b, "result ends/edges differ (jobs = {})", jobs);
        prop_assert_eq!(used_a, used_b, "used ends differ (jobs = {})", jobs);
        prop_assert_eq!(sat_a, sat_b, "saturation flag differs (jobs = {})", jobs);
    }
}

// ---------------------------------------------------------------------------
// The auto-engine fallback boundary (satellite: budget straddling)
// ---------------------------------------------------------------------------

/// A workload whose recursive half overflows a reduced explicit budget while
/// the flat half stays comfortably inside it.
fn straddling_workload() -> (Dtd, Vec<Query>, Vec<Update>) {
    let schema = Dtd::parse_compact(
        "r -> (a|x)* ; a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)* ; x -> y ; y -> EMPTY",
        "r",
    )
    .unwrap();
    let views = ["//b//c", "//b", "/x/y", "//x", "//y/parent::x", "//c//b//c"]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
    let updates = [
        "delete //c//b",
        "delete /x/y",
        "for $x in //x return insert <y/> into $x",
        "delete //b",
    ]
    .iter()
    .map(|s| parse_update(s).unwrap())
    .collect();
    (schema, views, updates)
}

#[test]
fn budget_straddling_matrix_mixes_engines_and_stays_bit_identical() {
    let (schema, views, updates) = straddling_workload();
    let config = AnalyzerConfig {
        explicit_budget: 60,
        ..Default::default()
    };
    let reference = analyze_matrix(&schema, &views, &updates, &config, Jobs::Fixed(1));
    // The workload genuinely straddles the budget: both engines appear.
    let engines: Vec<EngineKind> = (0..updates.len())
        .flat_map(|ui| (0..views.len()).map(move |vi| (ui, vi)))
        .map(|(ui, vi)| reference.verdict(ui, vi).engine_used)
        .collect();
    assert!(
        engines.contains(&EngineKind::Explicit),
        "no cell used the explicit engine — the budget no longer straddles: {engines:?}"
    );
    assert!(
        engines.contains(&EngineKind::Cdag),
        "no cell used the CDAG engine — the budget no longer straddles: {engines:?}"
    );
    // Cell-for-cell mirroring of the sequential analyzer, for every worker
    // count, including witnesses.
    for jobs in [1usize, 2, 8] {
        let m = analyze_matrix(&schema, &views, &updates, &config, Jobs::Fixed(jobs));
        assert_matches_sequential(&schema, &views, &updates, &config, &m);
        for ui in 0..updates.len() {
            for vi in 0..views.len() {
                let a = reference.verdict(ui, vi);
                let b = m.verdict(ui, vi);
                assert!(
                    a.is_independent() == b.is_independent()
                        && a.engine_used == b.engine_used
                        && a.witness == b.witness
                        && a.query_chain_count == b.query_chain_count
                        && a.update_chain_count == b.update_chain_count,
                    "jobs = {jobs} diverged at cell ({ui}, {vi})"
                );
            }
        }
    }
    // The legacy explicit-first order agrees verdict-for-verdict on the
    // same straddling workload (only engine attribution may differ).
    let legacy = AnalyzerConfig {
        explicit_budget: 60,
        cdag_first: false,
        ..Default::default()
    };
    let legacy_m = analyze_matrix(&schema, &views, &updates, &legacy, Jobs::Fixed(2));
    assert_matches_sequential(&schema, &views, &updates, &legacy, &legacy_m);
    for ui in 0..updates.len() {
        for vi in 0..views.len() {
            assert_eq!(
                reference.verdict(ui, vi).is_independent(),
                legacy_m.verdict(ui, vi).is_independent(),
                "orders disagree at cell ({ui}, {vi})"
            );
        }
    }
}

#[test]
fn dependent_verdicts_carry_valid_witnesses_whichever_engine_answers() {
    // Satellite pin: a dependent verdict always explains itself. Explicit
    // confirmations have carried a witness from day one; this pins the CDAG
    // side — cells whose explicit confirmation overflows the budget (and
    // forced-CDAG runs) now synthesize one from the conflicting sub-DAG.
    // The witness must actually be a witness: the stored chains must stand
    // in the prefix relation `find_conflict` reports for that kind.
    use xml_qui::core::conflict::{item_conflicts, ConflictKind};
    let (schema, views, updates) = straddling_workload();
    let config = AnalyzerConfig {
        explicit_budget: 60,
        ..Default::default()
    };
    let reference = analyze_matrix(&schema, &views, &updates, &config, Jobs::Fixed(1));
    let mut cdag_dependent = 0usize;
    for ui in 0..updates.len() {
        for vi in 0..views.len() {
            let v = reference.verdict(ui, vi);
            if v.is_independent() {
                assert!(
                    v.witness.is_none(),
                    "independent cell ({ui}, {vi}) has a witness"
                );
                continue;
            }
            let w = v
                .witness
                .as_ref()
                .unwrap_or_else(|| panic!("dependent cell ({ui}, {vi}) carries no witness"));
            let valid = match w.kind {
                // confl(r, U): the query chain prefixes the update chain.
                ConflictKind::ReturnBelowUpdate => item_conflicts(&w.query_chain, &w.update_chain),
                // confl(U, r) / confl(U, v): the update chain prefixes the
                // query chain.
                ConflictKind::UpdateAboveReturn | ConflictKind::UpdateAboveUsed => {
                    item_conflicts(&w.update_chain, &w.query_chain)
                }
            };
            assert!(
                valid,
                "cell ({ui}, {vi}): witness chains are not in the {:?} prefix relation: {w:?}",
                w.kind
            );
            if v.engine_used == EngineKind::Cdag {
                cdag_dependent += 1;
            }
        }
    }
    // The workload must actually exercise the new path (dependent cells the
    // explicit engine could not confirm) — otherwise this test pins nothing.
    assert!(
        cdag_dependent > 0,
        "no dependent cell fell back to the CDAG engine; the budget no longer straddles"
    );
    // Forced-CDAG dependent verdicts carry one too, and deterministically so
    // (checked across worker counts by the bit-identity test above via the
    // overflowed cells; here for the forced engine).
    let forced = IndependenceAnalyzer::with_config(
        &schema,
        AnalyzerConfig {
            engine: EngineKind::Cdag,
            ..Default::default()
        },
    );
    let q = parse_query("//b").unwrap();
    let u = parse_update("delete //b//c").unwrap();
    let v = forced.check(&q, &u);
    assert!(!v.is_independent());
    let w1 = v
        .witness
        .expect("forced-CDAG dependent verdict carries a witness");
    let w2 = forced
        .check(&q, &u)
        .witness
        .expect("witness on the second check too");
    assert_eq!(w1, w2, "CDAG witness synthesis must be deterministic");
}

#[test]
fn forced_engines_agree_with_auto_on_the_straddling_flat_half() {
    // On the flat (non-overflowing) half, all three engine policies give
    // the same verdicts.
    let (schema, views, updates) = straddling_workload();
    let flat_views: Vec<Query> = views.into_iter().skip(2).take(3).collect();
    let flat_updates: Vec<Update> = updates.into_iter().skip(1).take(2).collect();
    let verdicts: Vec<Vec<bool>> = [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag]
        .into_iter()
        .map(|engine| {
            let config = AnalyzerConfig {
                engine,
                ..Default::default()
            };
            let analyzer = IndependenceAnalyzer::with_config(&schema, config);
            flat_updates
                .iter()
                .flat_map(|u| {
                    flat_views
                        .iter()
                        .map(|v| analyzer.check(v, u).is_independent())
                })
                .collect()
        })
        .collect();
    assert_eq!(verdicts[0], verdicts[1]);
    assert_eq!(verdicts[0], verdicts[2]);
}
