//! Property tests for the paper-scale streaming pipeline:
//!
//! * streaming parse ≡ in-memory `parse_xml` (same tree, via `equiv`) over
//!   generated XMark documents and adversarial entity/attribute inputs,
//!   including identical rejections at identical byte offsets;
//! * streamed projection ≡ parse-then-project (`project_paths`), and both
//!   preserve query results under chain-derived specs;
//! * parallel ≡ sequential `maintenance_simulation` for jobs ∈ {1, 2, 8};
//! * a million-node XMark document streams through the parser from an
//!   `io::Read` source without the input ever being materialized.

use proptest::prelude::*;
use std::io::Cursor;
use xml_qui::core::{ChainProjector, Jobs};
use xml_qui::workloads::{
    all_updates, all_views, maintenance_simulation_jobs, stream_xmark_document, xmark_document,
    xmark_dtd, NamedUpdate, NamedView,
};
use xml_qui::xmlstore::{
    parse_xml, parse_xml_keep_attributes, parse_xml_reader, parse_xml_stream, project_paths,
    project_spec, AutomatonCursor, PathAutomaton, Projection, StreamConfig,
};
use xml_qui::xquery::dynamic::snapshot_query;
use xml_qui::xquery::parse_query;

/// Both parsers must agree byte-for-byte: same tree (up to locations) on
/// success, same message at the same offset on failure.
fn assert_parsers_agree(input: &str, keep_attributes: bool) {
    let in_memory = if keep_attributes {
        parse_xml_keep_attributes(input)
    } else {
        parse_xml(input)
    };
    let config = StreamConfig {
        keep_attributes,
        // A tiny window forces tokens across refill boundaries.
        chunk_size: 17,
        ..Default::default()
    };
    let streamed = parse_xml_stream(Cursor::new(input.as_bytes().to_vec()), &config);
    match (in_memory, streamed) {
        (Ok(expected), Ok(outcome)) => {
            assert!(
                expected.value_equiv(&outcome.tree),
                "trees differ for {input:?}"
            );
        }
        (Err(e1), Err(e2)) => {
            assert_eq!(e1.message, e2.message, "messages differ for {input:?}");
            assert_eq!(e1.position, e2.position, "positions differ for {input:?}");
        }
        (Ok(_), Err(e)) => panic!("only the streaming parser rejected {input:?}: {e}"),
        (Err(e), Ok(_)) => panic!("only the in-memory parser rejected {input:?}: {e}"),
    }
}

/// Adversarial fragments: entities (valid and malformed), attributes in both
/// quote styles, CDATA, comments, PIs, deep nesting, tag mismatches,
/// truncations and trailing garbage.
const ADVERSARIAL: &[&str] = &[
    "<a>&amp;&lt;&gt;&quot;&apos;</a>",
    "<a>&amp &unknown; &amp;amp;</a>",
    "<a x=\"1 &lt; 2\" y='&amp;'><b/></a>",
    "<a x=\"\" y=''/>",
    "<a x='mismatched\"/>",
    "<a><![CDATA[<not><xml>&amp;]]></a>",
    "<a><![CDATA[unterminated</a>",
    "<a><!-- comment with <tags> & entities --><b/></a>",
    "<a><!-- unterminated <b/>",
    "<a><?pi with <angle> brackets?><b/></a>",
    "<doc attr=\"v\"><e a=\"1\" b=\"2\"><f/></e>text<e/></doc>",
    "<a><b><c><d><e><f>deep</f></e></d></c></b></a>",
    "<a></b>",
    "<a><b></a></b>",
    "<a/><b/>",
    "<a>",
    "</a>",
    "plain text",
    "",
    "   ",
    "<a>x</a>trailing",
    "<a>x</a><!-- ok --> <?pi ok?>",
    "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>",
    "<a>text with\nnewlines\tand\ttabs</a>",
    "<a>\u{00e9}\u{4e16}\u{754c}</a>",
    "<a ><b / ></a >",
    "<a x = \"spaced\"/>",
    "<a x></a>",
];

#[test]
fn adversarial_inputs_agree_between_parsers() {
    for input in ADVERSARIAL {
        assert_parsers_agree(input, false);
        assert_parsers_agree(input, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Streaming parse ≡ `parse_xml` over generated XMark documents (the
    /// serialized form covers mixed content, both recursive cliques and all
    /// site regions).
    #[test]
    fn streaming_parse_equals_in_memory_on_xmark(
        nodes in 200usize..2_500,
        seed in 0u64..1_000,
    ) {
        let xml = xmark_document(nodes, seed).to_xml();
        let expected = parse_xml(&xml).unwrap();
        let streamed = parse_xml_reader(Cursor::new(xml.as_bytes().to_vec())).unwrap();
        prop_assert!(expected.value_equiv(&streamed));
    }

    /// Random concatenations of adversarial fragments wrapped in a root:
    /// the parsers must still agree (in both attribute modes).
    #[test]
    fn adversarial_compositions_agree(
        mask in 1u32..(1 << 12),
        keep_flag in 0u8..2,
    ) {
        let keep_attributes = keep_flag == 1;
        let mut body = String::new();
        for (i, frag) in ADVERSARIAL.iter().take(12).enumerate() {
            if mask & (1 << i) != 0 {
                body.push_str(frag);
            }
        }
        let input = format!("<root>{body}</root>");
        assert_parsers_agree(&input, keep_attributes);
    }

    /// Streamed projection ≡ parse-then-project for chain-derived specs,
    /// and the projected document still answers the query.
    #[test]
    fn streamed_projection_equals_project_paths(
        nodes in 300usize..2_000,
        seed in 0u64..500,
        query_idx in 0usize..3,
    ) {
        let query_src = [
            "/people/person/emailaddress",
            "/closed_auctions/closed_auction/price",
            "/regions/europe/item/name",
        ][query_idx];
        let dtd = xmark_dtd();
        let projector = ChainProjector::new(&dtd);
        let q = parse_query(query_src).unwrap();
        let spec = projector.path_spec_for_query(&q).expect("spec within budget");
        let doc = xmark_document(nodes, seed);
        let xml = doc.to_xml();
        // Reference: parse everything, then apply the same path semantics.
        let full = parse_xml(&xml).unwrap();
        let expected = project_paths(&full, &spec);
        let outcome = parse_xml_stream(
            Cursor::new(xml.as_bytes().to_vec()),
            &StreamConfig::with_projection(spec),
        )
        .unwrap();
        prop_assert!(expected.value_equiv(&outcome.tree), "{query_src}");
        // The projection preserves the query's answer.
        prop_assert_eq!(
            snapshot_query(&doc, &q).unwrap(),
            snapshot_query(&outcome.tree, &q).unwrap(),
            "{}", query_src
        );
        // Bookkeeping: every parsed node is either kept or pruned.
        prop_assert_eq!(
            outcome.stats.nodes_kept + outcome.stats.nodes_pruned,
            outcome.stats.elements_parsed + outcome.stats.texts_parsed
        );
    }

    /// Parallel ≡ sequential maintenance simulation: all deterministic
    /// report fields are bit-identical for jobs ∈ {1, 2, 8}.
    #[test]
    fn maintenance_reports_identical_across_jobs(
        seed in 0u64..100,
        view_mask in 1u8..(1 << 5),
        update_mask in 1u8..(1 << 4),
    ) {
        let views: Vec<NamedView> = all_views()
            .into_iter()
            .take(5)
            .enumerate()
            .filter(|(i, _)| view_mask & (1 << i) != 0)
            .map(|(_, v)| v)
            .collect();
        let updates: Vec<NamedUpdate> = all_updates()
            .into_iter()
            .take(4)
            .enumerate()
            .filter(|(i, _)| update_mask & (1 << i) != 0)
            .map(|(_, u)| u)
            .collect();
        let reference =
            maintenance_simulation_jobs(&views, &updates, 1_000, "p", seed, Jobs::Fixed(1))
                .deterministic_fields();
        for jobs in [2, 8] {
            let report =
                maintenance_simulation_jobs(&views, &updates, 1_000, "p", seed, Jobs::Fixed(jobs));
            prop_assert_eq!(report.deterministic_fields(), reference.clone(), "jobs = {}", jobs);
        }
    }
}

/// The compiled CDAG path automaton for the recursive descendant view the
/// perf harness uses (`//parlist//keyword`): its explicit chain spec
/// overflows any budget, so the automaton is the only description.
fn parlist_automaton() -> PathAutomaton {
    let dtd = xmark_dtd();
    let q = parse_query("//parlist//keyword").unwrap();
    match ChainProjector::new(&dtd).streaming_projection_for_query(&q) {
        Projection::Automaton(a) => a,
        Projection::Paths(_) => panic!("expected the compiled automaton"),
    }
}

/// Labels used for random automaton walks: the recursive clique plus its
/// context, and one label the schema does not know.
const WALK_LABELS: &[&str] = &[
    "site",
    "regions",
    "europe",
    "item",
    "description",
    "parlist",
    "listitem",
    "text",
    "keyword",
    "bold",
    "emph",
    "name",
    "zzz-unknown",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ROADMAP follow-up regression: the incremental `AutomatonCursor` the
    /// streaming parser keeps (one `O(states)` step per start tag) reports,
    /// at every depth of a random push/pop walk, exactly the flags a full
    /// `O(depth · states)` re-simulation of the root-to-node path reports —
    /// including the text-child decision.
    #[test]
    fn automaton_cursor_equals_full_resimulation(
        ops in prop::collection::vec((0usize..WALK_LABELS.len() + 1, 0usize..WALK_LABELS.len()), 1..40),
    ) {
        let auto = parlist_automaton();
        let mut cursor = AutomatonCursor::new();
        let mut path: Vec<String> = Vec::new();
        for &(op, label_idx) in &ops {
            if op == WALK_LABELS.len() {
                // A pop (ignored at the root).
                if !path.is_empty() {
                    path.pop();
                    cursor.pop();
                }
            } else {
                let label = WALK_LABELS[label_idx];
                path.push(label.to_string());
                let pushed = cursor.push(&auto, label);
                prop_assert_eq!(
                    pushed,
                    auto.classify_path(&path),
                    "push flags diverged at {:?}", path
                );
            }
            prop_assert_eq!(
                cursor.flags(&auto),
                auto.classify_path(&path),
                "flags diverged at {:?}", path
            );
            prop_assert_eq!(cursor.depth(), path.len());
            if !path.is_empty() {
                prop_assert_eq!(
                    cursor.text_child_kept(&auto),
                    auto.keeps_text_child(&path),
                    "text decision diverged at {:?}", path
                );
            }
        }
    }

    /// Streamed automaton projection (through the incremental cursor) ≡ the
    /// in-memory reference `project_spec` (which re-simulates every path),
    /// and the projection still answers the recursive query.
    #[test]
    fn streamed_automaton_projection_equals_reference(
        nodes in 400usize..2_500,
        seed in 0u64..200,
    ) {
        let dtd = xmark_dtd();
        let q = parse_query("//parlist//keyword").unwrap();
        let projection = ChainProjector::new(&dtd).streaming_projection_for_query(&q);
        prop_assert!(matches!(projection, Projection::Automaton(_)));
        let doc = xmark_document(nodes, seed);
        let xml = doc.to_xml();
        let full = parse_xml(&xml).unwrap();
        let expected = project_spec(&full, &projection);
        let outcome = parse_xml_stream(
            Cursor::new(xml.as_bytes().to_vec()),
            &StreamConfig::with_projection_spec(projection),
        )
        .unwrap();
        prop_assert!(expected.value_equiv(&outcome.tree));
        prop_assert_eq!(
            snapshot_query(&doc, &q).unwrap(),
            snapshot_query(&outcome.tree, &q).unwrap()
        );
    }
}

/// The headline ingest property: a million-node XMark document streams from
/// a reader into a tree while the parser's input window stays within a few
/// chunks — the input is never materialized.
#[test]
fn million_node_document_streams_with_bounded_window() {
    // The generator's target is approximate (repeat caps and budget division
    // throttle recursion); this target deterministically lands past a
    // million actual nodes with the fixed seed.
    let target = 3_600_000;
    let mut bytes: Vec<u8> = Vec::new();
    let stats = stream_xmark_document(target, 7, &mut bytes).expect("generation succeeds");
    assert!(
        stats.nodes >= 1_000_000,
        "generator produced only {} nodes",
        stats.nodes
    );
    let outcome = parse_xml_stream(Cursor::new(bytes), &StreamConfig::default()).unwrap();
    assert!(outcome.tree.size() >= 1_000_000, "{}", outcome.tree.size());
    assert_eq!(outcome.tree.root_tag(), Some("site"));
    assert!(
        outcome.stats.peak_buffer_bytes <= 4 * xml_qui::xmlstore::streaming::DEFAULT_CHUNK_SIZE,
        "input window grew to {} bytes",
        outcome.stats.peak_buffer_bytes
    );
    assert!(xmark_dtd().validate(&outcome.tree).is_ok());
}
