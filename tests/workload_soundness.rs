//! Workload-level integration test: on the XMark benchmark, the chain
//! analysis must be sound w.r.t. the dynamic ground truth and at least as
//! precise as the type-set baseline.

use xml_qui::baseline::TypeSetAnalyzer;
use xml_qui::core::IndependenceAnalyzer;
use xml_qui::workloads::{all_updates, all_views, ground_truth_matrix, xmark_dtd};

#[test]
fn xmark_chain_analysis_is_sound_and_dominates_the_baseline() {
    // A subset keeps the test under a few seconds; the benches sweep the
    // full 31×36 matrix.
    let views: Vec<_> = all_views()
        .into_iter()
        .filter(|v| ["q1", "q5", "q13", "q18", "A1", "A3", "A7", "B3", "B7"].contains(&v.name))
        .collect();
    let updates: Vec<_> = all_updates()
        .into_iter()
        .filter(|u| ["UA2", "UA7", "UB3", "UI2", "UN1", "UP1", "UP5"].contains(&u.name))
        .collect();
    let truth = ground_truth_matrix(&views, &updates, 3_000, &[1, 2]);

    let dtd = xmark_dtd();
    let chains = IndependenceAnalyzer::new(&dtd);
    let baseline = TypeSetAnalyzer::new(&dtd);

    let mut chains_detected = 0usize;
    let mut types_detected = 0usize;
    for u in &updates {
        for v in &views {
            let chain_verdict = chains.check(&v.query, &u.update).is_independent();
            let type_verdict = baseline.independent(&v.query, &u.update);
            let empirically_independent = truth[&(u.name.to_string(), v.name.to_string())];
            // Soundness of both static analyses.
            assert!(
                !chain_verdict || empirically_independent,
                "chain analysis unsound on ({}, {})",
                u.name,
                v.name
            );
            assert!(
                !type_verdict || empirically_independent,
                "type-set baseline unsound on ({}, {})",
                u.name,
                v.name
            );
            if chain_verdict {
                chains_detected += 1;
            }
            if type_verdict {
                types_detected += 1;
            }
        }
    }
    // The headline shape of Fig. 3.b: chains detect at least as many
    // independences as types, and strictly more on this subset.
    assert!(
        chains_detected > types_detected,
        "chains {chains_detected} vs types {types_detected}"
    );
}

#[test]
fn inserted_constructor_roots_are_visible_to_predicates() {
    // Regression: UI1 inserts `<bidder>…</bidder>` elements and B8 filters
    // open auctions on a `[bidder]` predicate, so the pair is dependent (an
    // auction without bidders gains one and enters the view). The element
    // construction rule used to record only the constructor's *content*
    // chains — never the constructed root's own chain — which made the
    // inserted `bidder` node invisible to the predicate's used chain and the
    // pair was wrongly declared independent.
    let dtd = xmark_dtd();
    let chains = IndependenceAnalyzer::new(&dtd);
    let ui1 = all_updates().into_iter().find(|u| u.name == "UI1").unwrap();
    let b8 = all_views().into_iter().find(|v| v.name == "B8").unwrap();
    assert!(
        !chains.check(&b8.query, &ui1.update).is_independent(),
        "insert-before of a constructed <bidder> must conflict with B8's [bidder] predicate"
    );
}
