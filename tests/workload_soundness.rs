//! Workload-level integration tests: on the XMark benchmark, the chain
//! analysis must be sound w.r.t. the dynamic ground truth and at least as
//! precise as the type-set baseline; on the schema corpus (hand fixtures
//! plus seeded generated shapes), the chain analysis must stay sound
//! against dynamically checked generated instances of every schema.
//!
//! The corpus sweep scales with `QUI_PROPTEST_CASES` (the nightly workflow
//! raises it) and is deterministic per (schema, case) pair.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xml_qui::baseline::TypeSetAnalyzer;
use xml_qui::core::IndependenceAnalyzer;
use xml_qui::schema::{generate_valid, random_query, random_update, Corpus, GenValidConfig};
use xml_qui::workloads::{all_updates, all_views, ground_truth_matrix, xmark_dtd};
use xml_qui::xquery::dynamic::dynamic_independent;
use xml_qui::xquery::{parse_query, parse_update};

#[test]
fn xmark_chain_analysis_is_sound_and_dominates_the_baseline() {
    // A subset keeps the test under a few seconds; the benches sweep the
    // full 31×36 matrix.
    let views: Vec<_> = all_views()
        .into_iter()
        .filter(|v| ["q1", "q5", "q13", "q18", "A1", "A3", "A7", "B3", "B7"].contains(&v.name))
        .collect();
    let updates: Vec<_> = all_updates()
        .into_iter()
        .filter(|u| ["UA2", "UA7", "UB3", "UI2", "UN1", "UP1", "UP5"].contains(&u.name))
        .collect();
    let truth = ground_truth_matrix(&views, &updates, 3_000, &[1, 2]);

    let dtd = xmark_dtd();
    let chains = IndependenceAnalyzer::new(&dtd);
    let baseline = TypeSetAnalyzer::new(&dtd);

    let mut chains_detected = 0usize;
    let mut types_detected = 0usize;
    for u in &updates {
        for v in &views {
            let chain_verdict = chains.check(&v.query, &u.update).is_independent();
            let type_verdict = baseline.independent(&v.query, &u.update);
            let empirically_independent = truth[&(u.name.to_string(), v.name.to_string())];
            // Soundness of both static analyses.
            assert!(
                !chain_verdict || empirically_independent,
                "chain analysis unsound on ({}, {})",
                u.name,
                v.name
            );
            assert!(
                !type_verdict || empirically_independent,
                "type-set baseline unsound on ({}, {})",
                u.name,
                v.name
            );
            if chain_verdict {
                chains_detected += 1;
            }
            if type_verdict {
                types_detected += 1;
            }
        }
    }
    // The headline shape of Fig. 3.b: chains detect at least as many
    // independences as types, and strictly more on this subset.
    assert!(
        chains_detected > types_detected,
        "chains {chains_detected} vs types {types_detected}"
    );
}

#[test]
fn corpus_chain_analysis_is_sound_on_generated_instances() {
    // For every corpus schema — the same corpus the traffic simulator
    // registers — draw seeded query/update pairs from the corpus
    // generators, then refute each *static* independence claim against the
    // dynamic check (Definition 2.4) on several generated valid instances.
    // A static "independent" with a dynamic "changed" on any instance is a
    // soundness bug, whatever the schema shape.
    let pairs_per_schema: usize = std::env::var("QUI_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|c: usize| (c / 8).max(6))
        .unwrap_or(6);
    let mut independents = 0usize;
    let mut dependents = 0usize;
    for (si, schema) in Corpus::seeded(0xBEEF, 2).iter().enumerate() {
        let dtd = schema.dtd();
        let labels = schema.labels();
        let analyzer = IndependenceAnalyzer::new(&dtd);
        // Instance pool: three seeded valid documents of ~400 nodes each.
        let docs: Vec<_> = (0..3)
            .map(|d| generate_valid(&dtd, &GenValidConfig::with_target(400), 0x0D0C + d))
            .collect();
        let mut rng = StdRng::seed_from_u64(0x50FA ^ si as u64);
        for _ in 0..pairs_per_schema {
            let q_src = random_query(&labels, &mut rng);
            let u_src = random_update(&schema.start, &labels, &mut rng);
            let q = parse_query(&q_src).expect("corpus query parses");
            let u = parse_update(&u_src).expect("corpus update parses");
            let verdict = analyzer.check(&q, &u).is_independent();
            if verdict {
                independents += 1;
            } else {
                dependents += 1;
            }
            if !verdict {
                continue; // only independence claims are refutable
            }
            for (di, doc) in docs.iter().enumerate() {
                let outcome = dynamic_independent(doc, &q, &u)
                    .unwrap_or_else(|e| panic!("eval of ({q_src}, {u_src}): {e:?}"));
                assert!(
                    !outcome.is_changed(),
                    "chain analysis unsound on corpus schema {} ({}): ({q_src}, {u_src}) \
                     declared independent but instance #{di} changed",
                    schema.name,
                    schema.shape
                );
            }
        }
    }
    // The sweep must exercise both verdicts, or it pins nothing.
    assert!(
        independents > 0 && dependents > 0,
        "degenerate corpus sweep: {independents} independent / {dependents} dependent"
    );
}

#[test]
fn inserted_constructor_roots_are_visible_to_predicates() {
    // Regression: UI1 inserts `<bidder>…</bidder>` elements and B8 filters
    // open auctions on a `[bidder]` predicate, so the pair is dependent (an
    // auction without bidders gains one and enters the view). The element
    // construction rule used to record only the constructor's *content*
    // chains — never the constructed root's own chain — which made the
    // inserted `bidder` node invisible to the predicate's used chain and the
    // pair was wrongly declared independent.
    let dtd = xmark_dtd();
    let chains = IndependenceAnalyzer::new(&dtd);
    let ui1 = all_updates().into_iter().find(|u| u.name == "UI1").unwrap();
    let b8 = all_views().into_iter().find(|v| v.name == "B8").unwrap();
    assert!(
        !chains.check(&b8.query, &ui1.update).is_independent(),
        "insert-before of a constructed <bidder> must conflict with B8's [bidder] predicate"
    );
}
