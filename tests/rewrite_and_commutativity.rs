//! Semantics preservation of the rewriting passes and soundness of the
//! update-update commutativity analysis, both established dynamically on
//! generated valid documents.

use proptest::prelude::*;
use xml_qui::core::CommutativityAnalyzer;
use xml_qui::schema::{generate_valid, Dtd, GenValidConfig};
use xml_qui::xmlstore::{parse_xml, Tree};
use xml_qui::xquery::dynamic::snapshot_query;
use xml_qui::xquery::eval::{apply_pending_list, evaluate_update};
use xml_qui::xquery::rewrite::{normalize_query, normalize_update};
use xml_qui::xquery::{parse_query, parse_update, Update};

fn bib_dtd() -> Dtd {
    Dtd::parse_compact(
        "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
         author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
        "bib",
    )
    .unwrap()
}

const QUERY_POOL: &[&str] = &[
    "//title",
    "//book/author/last",
    "for $b in //book return ($b/title, ())",
    "let $x := //book return $x/price",
    "let $unused := //author return //title",
    "if (()) then //title else //price",
    "if (//price) then //title else ()",
    "for $b in //book[author] return $b/title",
    "<list>{ for $b in //book return <entry>{$b/title}</entry> }</list>",
    "//author/parent::node()/title",
    "//title/following-sibling::author",
];

const UPDATE_POOL: &[&str] = &[
    "delete //price",
    "delete //book/author",
    "for $b in //book return insert <price>1</price> into $b",
    "for $a in //author return rename $a as creator",
    "for $t in //title return replace $t with <title>new</title>",
    "if (()) then delete //book else ()",
    "let $x := //book return delete //price",
    "()",
];

/// Applies an update to a clone of the tree, returning the result (or `None`
/// when evaluation raises a runtime error such as a multi-node target).
fn apply(tree: &Tree, u: &Update) -> Option<Tree> {
    let mut t = tree.clone();
    let root = t.root;
    let upl = evaluate_update(&mut t.store, root, u).ok()?;
    apply_pending_list(&mut t.store, &upl);
    Some(t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Normalizing a query never changes its result on a valid document.
    #[test]
    fn normalized_queries_are_equivalent(seed in 0u64..500, qi in 0usize..QUERY_POOL.len()) {
        let dtd = bib_dtd();
        let doc = generate_valid(&dtd, &GenValidConfig::with_target(150), seed);
        let q = parse_query(QUERY_POOL[qi]).unwrap();
        let n = normalize_query(&q);
        let before = snapshot_query(&doc, &q).unwrap();
        let after = snapshot_query(&doc, &n).unwrap();
        prop_assert_eq!(before, after, "query {} vs normalized {}", q, n);
    }

    /// Normalizing an update never changes the document it produces.
    #[test]
    fn normalized_updates_are_equivalent(seed in 0u64..500, ui in 0usize..UPDATE_POOL.len()) {
        let dtd = bib_dtd();
        let doc = generate_valid(&dtd, &GenValidConfig::with_target(150), seed);
        let u = parse_update(UPDATE_POOL[ui]).unwrap();
        let n = normalize_update(&u);
        match (apply(&doc, &u), apply(&doc, &n)) {
            (Some(a), Some(b)) => prop_assert!(
                a.value_equiv(&b),
                "update {} and its normalization {} disagree",
                u,
                n
            ),
            (None, None) => {}
            (a, b) => prop_assert!(
                false,
                "one of the forms failed to evaluate: original ok = {}, normalized ok = {}",
                a.is_some(),
                b.is_some()
            ),
        }
    }

    /// Whenever the commutativity analyzer says two updates commute, applying
    /// them in either order must give value-equivalent documents.
    #[test]
    fn declared_commutative_pairs_really_commute(
        seed in 0u64..200,
        i in 0usize..UPDATE_POOL.len(),
        j in 0usize..UPDATE_POOL.len(),
    ) {
        let dtd = bib_dtd();
        let analyzer = CommutativityAnalyzer::new(&dtd);
        let u1 = parse_update(UPDATE_POOL[i]).unwrap();
        let u2 = parse_update(UPDATE_POOL[j]).unwrap();
        if !analyzer.check(&u1, &u2).commutes() {
            return Ok(()); // only the positive verdict carries a guarantee
        }
        let doc = generate_valid(&dtd, &GenValidConfig::with_target(150), seed);
        let order_a = apply(&doc, &u1).and_then(|t| apply(&t, &u2));
        let order_b = apply(&doc, &u2).and_then(|t| apply(&t, &u1));
        if let (Some(a), Some(b)) = (order_a, order_b) {
            prop_assert!(
                a.value_equiv(&b),
                "updates {} / {} were declared commutative but orders differ",
                u1,
                u2
            );
        }
    }
}

#[test]
fn following_encoding_selects_the_right_nodes() {
    // <r><a><d>1</d></a><b><d>2</d></b><c/></r>: the d under b and the c
    // element both follow the first d in document order without being its
    // descendants or ancestors.
    let tree = parse_xml("<r><a><d>1</d></a><b><d>2</d></b><c/></r>").unwrap();
    let q = parse_query("//a/d/following::node()").unwrap();
    let labels: Vec<String> = snapshot_query(&tree, &q).unwrap();
    // b, its d child (with its text), and c all follow; the a subtree does not.
    assert!(labels.iter().any(|s| s.starts_with("<b>")), "{labels:?}");
    assert!(labels.iter().any(|s| s.starts_with("<c")), "{labels:?}");
    assert!(!labels.iter().any(|s| s.starts_with("<a>")), "{labels:?}");
    assert!(!labels.iter().any(|s| s.starts_with("<r>")), "{labels:?}");
}

#[test]
fn preceding_encoding_selects_the_right_nodes() {
    let tree = parse_xml("<r><a><d>1</d></a><b><d>2</d></b><c/></r>").unwrap();
    let q = parse_query("//c/preceding::d").unwrap();
    let labels: Vec<String> = snapshot_query(&tree, &q).unwrap();
    assert_eq!(labels.len(), 2, "{labels:?}");
    assert!(labels.iter().all(|s| s.starts_with("<d>")), "{labels:?}");
}

#[test]
fn normalization_shrinks_the_maintenance_views() {
    // The rewriting pass must be a no-op or a strict simplification on the
    // benchmark views, never an expansion.
    for view in xml_qui::workloads::all_views() {
        let n = normalize_query(&view.query);
        assert!(
            n.size() <= view.query.size(),
            "{}: normalization grew the query",
            view.name
        );
    }
}

#[test]
fn commutativity_matrix_on_the_benchmark_updates_is_symmetric() {
    // Spot-check symmetry and reflexive dependence behaviour on a slice of
    // the XMark update workload (whole 31×31 matrix would be slow here).
    let dtd = xml_qui::workloads::xmark_dtd();
    let analyzer = CommutativityAnalyzer::new(&dtd);
    let updates = xml_qui::workloads::all_updates();
    let slice: Vec<_> = updates.iter().take(6).collect();
    for a in &slice {
        for b in &slice {
            let ab = analyzer.check(&a.update, &b.update).commutes();
            let ba = analyzer.check(&b.update, &a.update).commutes();
            assert_eq!(ab, ba, "{} vs {}", a.name, b.name);
        }
    }
}
