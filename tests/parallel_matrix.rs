//! Property tests for the parallel batch-analysis subsystem
//! (`qui_core::parallel`): for any schema, view set, update set and engine
//! policy, the batched matrix must produce verdicts — including witnesses and
//! chain counts — identical to the sequential per-pair analyzer, for any
//! worker count, and repeated parallel runs must be deterministic.

use proptest::prelude::*;
use xml_qui::core::matrix_reports;
use xml_qui::core::parallel::{analyze_matrix, assert_matches_sequential, Jobs};
use xml_qui::core::{AnalyzerConfig, EngineKind, IndependenceAnalyzer, MatrixVerdicts};
use xml_qui::schema::Dtd;
use xml_qui::workloads::{all_updates, all_views};
use xml_qui::xquery::{parse_query, parse_update, Query, Update};

/// Schemas exercising recursion, optional content, siblings and mixed
/// content — the shapes that drive the analysis down different engine paths.
fn schemas() -> Vec<Dtd> {
    vec![
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap(),
        Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
             author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
            "bib",
        )
        .unwrap(),
        Dtd::parse_compact("r -> a ; a -> (b, c)* ; b -> a? ; c -> #PCDATA", "r").unwrap(),
        // Heavily recursive: small explicit budgets overflow here, forcing
        // the CDAG fallback inside the batch.
        Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap(),
    ]
}

const QUERY_POOL: &[&str] = &[
    "//a",
    "//c",
    "//b//c",
    "//a//c",
    "//title",
    "//author//last",
    "//b//c//b",
    "for $x in //b return $x/c",
    "for $x in //book return <entry>{$x/title}</entry>",
    "//c/parent::node()",
    "if (//b) then //c else ()",
];

const UPDATE_POOL: &[&str] = &[
    "delete //b//c",
    "delete //c",
    "delete //price",
    "delete //c//b//c",
    "for $x in //b return insert <d/> into $x",
    "for $x in //book return insert <author><last>X</last></author> into $x",
    "for $x in //a return rename $x as b",
    "for $x in //title return replace $x with <title>new</title>",
];

fn pick_queries(mask: u16) -> Vec<Query> {
    QUERY_POOL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| parse_query(s).unwrap())
        .collect()
}

fn pick_updates(mask: u16) -> Vec<Update> {
    UPDATE_POOL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| parse_update(s).unwrap())
        .collect()
}

fn flags(m: &MatrixVerdicts) -> Vec<Vec<bool>> {
    (0..m.n_updates())
        .map(|ui| m.independent_flags(ui))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: batched parallel ≡ sequential per-pair, for
    /// every engine policy and for jobs ∈ {1, 2, 8}, on random view/update
    /// subsets over random schemas (including budget-overflow fallbacks).
    #[test]
    fn parallel_matrix_equals_sequential_checks(
        schema_idx in 0usize..4,
        view_mask in 1u16..(1 << 11),
        update_mask in 1u16..(1 << 8),
        engine_idx in 0usize..3,
        budget in prop_oneof![Just(60usize), Just(20_000usize)],
    ) {
        let dtd = &schemas()[schema_idx];
        let views = pick_queries(view_mask);
        let updates = pick_updates(update_mask);
        let engine = [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag][engine_idx];
        let config = AnalyzerConfig { engine, explicit_budget: budget, ..Default::default() };
        for jobs in [1, 2, 8] {
            let matrix = analyze_matrix(dtd, &views, &updates, &config, Jobs::Fixed(jobs));
            assert_matches_sequential(dtd, &views, &updates, &config, &matrix);
        }
    }

    /// `check_views` (the batched path) agrees with per-pair `check` for any
    /// worker count.
    #[test]
    fn check_views_jobs_equals_per_pair_check(
        schema_idx in 0usize..4,
        view_mask in 1u16..(1 << 11),
        u_idx in 0usize..UPDATE_POOL.len(),
    ) {
        let dtd = &schemas()[schema_idx];
        let views = pick_queries(view_mask);
        let u = parse_update(UPDATE_POOL[u_idx]).unwrap();
        let analyzer = IndependenceAnalyzer::new(dtd);
        let expected: Vec<bool> = views
            .iter()
            .map(|q| analyzer.check(q, &u).is_independent())
            .collect();
        for jobs in [1, 2, 8] {
            prop_assert_eq!(
                &analyzer.check_views_jobs(&views, &u, Jobs::Fixed(jobs)),
                &expected,
                "jobs = {}", jobs
            );
        }
    }

    /// Parallel runs are deterministic: repeated analyses with the same
    /// inputs and any worker count give identical matrices.
    #[test]
    fn parallel_runs_are_deterministic(
        schema_idx in 0usize..4,
        view_mask in 1u16..(1 << 11),
        update_mask in 1u16..(1 << 8),
    ) {
        let dtd = &schemas()[schema_idx];
        let views = pick_queries(view_mask);
        let updates = pick_updates(update_mask);
        let config = AnalyzerConfig::default();
        let reference = flags(&analyze_matrix(dtd, &views, &updates, &config, Jobs::Fixed(1)));
        for run in 0..3 {
            let again = flags(&analyze_matrix(dtd, &views, &updates, &config, Jobs::Fixed(8)));
            prop_assert_eq!(&again, &reference, "run {}", run);
        }
    }
}

/// The full benchmark workload (36 views × 31 updates) through
/// `matrix_reports` with different worker counts renders identically — the
/// acceptance check of `qui matrix --jobs N ≡ --jobs 1` at workload scale.
#[test]
fn workload_matrix_reports_identical_across_jobs() {
    let dtd = xml_qui::workloads::xmark_dtd();
    let views: Vec<(String, Query)> = all_views()
        .into_iter()
        .take(12)
        .map(|v| (v.name.to_string(), v.query))
        .collect();
    let updates: Vec<(String, Update)> = all_updates()
        .into_iter()
        .take(6)
        .map(|u| (u.name.to_string(), u.update))
        .collect();
    let sequential = matrix_reports(&dtd, &views, &updates, Jobs::Fixed(1));
    let parallel = matrix_reports(&dtd, &views, &updates, Jobs::Fixed(8));
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.render(), p.render(), "update {}", s.update_name);
    }
}

/// `QUI_JOBS` only selects the worker count, never the verdicts: Auto (which
/// reads the environment) agrees with explicit worker counts.
#[test]
fn auto_jobs_policy_matches_fixed() {
    let dtd = schemas().remove(0);
    let views = pick_queries(0b111);
    let updates = pick_updates(0b11);
    let config = AnalyzerConfig::default();
    let auto = flags(&analyze_matrix(&dtd, &views, &updates, &config, Jobs::Auto));
    let fixed = flags(&analyze_matrix(
        &dtd,
        &views,
        &updates,
        &config,
        Jobs::Fixed(1),
    ));
    assert_eq!(auto, fixed);
}
