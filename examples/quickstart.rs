//! Quickstart: the two motivating examples from the paper's introduction.
//!
//! Run with `cargo run --example quickstart`.

use xml_qui::core::IndependenceAnalyzer;
use xml_qui::schema::Dtd;
use xml_qui::xquery::{parse_query, parse_update};

fn main() {
    // Example 1 — the schema of Figure 1: c under b is never under a.
    let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
    let q1 = parse_query("//a//c").unwrap();
    let u1 = parse_update("delete //b//c").unwrap();
    let analyzer = IndependenceAnalyzer::new(&dtd);
    let verdict = analyzer.check(&q1, &u1);
    println!("q1 = //a//c   u1 = delete //b//c");
    println!(
        "  chain analysis: {} (k = {}, engine = {:?})",
        if verdict.is_independent() {
            "INDEPENDENT"
        } else {
            "dependent"
        },
        verdict.k,
        verdict.engine_used
    );

    // Example 2 — the bibliographic DTD: inserting authors never affects
    // titles, which only chain (not type-set) reasoning can see.
    let bib = Dtd::parse_compact(
        "bib -> book* ; book -> (title, author*, price?) ; title -> #PCDATA ; \
         author -> (first?, last) ; first -> #PCDATA ; last -> #PCDATA ; price -> #PCDATA",
        "bib",
    )
    .unwrap();
    let q2 = parse_query("//title").unwrap();
    let u2 = parse_update("for $x in //book return insert <author/> into $x").unwrap();
    let analyzer = IndependenceAnalyzer::new(&bib);
    println!("q2 = //title   u2 = insert <author/> into //book");
    println!(
        "  chain analysis: {}",
        if analyzer.check(&q2, &u2).is_independent() {
            "INDEPENDENT"
        } else {
            "dependent"
        }
    );
    let baseline = xml_qui::baseline::TypeSetAnalyzer::new(&bib);
    println!(
        "  type-set baseline: {}",
        if baseline.independent(&q2, &u2) {
            "INDEPENDENT"
        } else {
            "dependent (both touch the type `book`)"
        }
    );

    // A pair that really is dependent — the analysis reports a witness.
    let q3 = parse_query("//author//last").unwrap();
    let v = analyzer.check(&q3, &u2);
    println!("q3 = //author//last   u2 as above");
    println!(
        "  chain analysis: {}",
        if v.is_independent() {
            "INDEPENDENT"
        } else {
            "dependent"
        }
    );
    if let Some(w) = v.witness {
        println!(
            "  witness: query chain {} vs update chain {} ({:?})",
            w.query_chain.display(&bib),
            w.update_chain.display(&bib),
            w.kind
        );
    }
}
