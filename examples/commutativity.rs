//! Update-update commutativity: deciding statically whether two concurrent
//! updates can be applied in either order.
//!
//! The paper motivates independence analysis with concurrency control; this
//! example uses the chain-based commutativity analyzer (the update-update
//! counterpart of the query-update analysis) on a small content-management
//! schema, and cross-checks each verdict dynamically by applying the two
//! updates in both orders on a generated document.
//!
//! Run with `cargo run --example commutativity`.

use xml_qui::core::CommutativityAnalyzer;
use xml_qui::schema::{generate_valid, Dtd, GenValidConfig};
use xml_qui::xmlstore::Tree;
use xml_qui::xquery::eval::{apply_pending_list, evaluate_update};
use xml_qui::xquery::{parse_update, Update};

/// Applies `first; second` on a clone of the tree and returns the result.
fn apply_in_order(tree: &Tree, first: &Update, second: &Update) -> Option<Tree> {
    let mut t = tree.clone();
    for u in [first, second] {
        let root = t.root;
        let upl = evaluate_update(&mut t.store, root, u).ok()?;
        apply_pending_list(&mut t.store, &upl);
    }
    Some(t)
}

fn main() {
    let dtd = Dtd::parse_compact(
        "site -> (page*, assets?) ; page -> (heading, para*, sidebar?) ; \
         heading -> #PCDATA ; para -> #PCDATA ; sidebar -> link* ; \
         link -> #PCDATA ; assets -> image* ; image -> #PCDATA",
        "site",
    )
    .unwrap();
    let analyzer = CommutativityAnalyzer::new(&dtd);
    let doc = generate_valid(&dtd, &GenValidConfig::with_target(300), 11);

    let pairs = [
        (
            "editors touch different regions",
            "for $s in //sidebar return delete $s/link",
            "for $a in /assets return insert <image>logo</image> into $a",
        ),
        (
            "both add to the same pages",
            "for $p in //page return insert <para>new</para> into $p",
            "for $p in //page return delete $p/para",
        ),
        (
            "one deletes what the other renames",
            "delete //page/sidebar",
            "for $l in //sidebar/link return rename $l as reference",
        ),
        (
            "headings vs paragraphs",
            "for $h in //page/heading return rename $h as title",
            "for $p in //page return delete $p/para",
        ),
    ];

    println!(
        "schema: {} element types, document: {} nodes\n",
        dtd.size(),
        doc.size()
    );
    for (label, s1, s2) in pairs {
        let u1 = parse_update(s1).unwrap();
        let u2 = parse_update(s2).unwrap();
        let verdict = analyzer.check(&u1, &u2);
        let dynamic = match (
            apply_in_order(&doc, &u1, &u2),
            apply_in_order(&doc, &u2, &u1),
        ) {
            (Some(a), Some(b)) => {
                if a.value_equiv(&b) {
                    "same result in both orders"
                } else {
                    "results differ between orders"
                }
            }
            _ => "an order failed to evaluate",
        };
        println!("{label}:");
        println!("  u1 = {s1}");
        println!("  u2 = {s2}");
        println!(
            "  static: {}{}   (k = {}, dynamic check on this document: {})",
            if verdict.commutes() {
                "COMMUTE"
            } else {
                "may not commute"
            },
            verdict
                .conflict
                .map(|c| format!(" [{c:?}]"))
                .unwrap_or_default(),
            verdict.k,
            dynamic
        );
        println!();
    }
}
