//! Access control (the paper's third motivation): a query defines the part
//! of the database a user must not change; an update is admissible only if
//! it is statically independent of that protected region.
//!
//! Run with `cargo run --example access_control`.

use xml_qui::core::IndependenceAnalyzer;
use xml_qui::schema::Dtd;
use xml_qui::xquery::{parse_query, parse_update};

fn main() {
    // A small hospital schema: diagnoses are protected, administrative data
    // is not.
    let dtd = Dtd::parse_compact(
        "hospital -> patient* ; \
         patient -> (name, record, billing) ; \
         record -> (diagnosis*, prescription*) ; \
         diagnosis -> #PCDATA ; prescription -> #PCDATA ; \
         name -> #PCDATA ; billing -> (address, amount) ; \
         address -> #PCDATA ; amount -> #PCDATA",
        "hospital",
    )
    .unwrap();
    let analyzer = IndependenceAnalyzer::new(&dtd);

    // The protected region: everything reachable through diagnoses.
    let policy = parse_query("//record/diagnosis").unwrap();

    let requests = [
        (
            "update the billing address",
            "for $a in //billing/address return replace $a with <address>new</address>",
        ),
        (
            "add a prescription",
            "for $r in //record return insert <prescription>aspirin</prescription> into $r",
        ),
        ("delete a diagnosis", "delete //diagnosis"),
        (
            "rename record sections",
            "for $r in //patient/record return rename $r as record",
        ),
    ];
    println!("policy: updates must be independent of {policy}");
    for (label, src) in requests {
        let update = parse_update(src).unwrap();
        let verdict = analyzer.check(&policy, &update);
        println!(
            "  [{}] {label}",
            if verdict.is_independent() {
                "ALLOWED"
            } else {
                "REJECTED"
            },
        );
    }
}
