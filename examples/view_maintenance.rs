//! View maintenance over an XMark-style auction document: re-materialize
//! only the views that the static analysis cannot prove independent of each
//! incoming update (the scenario of Fig. 3.c).
//!
//! Run with `cargo run --release --example view_maintenance`.

use std::time::Instant;
use xml_qui::core::IndependenceAnalyzer;
use xml_qui::workloads::{all_updates, all_views, xmark_document, xmark_dtd};
use xml_qui::xquery::{apply_pending_list, evaluate_query, evaluate_update};

fn main() {
    let dtd = xmark_dtd();
    let analyzer = IndependenceAnalyzer::new(&dtd);
    let views: Vec<_> = all_views().into_iter().take(12).collect();
    let updates: Vec<_> = all_updates().into_iter().take(8).collect();
    let mut doc = xmark_document(8_000, 42);
    println!(
        "document: {} nodes, {} views, {} updates",
        doc.size(),
        views.len(),
        updates.len()
    );

    // Materialize every view once.
    let root = doc.root;
    let mut materialized: Vec<usize> = Vec::new();
    for v in &views {
        let result = evaluate_query(&mut doc.store, root, &v.query).unwrap();
        materialized.push(result.len());
    }

    let mut refreshed = 0usize;
    let mut skipped = 0usize;
    let start = Instant::now();
    for u in &updates {
        // Decide statically which views need a refresh.
        let decisions: Vec<bool> = views
            .iter()
            .map(|v| !analyzer.check(&v.query, &u.update).is_independent())
            .collect();
        // Apply the update.
        let upl = evaluate_update(&mut doc.store, root, &u.update).unwrap();
        apply_pending_list(&mut doc.store, &upl);
        // Refresh only what is needed.
        for (i, v) in views.iter().enumerate() {
            if decisions[i] {
                let result = evaluate_query(&mut doc.store, root, &v.query).unwrap();
                materialized[i] = result.len();
                refreshed += 1;
            } else {
                skipped += 1;
            }
        }
        println!(
            "{:<5} refreshed {:>2} / {} views",
            u.name,
            decisions.iter().filter(|&&d| d).count(),
            views.len()
        );
    }
    println!(
        "total: {} refreshes performed, {} skipped thanks to the analysis, in {:.1} ms",
        refreshed,
        skipped,
        start.elapsed().as_secs_f64() * 1e3
    );
}
