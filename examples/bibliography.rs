//! The bibliographic use-case suite (the paper's §1/§3 motivating examples)
//! analysed with both the chain analysis and the type-set baseline, and
//! cross-checked dynamically on generated documents.
//!
//! Run with `cargo run --example bibliography`.

use xml_qui::baseline::TypeSetAnalyzer;
use xml_qui::core::IndependenceAnalyzer;
use xml_qui::workloads::usecases::{bib_document, bib_dtd, bib_pairs};
use xml_qui::xquery::{dynamic_independent, DynamicOutcome};

fn main() {
    let dtd = bib_dtd();
    let chains = IndependenceAnalyzer::new(&dtd);
    let types = TypeSetAnalyzer::new(&dtd);
    let doc = bib_document(400, 7);

    println!(
        "bibliography DTD ({} element types), document of {} nodes\n",
        dtd.size(),
        doc.size()
    );
    println!(
        "{:<6} {:<12} {:<12} {:<12} {:<10}  rationale",
        "pair", "label", "chains", "types[6]", "dynamic"
    );
    for pair in bib_pairs() {
        let chain_verdict = chains.check(&pair.query, &pair.update);
        let type_verdict = types.independent(&pair.query, &pair.update);
        let dynamic = match dynamic_independent(&doc, &pair.query, &pair.update) {
            Ok(DynamicOutcome::Changed) => "changed",
            Ok(DynamicOutcome::UnchangedOnThisTree) => "unchanged",
            Err(_) => "error",
        };
        println!(
            "{:<6} {:<12} {:<12} {:<12} {:<10}  {}",
            pair.name,
            if pair.independent {
                "independent"
            } else {
                "dependent"
            },
            if chain_verdict.is_independent() {
                "independent"
            } else {
                "dependent"
            },
            if type_verdict {
                "independent"
            } else {
                "dependent"
            },
            dynamic,
            pair.rationale,
        );
    }

    // Tally the headline numbers of the comparison.
    let pairs = bib_pairs();
    let truly = pairs.iter().filter(|p| p.independent).count();
    let by_chains = pairs
        .iter()
        .filter(|p| p.independent && chains.check(&p.query, &p.update).is_independent())
        .count();
    let by_types = pairs
        .iter()
        .filter(|p| p.independent && types.independent(&p.query, &p.update))
        .count();
    println!(
        "\nindependent pairs detected: chains {by_chains}/{truly}, type-set baseline {by_types}/{truly}"
    );
}
