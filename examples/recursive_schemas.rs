//! The finite analysis on recursive schemas: how the multiplicity bound
//! `k = k_q + k_u` is computed (Table 3) and how the two engines behave on
//! the heavily recursive R-benchmark schemas.
//!
//! Run with `cargo run --release --example recursive_schemas`.

use std::time::Instant;
use xml_qui::core::engine::cdag::CdagEngine;
use xml_qui::core::{k_for_pair, k_of_query, k_of_update, IndependenceAnalyzer};
use xml_qui::schema::Dtd;
use xml_qui::workloads::{rbench_expression, rbench_schema};
use xml_qui::xquery::{parse_query, parse_update};

fn main() {
    // The schema d1 of §5.
    let d1 = Dtd::builder()
        .rule("r", "a")
        .rule("a", "(b, c, e)*")
        .rule("b", "f")
        .rule("c", "f")
        .rule("e", "f")
        .rule("f", "(a, g)")
        .rule("g", "EMPTY")
        .build("r")
        .unwrap();
    let q = parse_query("$root/descendant::b").unwrap();
    let u = parse_update("delete $root/descendant::c").unwrap();
    println!(
        "k_q = {}, k_u = {}, k = {} for the §5 example",
        k_of_query(&q),
        k_of_update(&u),
        k_for_pair(&q, &u)
    );
    let analyzer = IndependenceAnalyzer::new(&d1);
    println!(
        "verdict: {} (they are dependent — deleting c can remove descendants of returned b nodes)",
        if analyzer.check(&q, &u).is_independent() {
            "independent"
        } else {
            "dependent"
        }
    );

    // Scalability of the CDAG engine on the R-benchmark.
    println!("\nCDAG inference on the R-benchmark (d_n, e_m):");
    for n in [3usize, 5, 10] {
        let schema = rbench_schema(n);
        for m in [5usize, 10] {
            let e = rbench_expression(m);
            let start = Instant::now();
            let eng = CdagEngine::new(&schema, m + 5);
            let chains = eng.infer_query(&eng.root_gamma(e.free_vars()), &e);
            println!(
                "  d{n}, e{m}, k={}: {} CDAG edges in {:.1} ms",
                m + 5,
                chains.returns.edge_count(),
                start.elapsed().as_secs_f64() * 1e3
            );
        }
    }
}
