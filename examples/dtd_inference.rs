//! Schema-less workflows: infer a DTD from a corpus of documents, then run
//! the chain-based independence analysis against the inferred schema.
//!
//! The paper (§1) assumes a schema is available and points at DTD-inference
//! techniques for the schema-less case; this example shows that pipeline end
//! to end.
//!
//! Run with `cargo run --example dtd_inference`.

use xml_qui::core::IndependenceAnalyzer;
use xml_qui::schema::infer::infer_dtd;
use xml_qui::xmlstore::parse_xml;
use xml_qui::xquery::{parse_query, parse_update};

fn main() {
    // A small corpus of order documents, as would be sampled from a store.
    let corpus: Vec<_> = [
        "<orders>\
           <order><id>1</id><customer>alice</customer>\
             <line><sku>a-1</sku><qty>2</qty></line>\
             <line><sku>b-9</sku><qty>1</qty></line>\
           </order>\
         </orders>",
        "<orders>\
           <order><id>2</id><customer>bob</customer>\
             <line><sku>c-3</sku><qty>5</qty><note>gift</note></line>\
           </order>\
           <order><id>3</id><customer>carol</customer></order>\
         </orders>",
        "<orders/>",
    ]
    .iter()
    .map(|s| parse_xml(s).expect("corpus document parses"))
    .collect();

    let inferred = infer_dtd(&corpus).expect("inference succeeds");
    println!(
        "inferred a DTD from {} documents ({} element nodes):\n",
        inferred.documents, inferred.elements
    );
    for (name, model) in &inferred.rules {
        println!("  {name:<10} -> {model}");
    }

    // Every corpus document is valid w.r.t. the inferred schema.
    for (i, doc) in corpus.iter().enumerate() {
        assert!(
            inferred.dtd.validate(doc).is_ok(),
            "document {i} must validate"
        );
    }
    println!("\nall corpus documents validate against the inferred DTD");

    // Use the inferred schema for independence analysis: refreshing a view of
    // customer names is not needed when an update only touches order lines.
    let analyzer = IndependenceAnalyzer::new(&inferred.dtd);
    let view = parse_query("//order/customer").unwrap();
    let update = parse_update("for $l in //line return delete $l/note").unwrap();
    let verdict = analyzer.check(&view, &update);
    println!(
        "\nview //order/customer vs update 'delete //line/note': {}",
        if verdict.is_independent() {
            "INDEPENDENT — no refresh needed"
        } else {
            "dependent"
        }
    );

    let update2 = parse_update("for $o in //order return rename $o/customer as client").unwrap();
    let verdict2 = analyzer.check(&view, &update2);
    println!(
        "view //order/customer vs update 'rename customer as client': {}",
        if verdict2.is_independent() {
            "independent"
        } else {
            "DEPENDENT — refresh required"
        }
    );
}
