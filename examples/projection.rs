//! Chain-based document projection: evaluate a view on a pruned document.
//!
//! The chains inferred for a query identify exactly the parts of a document
//! the query can visit (Theorem 3.2). Projecting the document onto those
//! chains before evaluation keeps the result identical while discarding the
//! rest — the memory-saving trick of the XML projection literature, driven
//! here by the paper's chain inference.
//!
//! Run with `cargo run --release --example projection`.

use xml_qui::core::ChainProjector;
use xml_qui::workloads::{xmark_document, xmark_dtd};
use xml_qui::xquery::dynamic::snapshot_query;
use xml_qui::xquery::parse_query;

fn main() {
    let dtd = xmark_dtd();
    let doc = xmark_document(20_000, 3);
    let projector = ChainProjector::new(&dtd).with_budget(400_000);

    let views = [
        ("person names", "/people/person/name"),
        (
            "open auction bids",
            "/open_auctions/open_auction/bidder/increase",
        ),
        ("item names in Europe", "/regions/europe/item/name"),
        ("all keywords", "//keyword"),
    ];

    println!("XMark-style document: {} nodes\n", doc.size());
    println!(
        "{:<26} {:>12} {:>10} {:>8}",
        "view", "kept nodes", "kept %", "same?"
    );
    for (label, src) in views {
        let q = parse_query(src).unwrap();
        let Some(projected) = projector.project_for_query(&doc, &q) else {
            println!("{label:<26} {:>12} {:>10} {:>8}", "-", "-", "fallback");
            continue;
        };
        let same = snapshot_query(&doc, &q).unwrap() == snapshot_query(&projected, &q).unwrap();
        println!(
            "{:<26} {:>12} {:>9.1}% {:>8}",
            label,
            projected.size(),
            100.0 * projected.size() as f64 / doc.size() as f64,
            if same { "yes" } else { "NO" }
        );
        assert!(same, "projection must preserve the view result");
    }
    println!("\nEvery view evaluates identically on its projection.");
}
