//! # xml-qui — Type-Based Detection of XML Query-Update Independence
//!
//! This is the top-level facade crate of the workspace reproducing the VLDB
//! 2012 paper *"Type-Based Detection of XML Query-Update Independence"*
//! (Bidoit-Tollu, Colazzo, Ulliana).
//!
//! It re-exports the public APIs of the individual crates:
//!
//! * [`xmlstore`] — the XML data model (stores, trees, locations), parsing,
//!   serialization, value equivalence and projections (paper §2).
//! * [`schema`] — DTDs and Extended DTDs, content-model regular expressions,
//!   validation, reachability and the chain universe `C_d` (paper §2, §7).
//! * [`xquery`] — the XQuery / XQuery Update Facility fragments of the paper:
//!   AST, parser, evaluator, update pending lists, and a *dynamic*
//!   independence checker used as ground truth in tests (paper §2).
//! * [`core`] — the paper's contribution: chain inference (paper §3), the
//!   infinite analysis (§4), the finite `k`-chain analysis (§5) and the
//!   CDAG-based implementation (§6.1). The main entry point is the stateful
//!   [`core::AnalysisSession`] (built with [`core::SessionBuilder`]);
//!   the stateless [`core::IndependenceAnalyzer`] is kept as a thin
//!   wrapper.
//! * [`baseline`] — a re-implementation of the schema-based *type set*
//!   analysis of Benedikt & Cheney used as the comparison baseline.
//! * [`workloads`] — XMark / XPathMark workloads, the update sets of §6.2,
//!   the R-benchmark, and document generators.
//! * [`traffic`] — the schema-corpus-backed multi-tenant traffic simulator
//!   with tiered approximate-first answering (`qui traffic`).
//!
//! ## Quick example
//!
//! ```
//! use xml_qui::schema::Dtd;
//! use xml_qui::xquery::{parse_query, parse_update};
//! use xml_qui::core::IndependenceAnalyzer;
//!
//! // The DTD from Figure 1 of the paper.
//! let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
//! let q = parse_query("//a//c").unwrap();
//! let u = parse_update("delete //b//c").unwrap();
//!
//! let analyzer = IndependenceAnalyzer::new(&dtd);
//! assert!(analyzer.check(&q, &u).is_independent());
//! ```

pub use qui_baseline as baseline;
pub use qui_core as core;
pub use qui_schema as schema;
pub use qui_traffic as traffic;
pub use qui_workloads as workloads;
pub use qui_xmlstore as xmlstore;
pub use qui_xquery as xquery;
