//! `qui` — the command-line front end of the workspace.
//!
//! ```text
//! qui check     --dtd <file> --query <expr> --update <expr> [--start <name>] [--explain] [--engine auto|explicit|cdag]
//! qui commute   --dtd <file> --update <expr> --update2 <expr> [--start <name>]
//! qui chains    --dtd <file> (--query <expr> | --update <expr>) [--k <n>] [--start <name>]
//! qui matrix    --dtd <file> --views <file> --update <expr> [--start <name>] [--jobs <n>] [--engine auto|explicit|cdag]
//! qui validate  --dtd <file> --doc <file> [--attributes] [--stream] [--start <name>]
//! qui infer-dtd <doc.xml> [<doc.xml> …]
//! qui generate  --dtd <file> [--nodes <n>] [--seed <n>] [--start <name>]
//! qui xmark     (--scale S|M|L|XL | --nodes <n>) [--seed <n>] [--out <file>]
//! qui maintain  [--scale S|M|L|XL | --nodes <n>] [--seed <n>] [--jobs <n>]
//! qui traffic   [--tenants <n>] [--ops <n>] [--schemas <n>] [--seed <n>] [--jobs <n>] [--http] [--out <file>]
//! ```
//!
//! Expressions may be given inline or as `@path/to/file`. DTD files may use
//! either the compact `name -> model` syntax or standard `<!ELEMENT …>` /
//! `<!ATTLIST …>` declarations; the start symbol defaults to the first
//! declared element.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use xml_qui::baseline::TypeSetAnalyzer;
use xml_qui::core::{
    AnalyzerConfig, CommutativityAnalyzer, EngineKind, IndependenceAnalyzer, Jobs, Request,
    ServeConfig, Server, SessionBuilder, SessionHandler, SessionRegistry,
};
use xml_qui::schema::infer::infer_dtd;
use xml_qui::schema::{generate_valid, Dtd, GenValidConfig};
use xml_qui::traffic::{TrafficConfig, TrafficSim};
use xml_qui::workloads::{
    all_updates, all_views, maintenance_simulation_jobs, stream_xmark_document, XmarkScale,
};
use xml_qui::xmlstore::{parse_xml, parse_xml_keep_attributes, serialize_tree, Tree};
use xml_qui::xquery::{parse_query, parse_update, Query, Update};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("qui: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one invocation and returns its stdout text.
fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let parsed = CliArgs::parse(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "check" => cmd_check(&parsed),
        "commute" => cmd_commute(&parsed),
        "chains" => cmd_chains(&parsed),
        "matrix" => cmd_matrix(&parsed),
        "session" => cmd_session(&parsed),
        "serve" => cmd_serve(&parsed),
        "validate" => cmd_validate(&parsed),
        "infer-dtd" => cmd_infer_dtd(&parsed),
        "generate" => cmd_generate(&parsed),
        "xmark" => cmd_xmark(&parsed),
        "maintain" => cmd_maintain(&parsed),
        "traffic" => cmd_traffic(&parsed),
        other => Err(format!("unknown command '{other}' (try 'qui help')")),
    }
}

fn usage() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "qui — type-based XML query-update independence");
    let _ = writeln!(s, "commands:");
    let _ = writeln!(
        s,
        "  check     --dtd <file> --query <expr> --update <expr> [--explain] [--engine E]"
    );
    let _ = writeln!(
        s,
        "  commute   --dtd <file> --update <expr> --update2 <expr>"
    );
    let _ = writeln!(
        s,
        "  chains    --dtd <file> (--query <expr> | --update <expr>) [--k <n>]"
    );
    let _ = writeln!(
        s,
        "  matrix    --dtd <file> --views <file> --update <expr> [--jobs <n>] [--engine E]"
    );
    let _ = writeln!(
        s,
        "  session   --dtd <file> [--jobs <n>] [--engine E]   (REPL on stdin)"
    );
    let _ = writeln!(
        s,
        "  serve     --dtd <file> [--addr <host:port>] [--workers <n>] [--engine E]"
    );
    let _ = writeln!(
        s,
        "  validate  --dtd <file> --doc <file> [--attributes] [--stream]"
    );
    let _ = writeln!(s, "  infer-dtd <doc.xml> [<doc.xml> …]");
    let _ = writeln!(s, "  generate  --dtd <file> [--nodes <n>] [--seed <n>]");
    let _ = writeln!(
        s,
        "  xmark     (--scale S|M|L|XL | --nodes <n>) [--seed <n>] [--out <file>]"
    );
    let _ = writeln!(
        s,
        "  maintain  [--scale S|M|L|XL | --nodes <n>] [--seed <n>] [--jobs <n>]"
    );
    let _ = writeln!(
        s,
        "  traffic   [--tenants <n>] [--ops <n>] [--schemas <n>] [--seed <n>] [--jobs <n>] [--http] [--out <file>]"
    );
    let _ = writeln!(s, "options: --start <name> overrides the DTD start symbol;");
    let _ = writeln!(s, "         expressions may be written inline or as @file;");
    let _ = writeln!(
        s,
        "         --stream parses documents incrementally from disk;"
    );
    let _ = writeln!(
        s,
        "         --jobs <n> (or QUI_JOBS) shards work over n threads;"
    );
    let _ = writeln!(
        s,
        "         --engine auto|explicit|cdag picks the inference engine"
    );
    let _ = writeln!(
        s,
        "         (auto = CDAG-first with explicit confirmation, the default)."
    );
    s
}

// ---------------------------------------------------------------------------
// Argument handling
// ---------------------------------------------------------------------------

/// Parsed `--flag value` options plus positional arguments.
#[derive(Debug, Default)]
struct CliArgs {
    options: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

impl CliArgs {
    fn parse(args: &[String]) -> Result<CliArgs, String> {
        const VALUE_OPTIONS: [&str; 20] = [
            "--dtd",
            "--start",
            "--query",
            "--update",
            "--update2",
            "--views",
            "--doc",
            "--nodes",
            "--seed",
            "--k",
            "--jobs",
            "--scale",
            "--out",
            "--engine",
            "--addr",
            "--workers",
            "--name",
            "--tenants",
            "--ops",
            "--schemas",
        ];
        const BARE_FLAGS: [&str; 4] = ["--explain", "--attributes", "--stream", "--http"];
        let mut out = CliArgs::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if VALUE_OPTIONS.contains(&a.as_str()) {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{a} expects a value"))?;
                out.options.insert(a.clone(), value.clone());
                i += 2;
            } else if BARE_FLAGS.contains(&a.as_str()) {
                out.flags.push(a.clone());
                i += 1;
            } else if a.starts_with("--") {
                return Err(format!("unknown option '{a}'"));
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing {key}"))
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{key} expects an integer, got '{v}'")),
        }
    }
}

/// Reads an expression argument: inline text, or the contents of a file when
/// the argument starts with `@`.
fn read_expr(arg: &str) -> Result<String, String> {
    if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    } else {
        Ok(arg.to_string())
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Loads a DTD from a file in either supported syntax. The start symbol is
/// `--start` when given, otherwise the first declared element.
fn load_dtd(args: &CliArgs) -> Result<Dtd, String> {
    let path = args.require("--dtd")?;
    let src = read_file(path)?;
    let start = match args.get("--start") {
        Some(s) => s.to_string(),
        None => default_start(&src).ok_or_else(|| format!("{path}: no element declarations"))?,
    };
    let dtd = if src.contains("<!ELEMENT") {
        xml_qui::schema::parse_dtd_with_attributes(&src, &start)
    } else {
        Dtd::parse_compact(&src, &start)
    };
    dtd.map_err(|e| format!("{path}: {e}"))
}

/// The first declared element name of a DTD source, used as the default
/// start symbol.
fn default_start(src: &str) -> Option<String> {
    if let Some(idx) = src.find("<!ELEMENT") {
        let rest = src[idx + "<!ELEMENT".len()..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
            .collect();
        return (!name.is_empty()).then_some(name);
    }
    for line in src.split([';', '\n']) {
        if let Some((lhs, _)) = line.split_once("->").or_else(|| line.split_once('←')) {
            let lhs = lhs.trim();
            if !lhs.is_empty() {
                return Some(lhs.to_string());
            }
        }
    }
    None
}

fn load_query(args: &CliArgs) -> Result<Query, String> {
    let src = read_expr(args.require("--query")?)?;
    parse_query(&src).map_err(|e| format!("query: {e}"))
}

fn load_update(args: &CliArgs, key: &str) -> Result<Update, String> {
    let src = read_expr(args.require(key)?)?;
    parse_update(&src).map_err(|e| format!("update: {e}"))
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

/// The `--engine` option resolved to an analyzer configuration. A typo
/// is an error naming the valid engines — never a silent fallback.
fn engine_config(args: &CliArgs) -> Result<AnalyzerConfig, String> {
    let engine = match args.get("--engine") {
        None => EngineKind::Auto,
        Some(s) => EngineKind::parse(s).map_err(|e| format!("--engine: {e}"))?,
    };
    Ok(AnalyzerConfig {
        engine,
        ..Default::default()
    })
}

/// The `--jobs` option resolved to a worker policy; without the flag the
/// `QUI_JOBS` environment override applies (via [`Jobs::from_env`], the one
/// place that variable is interpreted).
fn jobs_arg(args: &CliArgs) -> Result<Jobs, String> {
    match args.get("--jobs") {
        Some(v) => {
            let n: usize = v
                .parse()
                .ok()
                .filter(|n: &usize| *n > 0)
                .ok_or_else(|| format!("--jobs expects a positive integer, got '{v}'"))?;
            Ok(Jobs::fixed(n))
        }
        None => Ok(Jobs::from_env()),
    }
}

fn cmd_check(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let q = load_query(args)?;
    let u = load_update(args, "--update")?;
    let session = SessionBuilder::new(&dtd)
        .config(engine_config(args)?)
        .build();
    let mut out = String::new();
    if args.has_flag("--explain") {
        out.push_str(&session.explain(&q, &u));
    } else {
        let verdict = session.check(&q, &u);
        let _ = writeln!(
            out,
            "{}",
            if verdict.is_independent() {
                "independent"
            } else {
                "dependent"
            }
        );
        let _ = writeln!(
            out,
            "k = {} (k_q = {}, k_u = {}), engine = {:?}",
            verdict.k, verdict.k_query, verdict.k_update, verdict.engine_used
        );
    }
    let baseline = TypeSetAnalyzer::new(&dtd);
    let _ = writeln!(
        out,
        "type-set baseline [Benedikt & Cheney]: {}",
        if baseline.independent(&q, &u) {
            "independent"
        } else {
            "dependent"
        }
    );
    Ok(out)
}

fn cmd_commute(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let u1 = load_update(args, "--update")?;
    let u2 = load_update(args, "--update2")?;
    let analyzer = CommutativityAnalyzer::new(&dtd);
    let verdict = analyzer.check(&u1, &u2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        if verdict.commutes() {
            "commute"
        } else {
            "may not commute"
        }
    );
    if let Some(conflict) = verdict.conflict {
        let _ = writeln!(out, "conflict: {conflict:?}");
    }
    let _ = writeln!(out, "k = {}", verdict.k);
    Ok(out)
}

fn cmd_chains(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let (q, u) = match (args.get("--query"), args.get("--update")) {
        (Some(_), None) => (load_query(args)?, Update::Empty),
        (None, Some(_)) => (Query::Empty, load_update(args, "--update")?),
        _ => return Err("chains expects exactly one of --query or --update".to_string()),
    };
    let analyzer = IndependenceAnalyzer::new(&dtd);
    let k = args.get_usize("--k", analyzer.k_for(&q, &u).max(1))?;
    let Some((qc, uc)) = analyzer.infer_explicit(&q, &u, k) else {
        return Err("chain materialization exceeded the explicit engine budget".to_string());
    };
    let mut out = String::new();
    let _ = writeln!(out, "k = {k}");
    if !matches!(q, Query::Empty) {
        let _ = writeln!(out, "{}", qc.display(&dtd));
    }
    if !matches!(u, Update::Empty) {
        let _ = writeln!(out, "update chains: {}", uc.display(&dtd));
    }
    Ok(out)
}

fn cmd_matrix(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let views_path = args.require("--views")?;
    let views_src = read_file(views_path)?;
    let mut views = Vec::new();
    for (i, line) in views_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // A `name:` prefix is any slash-free text before the first colon —
        // unless that colon opens an axis step (`child::a` is a query, not
        // a named line).
        let (name, src) = match line.split_once(':') {
            Some((n, s)) if !n.contains('/') && !s.starts_with(':') => {
                (n.trim().to_string(), s.trim())
            }
            _ => (format!("v{}", i + 1), line),
        };
        let q = parse_query(src).map_err(|e| format!("{views_path}:{}: {e}", i + 1))?;
        views.push((name, q));
    }
    let u = load_update(args, "--update")?;
    // Without --jobs, defer to QUI_JOBS or the machine's parallelism.
    let jobs = jobs_arg(args)?;
    let mut session = SessionBuilder::new(&dtd)
        .config(engine_config(args)?)
        .jobs(jobs)
        .build();
    let update_name = args.get("--update").unwrap_or("update").to_string();
    session.add_workload(views, [(update_name, u)]);
    let report = session.reports().pop().expect("one update registered");
    Ok(report.render())
}

/// `qui session` — a REPL over a long-lived [`xml_qui::core::AnalysisSession`],
/// demonstrating the incremental workload API: views and updates are
/// registered one line at a time, the verdict matrix is maintained across
/// edits, and only the affected row/column is recomputed per command.
fn cmd_session(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let config = engine_config(args)?;
    let jobs = jobs_arg(args)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_session_repl(&dtd, config, jobs, stdin.lock(), &mut stdout.lock())
        .map_err(|e| format!("session: {e}"))?;
    Ok(String::new())
}

/// The REPL loop behind `qui session`, factored over generic IO so tests
/// can drive it with in-memory buffers. Each line is parsed into a protocol
/// [`Request`] and dispatched through the same [`SessionHandler`] that
/// backs `qui serve` — the REPL owns no command logic of its own. Command
/// errors are reported and the session continues; only IO failures abort.
fn run_session_repl<R: std::io::BufRead, W: std::io::Write>(
    dtd: &Dtd,
    config: AnalyzerConfig,
    jobs: Jobs,
    input: R,
    out: &mut W,
) -> Result<(), String> {
    let session = SessionBuilder::new(dtd).config(config).jobs(jobs).build();
    let mut handler = SessionHandler::new(session);
    let io = |e: std::io::Error| format!("cannot write output: {e}");
    writeln!(
        out,
        "session over {} element types — 'help' lists commands",
        dtd.size()
    )
    .map_err(io)?;
    for line in input.lines() {
        let line = line.map_err(|e| format!("cannot read input: {e}"))?;
        let request = match Request::parse_line(&line) {
            Ok(None) => continue,
            Ok(Some(request)) => request,
            Err(e) => {
                writeln!(out, "error: {e}").map_err(io)?;
                out.flush().map_err(io)?;
                continue;
            }
        };
        let quitting = request == Request::Quit;
        let response = handler.handle(&request);
        write!(out, "{}", response.render_text()).map_err(io)?;
        out.flush().map_err(io)?;
        if quitting {
            break;
        }
    }
    Ok(())
}

/// `qui serve` — the HTTP/JSON daemon over [`SessionRegistry`] session
/// pooling: the `--dtd` schema is preloaded under `--name` (default
/// `default`), further schemas can be loaded over the wire, and every
/// session request dispatches through the same protocol handler as the
/// REPL. Blocks until `POST /shutdown`.
fn cmd_serve(args: &CliArgs) -> Result<String, String> {
    let dtd_path = args.require("--dtd")?;
    let dtd_src = read_file(dtd_path)?;
    let name = args.get("--name").unwrap_or("default");
    let registry = Arc::new(SessionRegistry::new(engine_config(args)?, jobs_arg(args)?));
    let elements = registry
        .load_schema(name, &dtd_src, args.get("--start"))
        .map_err(|e| format!("{dtd_path}: {e}"))?;
    let config = ServeConfig {
        addr: args.get("--addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.get_usize("--workers", 4)?.max(1),
        ..Default::default()
    };
    let workers = config.workers;
    let server = Server::bind(config, registry)?;
    let addr = server.local_addr()?;
    println!(
        "qui serve: listening on {addr} — schema '{name}' ({elements} element types), \
         {workers} workers; POST /shutdown to stop"
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run()?;
    Ok("server stopped\n".to_string())
}

fn cmd_validate(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let doc_path = args.require("--doc")?;
    let doc = if args.has_flag("--stream") {
        load_document_streamed(doc_path, args.has_flag("--attributes"))?
    } else {
        let doc_src = read_file(doc_path)?;
        parse_document(&doc_src, args.has_flag("--attributes"))?
    };
    match dtd.validate(&doc) {
        Ok(typing) => Ok(format!(
            "valid: {} nodes typed against {} element types\n",
            typing.len(),
            dtd.size()
        )),
        Err(e) => Err(format!("invalid: {e}")),
    }
}

/// Parses a document incrementally from disk without materializing the file
/// contents (the `--stream` ingest path).
fn load_document_streamed(path: &str, keep_attributes: bool) -> Result<Tree, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let config = xml_qui::xmlstore::StreamConfig {
        keep_attributes,
        ..Default::default()
    };
    xml_qui::xmlstore::parse_xml_stream(file, &config)
        .map(|outcome| outcome.tree)
        .map_err(|e| e.to_string())
}

fn parse_document(src: &str, keep_attributes: bool) -> Result<Tree, String> {
    let parsed = if keep_attributes {
        parse_xml_keep_attributes(src)
    } else {
        parse_xml(src)
    };
    parsed.map_err(|e| e.to_string())
}

fn cmd_infer_dtd(args: &CliArgs) -> Result<String, String> {
    if args.positional.is_empty() {
        return Err("infer-dtd expects at least one document path".to_string());
    }
    let mut corpus = Vec::new();
    for path in &args.positional {
        let src = read_file(path)?;
        corpus.push(parse_document(&src, args.has_flag("--attributes"))?);
    }
    let inferred = infer_dtd(&corpus).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# inferred from {} documents ({} elements); start = {}",
        inferred.documents, inferred.elements, inferred.root
    );
    for (name, model) in &inferred.rules {
        let _ = writeln!(out, "{name} -> {model}");
    }
    Ok(out)
}

fn cmd_generate(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let nodes = args.get_usize("--nodes", 200)?;
    let seed = args.get_usize("--seed", 42)? as u64;
    let doc = generate_valid(&dtd, &GenValidConfig::with_target(nodes), seed);
    Ok(format!("{}\n", serialize_tree(&doc)))
}

/// The `--scale` option, when present.
fn scale_arg(args: &CliArgs) -> Result<Option<XmarkScale>, String> {
    match args.get("--scale") {
        None => Ok(None),
        Some(s) => XmarkScale::parse(s)
            .map(Some)
            .ok_or_else(|| format!("--scale expects S, M, L or XL, got '{s}'")),
    }
}

/// Resolves the target node count from `--nodes` (wins) or `--scale`,
/// together with a label for reports.
fn resolve_scale(args: &CliArgs, default: Option<XmarkScale>) -> Result<(usize, String), String> {
    let scale = scale_arg(args)?.or(default);
    match (args.get("--nodes"), scale) {
        (Some(_), _) => {
            let nodes = args.get_usize("--nodes", 0)?;
            Ok((nodes, format!("{nodes}n")))
        }
        (None, Some(sc)) => Ok((
            sc.target_nodes(),
            format!("{} ({})", sc.short_name(), sc.label()),
        )),
        (None, None) => Err("expected --scale S|M|L|XL or --nodes <n>".to_string()),
    }
}

fn cmd_xmark(args: &CliArgs) -> Result<String, String> {
    let (nodes, label) = resolve_scale(args, None)?;
    let seed = args.get_usize("--seed", 7)? as u64;
    match args.get("--out") {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let stats = stream_xmark_document(nodes, seed, std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!(
                "streamed {} nodes ({} bytes) to {path} — scale {label}, seed {seed}\n",
                stats.nodes, stats.bytes
            ))
        }
        None => {
            // Stream straight to stdout; the document never exists in
            // memory, and the bytes are exactly the --out file contents.
            let stdout = std::io::stdout();
            let lock = std::io::BufWriter::new(stdout.lock());
            stream_xmark_document(nodes, seed, lock)
                .map_err(|e| format!("cannot write to stdout: {e}"))?;
            Ok(String::new())
        }
    }
}

fn cmd_maintain(args: &CliArgs) -> Result<String, String> {
    let (nodes, label) = resolve_scale(args, Some(XmarkScale::Small))?;
    let seed = args.get_usize("--seed", 7)? as u64;
    let jobs = jobs_arg(args)?;
    let views = all_views();
    let updates = all_updates();
    let report = maintenance_simulation_jobs(&views, &updates, nodes, &label, seed, jobs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 3.c maintenance — scale {}, {} nodes, {} views × {} updates",
        report.scale,
        report.doc_nodes,
        views.len(),
        updates.len()
    );
    let _ = writeln!(
        out,
        "refreshes: all {}, types {}, chains {}",
        report.refreshed_all, report.refreshed_types, report.refreshed_chains
    );
    let _ = writeln!(
        out,
        "work units: all {}, types {}, chains {}",
        report.work_all, report.work_types, report.work_chains
    );
    let _ = writeln!(
        out,
        "savings: types {:.1}%, chains {:.1}%",
        report.types_saving_pct(),
        report.chains_saving_pct()
    );
    let _ = writeln!(
        out,
        "wall: eval phase {:.1} ms; refresh all {:.1} ms, types {:.1} ms, chains {:.1} ms",
        report.eval_wall.as_secs_f64() * 1e3,
        report.refresh_all.as_secs_f64() * 1e3,
        report.refresh_types.as_secs_f64() * 1e3,
        report.refresh_chains.as_secs_f64() * 1e3
    );
    Ok(out)
}

fn cmd_traffic(args: &CliArgs) -> Result<String, String> {
    let seed = args.get_usize("--seed", 42)? as u64;
    let config = TrafficConfig {
        tenants: args.get_usize("--tenants", 400)?,
        ops_per_tenant: args.get_usize("--ops", 25)?,
        schemas: args.get_usize("--schemas", 8)?,
        seed,
        jobs: jobs_arg(args)?.resolve(),
        http: args.has_flag("--http"),
        ..Default::default()
    };
    // Seed first, before any work: every run is replayable from this line.
    let mut out = format!("traffic seed {seed} — replay with `qui traffic --seed {seed}`\n");
    let report = TrafficSim::new(config).run();
    out.push_str(&report.render());
    if let Some(path) = args.get("--out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parser_separates_options_flags_and_positionals() {
        let args = CliArgs::parse(&strings(&[
            "--dtd",
            "schema.dtd",
            "--explain",
            "a.xml",
            "b.xml",
        ]))
        .unwrap();
        assert_eq!(args.get("--dtd"), Some("schema.dtd"));
        assert!(args.has_flag("--explain"));
        assert_eq!(args.positional, vec!["a.xml", "b.xml"]);
    }

    #[test]
    fn arg_parser_rejects_unknown_and_dangling_options() {
        assert!(CliArgs::parse(&strings(&["--bogus", "x"])).is_err());
        assert!(CliArgs::parse(&strings(&["--dtd"])).is_err());
    }

    #[test]
    fn default_start_from_both_syntaxes() {
        assert_eq!(
            default_start("<!ELEMENT bib (book*)> <!ELEMENT book (#PCDATA)>"),
            Some("bib".to_string())
        );
        assert_eq!(
            default_start("doc -> (a|b)* ; a -> c"),
            Some("doc".to_string())
        );
        assert_eq!(default_start(""), None);
    }

    #[test]
    fn unknown_command_is_an_error_and_help_is_not() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&strings(&["help"])).unwrap().contains("commands:"));
        assert!(run(&[]).unwrap().contains("commands:"));
    }

    #[test]
    fn check_command_end_to_end_via_temp_files() {
        let dir = std::env::temp_dir().join(format!("qui-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("fig1.dtd");
        std::fs::write(&dtd_path, "doc -> (a|b)* ; a -> c ; b -> c").unwrap();
        let out = run(&strings(&[
            "check",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--query",
            "//a//c",
            "--update",
            "delete //b//c",
        ]))
        .unwrap();
        assert!(out.starts_with("independent"), "{out}");
        let out = run(&strings(&[
            "check",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--query",
            "//c",
            "--update",
            "delete //b//c",
        ]))
        .unwrap();
        assert!(out.starts_with("dependent"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_flag_selects_engines_and_rejects_junk() {
        let dir = std::env::temp_dir().join(format!("qui-cli-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("fig1.dtd");
        std::fs::write(&dtd_path, "doc -> (a|b)* ; a -> c ; b -> c").unwrap();
        let check = |engine: &str| {
            run(&strings(&[
                "check",
                "--dtd",
                dtd_path.to_str().unwrap(),
                "--query",
                "//a//c",
                "--update",
                "delete //b//c",
                "--engine",
                engine,
            ]))
        };
        // All three engines agree on the paper's introduction example, and
        // the report names the engine that ran.
        let auto = check("auto").unwrap();
        assert!(
            auto.starts_with("independent") && auto.contains("engine = Cdag"),
            "{auto}"
        );
        let explicit = check("explicit").unwrap();
        assert!(
            explicit.starts_with("independent") && explicit.contains("engine = Explicit"),
            "{explicit}"
        );
        let cdag = check("cdag").unwrap();
        assert!(
            cdag.starts_with("independent") && cdag.contains("engine = Cdag"),
            "{cdag}"
        );
        let err = check("frobnicator").unwrap_err();
        assert!(
            err.contains("valid engines are auto, explicit, cdag"),
            "the error must name the valid engines: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_repl_drives_an_incremental_workload() {
        let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
        let script = "\
# a comment and a blank line are ignored

view //a//c
view v9: //c
update delete //b//c
matrix
drop v9
drop nosuch
update u7: delete //c
matrix
stats
bogus
quit
";
        let mut out = Vec::new();
        run_session_repl(
            &dtd,
            AnalyzerConfig::default(),
            Jobs::Fixed(1),
            std::io::Cursor::new(script.as_bytes().to_vec()),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("view v1 registered"), "{text}");
        assert!(text.contains("view v9 registered"), "{text}");
        assert!(
            text.contains("update u1 registered — 1/2 views independent"),
            "{text}"
        );
        assert!(text.contains("dropped view v9"), "{text}");
        assert!(
            text.contains("error: no view or update named 'nosuch'"),
            "{text}"
        );
        assert!(
            text.contains("update u7 registered — 0/1 views independent"),
            "{text}"
        );
        assert!(
            text.contains("matrix: 1 views x 2 updates, 1/2 cells independent"),
            "{text}"
        );
        assert!(text.contains("cells computed"), "{text}");
        assert!(text.contains("error: unknown command 'bogus'"), "{text}");
    }

    #[test]
    fn session_repl_runs_ad_hoc_checks() {
        let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
        let script = "check //a//c ;; delete //b//c\ncheck //c ;; delete //b//c\ncheck //a\nquit\n";
        let mut out = Vec::new();
        run_session_repl(
            &dtd,
            AnalyzerConfig::default(),
            Jobs::Fixed(1),
            std::io::Cursor::new(script.as_bytes().to_vec()),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("independent — k = "), "{text}");
        assert!(text.contains("dependent — k = "), "{text}");
        assert!(
            text.contains("error: check expects <query> ;; <update>"),
            "{text}"
        );
    }

    #[test]
    fn session_repl_accepts_axis_syntax_and_keeps_auto_names_unique() {
        let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
        // `child::a/c` must not have `child` eaten as a name, and the
        // unnamed view after an explicit `v1:` must not collide with it.
        let script = "view v1: //c\nview child::a/c\nupdate delete //b\nquit\n";
        let mut out = Vec::new();
        run_session_repl(
            &dtd,
            AnalyzerConfig::default(),
            Jobs::Fixed(1),
            std::io::Cursor::new(script.as_bytes().to_vec()),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("view v1 registered"), "{text}");
        assert!(
            text.contains("view v2 registered"),
            "the auto-name must skip the taken v1: {text}"
        );
        assert!(!text.contains("error"), "{text}");
    }

    #[test]
    fn matrix_views_file_accepts_axis_syntax_lines() {
        let dir = std::env::temp_dir().join(format!("qui-cli-axis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("fig1.dtd");
        std::fs::write(&dtd_path, "doc -> (a|b)* ; a -> c ; b -> c").unwrap();
        let views_path = dir.join("views.txt");
        std::fs::write(&views_path, "child::a/c\nv2: //c\n").unwrap();
        let out = run(&strings(&[
            "matrix",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--views",
            views_path.to_str().unwrap(),
            "--update",
            "delete //b//c",
        ]))
        .unwrap();
        assert!(out.contains("1/2 views independent"), "{out}");
        assert!(out.contains("v1"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_repl_rejects_duplicate_names() {
        let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
        let script = "view x: //a\nview x: //c\nupdate x: delete //c\nupdate y: delete //b\nquit\n";
        let mut out = Vec::new();
        run_session_repl(
            &dtd,
            AnalyzerConfig::default(),
            Jobs::Fixed(1),
            std::io::Cursor::new(script.as_bytes().to_vec()),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("view x registered"), "{text}");
        // Both the duplicate view name and the view/update name clash are
        // rejected; the fresh name still registers.
        assert_eq!(
            text.matches("error: name 'x' is already registered")
                .count(),
            2,
            "{text}"
        );
        assert!(text.contains("update y registered"), "{text}");
    }

    #[test]
    fn session_repl_survives_malformed_expressions() {
        let dtd = Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
        let script = "view ]]]not a query\nupdate\nview //a\nquit\n";
        let mut out = Vec::new();
        run_session_repl(
            &dtd,
            AnalyzerConfig::default(),
            Jobs::Fixed(1),
            std::io::Cursor::new(script.as_bytes().to_vec()),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        // Both bad lines report errors, and the session keeps going.
        assert!(text.matches("error:").count() >= 2, "{text}");
        assert!(text.contains("view v1 registered"), "{text}");
    }

    #[test]
    fn matrix_command_verdicts_are_identical_across_job_counts() {
        let dir = std::env::temp_dir().join(format!("qui-cli-matrix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("fig1.dtd");
        std::fs::write(&dtd_path, "doc -> (a|b)* ; a -> c ; b -> c").unwrap();
        let views_path = dir.join("views.txt");
        std::fs::write(&views_path, "v1: //a//c\nv2: //c\nv3: //b\n# comment\n").unwrap();
        let run_with_jobs = |jobs: &str| {
            run(&strings(&[
                "matrix",
                "--dtd",
                dtd_path.to_str().unwrap(),
                "--views",
                views_path.to_str().unwrap(),
                "--update",
                "delete //b//c",
                "--jobs",
                jobs,
            ]))
            .unwrap()
        };
        let sequential = run_with_jobs("1");
        assert!(sequential.contains("1/3 views independent"), "{sequential}");
        for jobs in ["2", "8"] {
            assert_eq!(sequential, run_with_jobs(jobs), "jobs = {jobs}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infer_and_validate_round_trip_via_temp_files() {
        let dir = std::env::temp_dir().join(format!("qui-cli-infer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc_path = dir.join("doc.xml");
        std::fs::write(&doc_path, "<bib><book><title>t</title></book></bib>").unwrap();
        let inferred = run(&strings(&["infer-dtd", doc_path.to_str().unwrap()])).unwrap();
        assert!(inferred.contains("bib -> book"), "{inferred}");
        // Write the inferred rules (minus the comment line) as a DTD and
        // validate the same document against it.
        let dtd_path = dir.join("inferred.dtd");
        let rules: String = inferred
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&dtd_path, rules).unwrap();
        let out = run(&strings(&[
            "validate",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--start",
            "bib",
            "--doc",
            doc_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("valid"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xmark_streams_a_document_and_validate_ingests_it_streamed() {
        let dir = std::env::temp_dir().join(format!("qui-cli-xmark-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc_path = dir.join("xmark.xml");
        let out = run(&strings(&[
            "xmark",
            "--nodes",
            "800",
            "--seed",
            "3",
            "--out",
            doc_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("streamed "), "{out}");
        // The streamed file equals the in-memory generation byte for byte.
        let bytes = std::fs::read_to_string(&doc_path).unwrap();
        assert_eq!(bytes, xml_qui::workloads::xmark_document(800, 3).to_xml());
        // And validates against the XMark DTD through the streaming parser.
        let dtd_path = dir.join("xmark.dtd");
        std::fs::write(&dtd_path, xml_qui::workloads::xmark_dtd().to_compact()).unwrap();
        let out = run(&strings(&[
            "validate",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--start",
            "site",
            "--doc",
            doc_path.to_str().unwrap(),
            "--stream",
        ]))
        .unwrap();
        assert!(out.starts_with("valid"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xmark_and_maintain_reject_bad_scales() {
        assert!(run(&strings(&["xmark", "--scale", "XXL"])).is_err());
        assert!(
            run(&strings(&["xmark"])).is_err(),
            "scale or nodes required"
        );
        assert!(run(&strings(&["maintain", "--scale", "huge"])).is_err());
        assert!(run(&strings(&["maintain", "--jobs", "0"])).is_err());
    }

    #[test]
    fn traffic_prints_the_seed_and_writes_the_report() {
        let dir = std::env::temp_dir().join(format!("qui-cli-traffic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("traffic.json");
        let out = run(&strings(&[
            "traffic",
            "--tenants",
            "6",
            "--ops",
            "6",
            "--schemas",
            "2",
            "--seed",
            "5",
            "--jobs",
            "2",
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("traffic seed 5"), "{out}");
        assert!(out.contains("exactness"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"seed\": 5"), "{json}");
        assert!(json.contains("\"stream_digest\""), "{json}");
        assert!(run(&strings(&["traffic", "--jobs", "0"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_produces_a_document_matching_the_dtd() {
        let dir = std::env::temp_dir().join(format!("qui-cli-gen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("bib.dtd");
        std::fs::write(&dtd_path, "bib -> book* ; book -> title ; title -> #PCDATA").unwrap();
        let xml = run(&strings(&[
            "generate",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--nodes",
            "50",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(xml.trim_start().starts_with("<bib"), "{xml}");
        let doc = parse_xml(xml.trim()).unwrap();
        let dtd =
            Dtd::parse_compact("bib -> book* ; book -> title ; title -> #PCDATA", "bib").unwrap();
        assert!(dtd.validate(&doc).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
