//! `qui` — the command-line front end of the workspace.
//!
//! ```text
//! qui check     --dtd <file> --query <expr> --update <expr> [--start <name>] [--explain] [--engine auto|explicit|cdag]
//! qui commute   --dtd <file> --update <expr> --update2 <expr> [--start <name>]
//! qui chains    --dtd <file> (--query <expr> | --update <expr>) [--k <n>] [--start <name>]
//! qui matrix    --dtd <file> --views <file> --update <expr> [--start <name>] [--jobs <n>] [--engine auto|explicit|cdag]
//! qui validate  --dtd <file> --doc <file> [--attributes] [--stream] [--start <name>]
//! qui infer-dtd <doc.xml> [<doc.xml> …]
//! qui generate  --dtd <file> [--nodes <n>] [--seed <n>] [--start <name>]
//! qui xmark     (--scale S|M|L|XL | --nodes <n>) [--seed <n>] [--out <file>]
//! qui maintain  [--scale S|M|L|XL | --nodes <n>] [--seed <n>] [--jobs <n>]
//! ```
//!
//! Expressions may be given inline or as `@path/to/file`. DTD files may use
//! either the compact `name -> model` syntax or standard `<!ELEMENT …>` /
//! `<!ATTLIST …>` declarations; the start symbol defaults to the first
//! declared element.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use xml_qui::baseline::TypeSetAnalyzer;
use xml_qui::core::explain::{explain_verdict, matrix_report_config, ExplainOptions};
use xml_qui::core::{
    AnalyzerConfig, CommutativityAnalyzer, EngineKind, IndependenceAnalyzer, Jobs,
};
use xml_qui::schema::infer::infer_dtd;
use xml_qui::schema::{generate_valid, Dtd, GenValidConfig};
use xml_qui::workloads::{
    all_updates, all_views, maintenance_simulation_jobs, stream_xmark_document, XmarkScale,
};
use xml_qui::xmlstore::{parse_xml, parse_xml_keep_attributes, serialize_tree, Tree};
use xml_qui::xquery::{parse_query, parse_update, Query, Update};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("qui: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one invocation and returns its stdout text.
fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let parsed = CliArgs::parse(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "check" => cmd_check(&parsed),
        "commute" => cmd_commute(&parsed),
        "chains" => cmd_chains(&parsed),
        "matrix" => cmd_matrix(&parsed),
        "validate" => cmd_validate(&parsed),
        "infer-dtd" => cmd_infer_dtd(&parsed),
        "generate" => cmd_generate(&parsed),
        "xmark" => cmd_xmark(&parsed),
        "maintain" => cmd_maintain(&parsed),
        other => Err(format!("unknown command '{other}' (try 'qui help')")),
    }
}

fn usage() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "qui — type-based XML query-update independence");
    let _ = writeln!(s, "commands:");
    let _ = writeln!(
        s,
        "  check     --dtd <file> --query <expr> --update <expr> [--explain] [--engine E]"
    );
    let _ = writeln!(
        s,
        "  commute   --dtd <file> --update <expr> --update2 <expr>"
    );
    let _ = writeln!(
        s,
        "  chains    --dtd <file> (--query <expr> | --update <expr>) [--k <n>]"
    );
    let _ = writeln!(
        s,
        "  matrix    --dtd <file> --views <file> --update <expr> [--jobs <n>] [--engine E]"
    );
    let _ = writeln!(
        s,
        "  validate  --dtd <file> --doc <file> [--attributes] [--stream]"
    );
    let _ = writeln!(s, "  infer-dtd <doc.xml> [<doc.xml> …]");
    let _ = writeln!(s, "  generate  --dtd <file> [--nodes <n>] [--seed <n>]");
    let _ = writeln!(
        s,
        "  xmark     (--scale S|M|L|XL | --nodes <n>) [--seed <n>] [--out <file>]"
    );
    let _ = writeln!(
        s,
        "  maintain  [--scale S|M|L|XL | --nodes <n>] [--seed <n>] [--jobs <n>]"
    );
    let _ = writeln!(s, "options: --start <name> overrides the DTD start symbol;");
    let _ = writeln!(s, "         expressions may be written inline or as @file;");
    let _ = writeln!(
        s,
        "         --stream parses documents incrementally from disk;"
    );
    let _ = writeln!(
        s,
        "         --jobs <n> (or QUI_JOBS) shards work over n threads;"
    );
    let _ = writeln!(
        s,
        "         --engine auto|explicit|cdag picks the inference engine"
    );
    let _ = writeln!(
        s,
        "         (auto = CDAG-first with explicit confirmation, the default)."
    );
    s
}

// ---------------------------------------------------------------------------
// Argument handling
// ---------------------------------------------------------------------------

/// Parsed `--flag value` options plus positional arguments.
#[derive(Debug, Default)]
struct CliArgs {
    options: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

impl CliArgs {
    fn parse(args: &[String]) -> Result<CliArgs, String> {
        const VALUE_OPTIONS: [&str; 14] = [
            "--dtd",
            "--start",
            "--query",
            "--update",
            "--update2",
            "--views",
            "--doc",
            "--nodes",
            "--seed",
            "--k",
            "--jobs",
            "--scale",
            "--out",
            "--engine",
        ];
        const BARE_FLAGS: [&str; 3] = ["--explain", "--attributes", "--stream"];
        let mut out = CliArgs::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if VALUE_OPTIONS.contains(&a.as_str()) {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{a} expects a value"))?;
                out.options.insert(a.clone(), value.clone());
                i += 2;
            } else if BARE_FLAGS.contains(&a.as_str()) {
                out.flags.push(a.clone());
                i += 1;
            } else if a.starts_with("--") {
                return Err(format!("unknown option '{a}'"));
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing {key}"))
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{key} expects an integer, got '{v}'")),
        }
    }
}

/// Reads an expression argument: inline text, or the contents of a file when
/// the argument starts with `@`.
fn read_expr(arg: &str) -> Result<String, String> {
    if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    } else {
        Ok(arg.to_string())
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Loads a DTD from a file in either supported syntax. The start symbol is
/// `--start` when given, otherwise the first declared element.
fn load_dtd(args: &CliArgs) -> Result<Dtd, String> {
    let path = args.require("--dtd")?;
    let src = read_file(path)?;
    let start = match args.get("--start") {
        Some(s) => s.to_string(),
        None => default_start(&src).ok_or_else(|| format!("{path}: no element declarations"))?,
    };
    let dtd = if src.contains("<!ELEMENT") {
        xml_qui::schema::parse_dtd_with_attributes(&src, &start)
    } else {
        Dtd::parse_compact(&src, &start)
    };
    dtd.map_err(|e| format!("{path}: {e}"))
}

/// The first declared element name of a DTD source, used as the default
/// start symbol.
fn default_start(src: &str) -> Option<String> {
    if let Some(idx) = src.find("<!ELEMENT") {
        let rest = src[idx + "<!ELEMENT".len()..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
            .collect();
        return (!name.is_empty()).then_some(name);
    }
    for line in src.split([';', '\n']) {
        if let Some((lhs, _)) = line.split_once("->").or_else(|| line.split_once('←')) {
            let lhs = lhs.trim();
            if !lhs.is_empty() {
                return Some(lhs.to_string());
            }
        }
    }
    None
}

fn load_query(args: &CliArgs) -> Result<Query, String> {
    let src = read_expr(args.require("--query")?)?;
    parse_query(&src).map_err(|e| format!("query: {e}"))
}

fn load_update(args: &CliArgs, key: &str) -> Result<Update, String> {
    let src = read_expr(args.require(key)?)?;
    parse_update(&src).map_err(|e| format!("update: {e}"))
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

/// The `--engine` option resolved to an analyzer configuration.
fn engine_config(args: &CliArgs) -> Result<AnalyzerConfig, String> {
    let engine = match args.get("--engine") {
        None => EngineKind::Auto,
        Some(s) => EngineKind::parse(s)
            .ok_or_else(|| format!("--engine expects auto, explicit or cdag, got '{s}'"))?,
    };
    Ok(AnalyzerConfig {
        engine,
        ..Default::default()
    })
}

fn cmd_check(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let q = load_query(args)?;
    let u = load_update(args, "--update")?;
    let analyzer = IndependenceAnalyzer::with_config(&dtd, engine_config(args)?);
    let verdict = analyzer.check(&q, &u);
    let mut out = String::new();
    if args.has_flag("--explain") {
        out.push_str(&explain_verdict(
            &dtd,
            &q,
            &u,
            &verdict,
            &ExplainOptions::default(),
        ));
    } else {
        let _ = writeln!(
            out,
            "{}",
            if verdict.is_independent() {
                "independent"
            } else {
                "dependent"
            }
        );
        let _ = writeln!(
            out,
            "k = {} (k_q = {}, k_u = {}), engine = {:?}",
            verdict.k, verdict.k_query, verdict.k_update, verdict.engine_used
        );
    }
    let baseline = TypeSetAnalyzer::new(&dtd);
    let _ = writeln!(
        out,
        "type-set baseline [Benedikt & Cheney]: {}",
        if baseline.independent(&q, &u) {
            "independent"
        } else {
            "dependent"
        }
    );
    Ok(out)
}

fn cmd_commute(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let u1 = load_update(args, "--update")?;
    let u2 = load_update(args, "--update2")?;
    let analyzer = CommutativityAnalyzer::new(&dtd);
    let verdict = analyzer.check(&u1, &u2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        if verdict.commutes() {
            "commute"
        } else {
            "may not commute"
        }
    );
    if let Some(conflict) = verdict.conflict {
        let _ = writeln!(out, "conflict: {conflict:?}");
    }
    let _ = writeln!(out, "k = {}", verdict.k);
    Ok(out)
}

fn cmd_chains(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let (q, u) = match (args.get("--query"), args.get("--update")) {
        (Some(_), None) => (load_query(args)?, Update::Empty),
        (None, Some(_)) => (Query::Empty, load_update(args, "--update")?),
        _ => return Err("chains expects exactly one of --query or --update".to_string()),
    };
    let analyzer = IndependenceAnalyzer::new(&dtd);
    let k = args.get_usize("--k", analyzer.k_for(&q, &u).max(1))?;
    let Some((qc, uc)) = analyzer.infer_explicit(&q, &u, k) else {
        return Err("chain materialization exceeded the explicit engine budget".to_string());
    };
    let mut out = String::new();
    let _ = writeln!(out, "k = {k}");
    if !matches!(q, Query::Empty) {
        let _ = writeln!(out, "{}", qc.display(&dtd));
    }
    if !matches!(u, Update::Empty) {
        let _ = writeln!(out, "update chains: {}", uc.display(&dtd));
    }
    Ok(out)
}

fn cmd_matrix(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let views_path = args.require("--views")?;
    let views_src = read_file(views_path)?;
    let mut views = Vec::new();
    for (i, line) in views_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, src) = match line.split_once(':') {
            Some((n, s)) if !n.contains('/') => (n.trim().to_string(), s.trim()),
            _ => (format!("v{}", i + 1), line),
        };
        let q = parse_query(src).map_err(|e| format!("{views_path}:{}: {e}", i + 1))?;
        views.push((name, q));
    }
    let u = load_update(args, "--update")?;
    let jobs = match args.get("--jobs") {
        Some(v) => Jobs::fixed(
            v.parse()
                .ok()
                .filter(|n: &usize| *n > 0)
                .ok_or_else(|| format!("--jobs expects a positive integer, got '{v}'"))?,
        ),
        // Without --jobs, defer to QUI_JOBS or the machine's parallelism.
        None => Jobs::Auto,
    };
    let report = matrix_report_config(
        &dtd,
        &views,
        args.get("--update").unwrap_or("update"),
        &u,
        &engine_config(args)?,
        jobs,
    );
    Ok(report.render())
}

fn cmd_validate(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let doc_path = args.require("--doc")?;
    let doc = if args.has_flag("--stream") {
        load_document_streamed(doc_path, args.has_flag("--attributes"))?
    } else {
        let doc_src = read_file(doc_path)?;
        parse_document(&doc_src, args.has_flag("--attributes"))?
    };
    match dtd.validate(&doc) {
        Ok(typing) => Ok(format!(
            "valid: {} nodes typed against {} element types\n",
            typing.len(),
            dtd.size()
        )),
        Err(e) => Err(format!("invalid: {e}")),
    }
}

/// Parses a document incrementally from disk without materializing the file
/// contents (the `--stream` ingest path).
fn load_document_streamed(path: &str, keep_attributes: bool) -> Result<Tree, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let config = xml_qui::xmlstore::StreamConfig {
        keep_attributes,
        ..Default::default()
    };
    xml_qui::xmlstore::parse_xml_stream(file, &config)
        .map(|outcome| outcome.tree)
        .map_err(|e| e.to_string())
}

fn parse_document(src: &str, keep_attributes: bool) -> Result<Tree, String> {
    let parsed = if keep_attributes {
        parse_xml_keep_attributes(src)
    } else {
        parse_xml(src)
    };
    parsed.map_err(|e| e.to_string())
}

fn cmd_infer_dtd(args: &CliArgs) -> Result<String, String> {
    if args.positional.is_empty() {
        return Err("infer-dtd expects at least one document path".to_string());
    }
    let mut corpus = Vec::new();
    for path in &args.positional {
        let src = read_file(path)?;
        corpus.push(parse_document(&src, args.has_flag("--attributes"))?);
    }
    let inferred = infer_dtd(&corpus).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# inferred from {} documents ({} elements); start = {}",
        inferred.documents, inferred.elements, inferred.root
    );
    for (name, model) in &inferred.rules {
        let _ = writeln!(out, "{name} -> {model}");
    }
    Ok(out)
}

fn cmd_generate(args: &CliArgs) -> Result<String, String> {
    let dtd = load_dtd(args)?;
    let nodes = args.get_usize("--nodes", 200)?;
    let seed = args.get_usize("--seed", 42)? as u64;
    let doc = generate_valid(&dtd, &GenValidConfig::with_target(nodes), seed);
    Ok(format!("{}\n", serialize_tree(&doc)))
}

/// The `--scale` option, when present.
fn scale_arg(args: &CliArgs) -> Result<Option<XmarkScale>, String> {
    match args.get("--scale") {
        None => Ok(None),
        Some(s) => XmarkScale::parse(s)
            .map(Some)
            .ok_or_else(|| format!("--scale expects S, M, L or XL, got '{s}'")),
    }
}

/// Resolves the target node count from `--nodes` (wins) or `--scale`,
/// together with a label for reports.
fn resolve_scale(args: &CliArgs, default: Option<XmarkScale>) -> Result<(usize, String), String> {
    let scale = scale_arg(args)?.or(default);
    match (args.get("--nodes"), scale) {
        (Some(_), _) => {
            let nodes = args.get_usize("--nodes", 0)?;
            Ok((nodes, format!("{nodes}n")))
        }
        (None, Some(sc)) => Ok((
            sc.target_nodes(),
            format!("{} ({})", sc.short_name(), sc.label()),
        )),
        (None, None) => Err("expected --scale S|M|L|XL or --nodes <n>".to_string()),
    }
}

fn cmd_xmark(args: &CliArgs) -> Result<String, String> {
    let (nodes, label) = resolve_scale(args, None)?;
    let seed = args.get_usize("--seed", 7)? as u64;
    match args.get("--out") {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let stats = stream_xmark_document(nodes, seed, std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!(
                "streamed {} nodes ({} bytes) to {path} — scale {label}, seed {seed}\n",
                stats.nodes, stats.bytes
            ))
        }
        None => {
            // Stream straight to stdout; the document never exists in
            // memory, and the bytes are exactly the --out file contents.
            let stdout = std::io::stdout();
            let lock = std::io::BufWriter::new(stdout.lock());
            stream_xmark_document(nodes, seed, lock)
                .map_err(|e| format!("cannot write to stdout: {e}"))?;
            Ok(String::new())
        }
    }
}

fn cmd_maintain(args: &CliArgs) -> Result<String, String> {
    let (nodes, label) = resolve_scale(args, Some(XmarkScale::Small))?;
    let seed = args.get_usize("--seed", 7)? as u64;
    let jobs = match args.get("--jobs") {
        Some(v) => Jobs::fixed(
            v.parse()
                .ok()
                .filter(|n: &usize| *n > 0)
                .ok_or_else(|| format!("--jobs expects a positive integer, got '{v}'"))?,
        ),
        None => Jobs::Auto,
    };
    let views = all_views();
    let updates = all_updates();
    let report = maintenance_simulation_jobs(&views, &updates, nodes, &label, seed, jobs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 3.c maintenance — scale {}, {} nodes, {} views × {} updates",
        report.scale,
        report.doc_nodes,
        views.len(),
        updates.len()
    );
    let _ = writeln!(
        out,
        "refreshes: all {}, types {}, chains {}",
        report.refreshed_all, report.refreshed_types, report.refreshed_chains
    );
    let _ = writeln!(
        out,
        "work units: all {}, types {}, chains {}",
        report.work_all, report.work_types, report.work_chains
    );
    let _ = writeln!(
        out,
        "savings: types {:.1}%, chains {:.1}%",
        report.types_saving_pct(),
        report.chains_saving_pct()
    );
    let _ = writeln!(
        out,
        "wall: eval phase {:.1} ms; refresh all {:.1} ms, types {:.1} ms, chains {:.1} ms",
        report.eval_wall.as_secs_f64() * 1e3,
        report.refresh_all.as_secs_f64() * 1e3,
        report.refresh_types.as_secs_f64() * 1e3,
        report.refresh_chains.as_secs_f64() * 1e3
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parser_separates_options_flags_and_positionals() {
        let args = CliArgs::parse(&strings(&[
            "--dtd",
            "schema.dtd",
            "--explain",
            "a.xml",
            "b.xml",
        ]))
        .unwrap();
        assert_eq!(args.get("--dtd"), Some("schema.dtd"));
        assert!(args.has_flag("--explain"));
        assert_eq!(args.positional, vec!["a.xml", "b.xml"]);
    }

    #[test]
    fn arg_parser_rejects_unknown_and_dangling_options() {
        assert!(CliArgs::parse(&strings(&["--bogus", "x"])).is_err());
        assert!(CliArgs::parse(&strings(&["--dtd"])).is_err());
    }

    #[test]
    fn default_start_from_both_syntaxes() {
        assert_eq!(
            default_start("<!ELEMENT bib (book*)> <!ELEMENT book (#PCDATA)>"),
            Some("bib".to_string())
        );
        assert_eq!(
            default_start("doc -> (a|b)* ; a -> c"),
            Some("doc".to_string())
        );
        assert_eq!(default_start(""), None);
    }

    #[test]
    fn unknown_command_is_an_error_and_help_is_not() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&strings(&["help"])).unwrap().contains("commands:"));
        assert!(run(&[]).unwrap().contains("commands:"));
    }

    #[test]
    fn check_command_end_to_end_via_temp_files() {
        let dir = std::env::temp_dir().join(format!("qui-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("fig1.dtd");
        std::fs::write(&dtd_path, "doc -> (a|b)* ; a -> c ; b -> c").unwrap();
        let out = run(&strings(&[
            "check",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--query",
            "//a//c",
            "--update",
            "delete //b//c",
        ]))
        .unwrap();
        assert!(out.starts_with("independent"), "{out}");
        let out = run(&strings(&[
            "check",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--query",
            "//c",
            "--update",
            "delete //b//c",
        ]))
        .unwrap();
        assert!(out.starts_with("dependent"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_flag_selects_engines_and_rejects_junk() {
        let dir = std::env::temp_dir().join(format!("qui-cli-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("fig1.dtd");
        std::fs::write(&dtd_path, "doc -> (a|b)* ; a -> c ; b -> c").unwrap();
        let check = |engine: &str| {
            run(&strings(&[
                "check",
                "--dtd",
                dtd_path.to_str().unwrap(),
                "--query",
                "//a//c",
                "--update",
                "delete //b//c",
                "--engine",
                engine,
            ]))
        };
        // All three engines agree on the paper's introduction example, and
        // the report names the engine that ran.
        let auto = check("auto").unwrap();
        assert!(
            auto.starts_with("independent") && auto.contains("engine = Cdag"),
            "{auto}"
        );
        let explicit = check("explicit").unwrap();
        assert!(
            explicit.starts_with("independent") && explicit.contains("engine = Explicit"),
            "{explicit}"
        );
        let cdag = check("cdag").unwrap();
        assert!(
            cdag.starts_with("independent") && cdag.contains("engine = Cdag"),
            "{cdag}"
        );
        assert!(check("frobnicator").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_command_verdicts_are_identical_across_job_counts() {
        let dir = std::env::temp_dir().join(format!("qui-cli-matrix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("fig1.dtd");
        std::fs::write(&dtd_path, "doc -> (a|b)* ; a -> c ; b -> c").unwrap();
        let views_path = dir.join("views.txt");
        std::fs::write(&views_path, "v1: //a//c\nv2: //c\nv3: //b\n# comment\n").unwrap();
        let run_with_jobs = |jobs: &str| {
            run(&strings(&[
                "matrix",
                "--dtd",
                dtd_path.to_str().unwrap(),
                "--views",
                views_path.to_str().unwrap(),
                "--update",
                "delete //b//c",
                "--jobs",
                jobs,
            ]))
            .unwrap()
        };
        let sequential = run_with_jobs("1");
        assert!(sequential.contains("1/3 views independent"), "{sequential}");
        for jobs in ["2", "8"] {
            assert_eq!(sequential, run_with_jobs(jobs), "jobs = {jobs}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infer_and_validate_round_trip_via_temp_files() {
        let dir = std::env::temp_dir().join(format!("qui-cli-infer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc_path = dir.join("doc.xml");
        std::fs::write(&doc_path, "<bib><book><title>t</title></book></bib>").unwrap();
        let inferred = run(&strings(&["infer-dtd", doc_path.to_str().unwrap()])).unwrap();
        assert!(inferred.contains("bib -> book"), "{inferred}");
        // Write the inferred rules (minus the comment line) as a DTD and
        // validate the same document against it.
        let dtd_path = dir.join("inferred.dtd");
        let rules: String = inferred
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&dtd_path, rules).unwrap();
        let out = run(&strings(&[
            "validate",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--start",
            "bib",
            "--doc",
            doc_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("valid"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xmark_streams_a_document_and_validate_ingests_it_streamed() {
        let dir = std::env::temp_dir().join(format!("qui-cli-xmark-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc_path = dir.join("xmark.xml");
        let out = run(&strings(&[
            "xmark",
            "--nodes",
            "800",
            "--seed",
            "3",
            "--out",
            doc_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("streamed "), "{out}");
        // The streamed file equals the in-memory generation byte for byte.
        let bytes = std::fs::read_to_string(&doc_path).unwrap();
        assert_eq!(bytes, xml_qui::workloads::xmark_document(800, 3).to_xml());
        // And validates against the XMark DTD through the streaming parser.
        let dtd_path = dir.join("xmark.dtd");
        std::fs::write(&dtd_path, xml_qui::workloads::xmark_dtd().to_compact()).unwrap();
        let out = run(&strings(&[
            "validate",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--start",
            "site",
            "--doc",
            doc_path.to_str().unwrap(),
            "--stream",
        ]))
        .unwrap();
        assert!(out.starts_with("valid"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xmark_and_maintain_reject_bad_scales() {
        assert!(run(&strings(&["xmark", "--scale", "XXL"])).is_err());
        assert!(
            run(&strings(&["xmark"])).is_err(),
            "scale or nodes required"
        );
        assert!(run(&strings(&["maintain", "--scale", "huge"])).is_err());
        assert!(run(&strings(&["maintain", "--jobs", "0"])).is_err());
    }

    #[test]
    fn generate_produces_a_document_matching_the_dtd() {
        let dir = std::env::temp_dir().join(format!("qui-cli-gen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dtd_path = dir.join("bib.dtd");
        std::fs::write(&dtd_path, "bib -> book* ; book -> title ; title -> #PCDATA").unwrap();
        let xml = run(&strings(&[
            "generate",
            "--dtd",
            dtd_path.to_str().unwrap(),
            "--nodes",
            "50",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(xml.trim_start().starts_with("<bib"), "{xml}");
        let doc = parse_xml(xml.trim()).unwrap();
        let dtd =
            Dtd::parse_compact("bib -> book* ; book -> title ; title -> #PCDATA", "bib").unwrap();
        assert!(dtd.validate(&doc).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
