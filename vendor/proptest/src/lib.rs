//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` parameter lists;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`];
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive` and `boxed`;
//! * [`strategy::Just`], integer ranges as strategies, tuples of strategies and
//!   `prop::collection::vec`;
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is **no shrinking** and no persisted failure
//! seeds: generation is deterministic, derived from the test name and the
//! case index, so failures are reproducible run-to-run by construction. See
//! `vendor/README.md` for the rationale.

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used for value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from the test name and case index, so each test gets an
    /// independent, reproducible stream.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h.wrapping_add(case.wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Config and test-case errors
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property; produced by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// The shim has no shrinking, so a strategy is just a generation
    /// function; combinators compose those functions.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, fun }
        }

        /// Bounded recursive strategy. `depth` controls how many times
        /// `recurse` is applied; the remaining two parameters (desired size
        /// and expected branch factor in the real crate) are accepted for
        /// signature compatibility but unused.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // At every level allow either another leaf or one more layer
                // of recursion, biased 1:2 toward recursion so composite
                // values dominate while depth stays bounded.
                let deeper = recurse(strat).boxed();
                strat = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation trait backing [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.dyn_new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        fun: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.fun)(self.source.new_value(rng))
        }
    }

    /// Weighted choice between strategies of a common value type; the
    /// expansion of `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            Union::weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        pub fn weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total_weight);
            for (weight, option) in &self.options {
                if pick < *weight as u64 {
                    return option.new_value(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights summed correctly above")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Conversion of the size argument of [`vec()`]; mirrors the real crate's
    /// `Into<SizeRange>` bound for the forms this workspace uses.
    pub trait IntoSizeRange {
        /// Inclusive bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// Strategy for vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len - self.min_len) as u64 + 1;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Uniform (the shim ignores proptest's optional weights) choice between
/// strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic generations of the
/// arguments through the body; `prop_assert*` failures and panics report the
/// case index for reproduction.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        @impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    // The trailing Ok(()) is unreachable when a body ends
                    // with an explicit `return Ok(())`, which proptest allows.
                    #[allow(unreachable_code)]
                    let outcome = (|| -> $crate::TestCaseResult {
                        $( let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng); )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            err
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $( $(#[$meta])* fn $name( $($arg in $strategy),+ ) $body )*
        );
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

    /// Mirrors `proptest::prelude::prop`, the module-style entry point
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u16..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn early_ok_return_works(x in 0u64..10) {
            if x > 100 {
                prop_assert!(false, "unreachable");
            }
            return Ok(());
        }
    }

    proptest! {
        #[test]
        fn default_config_variant_runs(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn oneof_map_recursive_and_vec_compose() {
        #[derive(Clone, Debug, PartialEq)]
        enum Expr {
            Leaf(u16),
            Node(Vec<Expr>),
        }

        let leaf = prop_oneof![Just(Expr::Leaf(0)), (1u16..=3).prop_map(Expr::Leaf)];
        let strat = leaf.prop_recursive(3, 24, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Expr::Node)
        });

        let mut rng = TestRng::new(99);
        let mut saw_node = false;
        let mut saw_leaf = false;
        for _ in 0..200 {
            match strat.new_value(&mut rng) {
                Expr::Node(children) => {
                    saw_node = true;
                    assert!(!children.is_empty() && children.len() < 3);
                }
                Expr::Leaf(v) => {
                    saw_leaf = true;
                    assert!(v <= 3);
                }
            }
        }
        assert!(saw_node && saw_leaf);
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, 0u64..1000);
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }
}
