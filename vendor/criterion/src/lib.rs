//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! Implements the surface the `qui-bench` benches use: `Criterion`,
//! `benchmark_group`, `BenchmarkGroup::{sample_size, warm_up_time,
//! measurement_time, bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! mean-of-wall-clock estimate printed to stdout — no statistics, plots or
//! `target/criterion` output. See `vendor/README.md` for the rationale.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Wall-clock measurement marker (the only measurement the shim has).
    pub struct WallTime;
}

#[derive(Clone, Debug)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            config: GroupConfig::default(),
            _criterion: PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'a, M> {
    name: String,
    config: GroupConfig,
    _criterion: PhantomData<&'a mut M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run until the warm-up budget is spent, doubling the
        // iteration count so the timed region dominates timer overhead.
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.config.warm_up_time {
            f(&mut bencher);
            if bencher.elapsed < Duration::from_millis(1) {
                bencher.iters = (bencher.iters * 2).min(1 << 20);
            }
        }

        let mut samples = Vec::with_capacity(self.config.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.config.sample_size {
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            if measure_start.elapsed() > self.config.measurement_time {
                break;
            }
        }

        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{}: {:>12} per iter ({} samples x {} iters)",
            self.name,
            id,
            format_seconds(mean),
            samples.len(),
            bencher.iters
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }
}
