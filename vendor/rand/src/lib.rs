//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: a seedable
//! [`rngs::StdRng`] plus the [`RngExt`] extension trait providing
//! `random_range` and `random_bool`. The generator is SplitMix64 — a small,
//! fast, well-distributed PRNG that is more than adequate for test-document
//! generation. See `vendor/README.md` for the rationale.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64: passes BigCrush, one u64 of state, trivially seedable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // XOR with a constant so seed 0 does not start at state 0.
            StdRng {
                state: seed ^ 0x5DEE_CE66_D9E3_779B,
            }
        }
    }
}

/// A range from which a uniform sample of type `T` can be drawn. Generic
/// over `T` (rather than via an associated type) so that an annotated
/// binding like `let v: u32 = rng.random_range(0..1000)` drives inference
/// of the range's literal type, as with the real crate.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The convenience methods the workspace calls on its RNGs.
pub trait RngExt: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        // Match the real crate's contract: out-of-range probabilities panic.
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool requires 0.0 <= p <= 1.0, got {p}"
        );
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
