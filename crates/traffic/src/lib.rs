//! # qui-traffic — multi-tenant traffic over the schema corpus
//!
//! Every analysis result in this repository was originally demonstrated
//! against one schema (XMark) and one curated workload. This crate supplies
//! the missing scenario diversity: a [`TrafficSim`] drives many simulated
//! tenants — each with its own view set and a [`TieredSession`] front —
//! over a shared-schema [`SessionRegistry`] loaded with the
//! [`Corpus`] of heterogeneous schemas, issuing mixed
//! check / edit / batch / maintain operations from seeded Zipf-ish
//! distributions.
//!
//! Two transports share one op-stream model:
//!
//! * **in-process** — ops hit the [`SharedSession`] directly; checks go
//!   through the tiered front (CDAG verdict now, explicit-witness upgrade
//!   at the next maintain), so the run measures `upgrade_exactness`;
//! * **HTTP** — the same streams are replayed against a live `qui serve`
//!   daemon over keep-alive connections, measuring the full socket + JSON
//!   protocol round trip.
//!
//! **Determinism:** all randomness is split off the run seed before any
//! session work starts ([`ops`]), so op streams and every op-derived
//! counter — op kind totals, fast independent/dependent splits, upgrade
//! and confirmation counts, the [`stream digest`](ops::stream_digest) —
//! are bit-identical across `jobs ∈ {1, 2, 8}`. Timing-derived fields
//! (throughput, percentiles, fairness) are the only ones that vary.

pub mod http;
pub mod ops;

use crate::ops::{schema_pools, stream_digest, tenant_plan, Op, SchemaPools, TenantPlan};
use qui_core::parallel::Jobs;
use qui_core::{AnalyzerConfig, Request, Response, SessionRegistry, SharedSession, TieredSession};
use qui_schema::{Corpus, CorpusSchema, Dtd};
use qui_xquery::{parse_query, parse_update, Query, Update};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Simulation shape. Defaults are the perf-harness scale: hundreds of
/// tenants is enough to exercise every schema and op kind while staying in
/// CI budget; `qui traffic` exposes all of it on the command line.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Simulated tenants.
    pub tenants: usize,
    /// Ops issued per tenant.
    pub ops_per_tenant: usize,
    /// Corpus size: the five fixtures plus `schemas - 5` generated schemas
    /// (truncated to the fixtures when smaller).
    pub schemas: usize,
    /// Run seed — printed on start, embedded in the report, replays the run.
    pub seed: u64,
    /// Client worker threads (op streams are identical whatever the count).
    pub jobs: usize,
    /// Replay over HTTP against a live daemon instead of in-process.
    pub http: bool,
    /// Query-pool size per schema.
    pub queries_per_schema: usize,
    /// Update-pool size per schema.
    pub updates_per_schema: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            tenants: 400,
            ops_per_tenant: 25,
            schemas: 8,
            seed: 42,
            jobs: 1,
            http: false,
            queries_per_schema: 12,
            updates_per_schema: 10,
        }
    }
}

/// Everything one run measured. Op-derived counters are deterministic per
/// seed; timing fields (`wall_ms` onward) are machine-dependent.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// The seed that replays this run.
    pub seed: u64,
    /// `"in-process"` or `"http"`.
    pub mode: String,
    /// Tenants driven.
    pub tenants: usize,
    /// Corpus schemas registered.
    pub schemas: usize,
    /// Client worker threads.
    pub jobs: usize,
    /// Ops executed (sum over tenants).
    pub ops_total: usize,
    /// FNV-1a fingerprint of every tenant's canonical op stream.
    pub stream_digest: u64,
    /// Tiered check ops.
    pub checks: usize,
    /// View adds + drops.
    pub edits: usize,
    /// Batch round trips (each carrying several checks).
    pub batches: usize,
    /// Check ops carried inside batches.
    pub batch_ops: usize,
    /// Maintain (upgrade-drain) ops.
    pub maintains: usize,
    /// Protocol errors observed (must be 0).
    pub errors: usize,
    /// Fast-tier verdicts that were independent.
    pub fast_independent: usize,
    /// Fast-tier verdicts that were dependent (upgrade may retract these).
    pub fast_dependent: usize,
    /// Explicit-witness upgrades completed (maintain ops + final drain).
    pub upgrades: usize,
    /// Upgrades that confirmed their fast answer.
    pub confirmed: usize,
    /// `confirmed / upgrades` (1.0 when nothing upgraded — HTTP mode).
    pub upgrade_exactness: f64,
    /// Session-cache hit rate over all schema sessions
    /// (in-process mode; 0 over HTTP where stats stay in the daemon).
    pub cache_hit_rate: f64,
    /// Wall time of the op-execution window.
    pub wall_ms: f64,
    /// `ops_total / wall`.
    pub ops_per_sec: f64,
    /// Median per-op latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile per-op latency.
    pub p99_us: f64,
    /// 99.9th-percentile per-op latency.
    pub p999_us: f64,
    /// Jain fairness index over per-tenant mean latencies (1.0 = perfectly
    /// even service).
    pub fairness: f64,
}

impl TrafficReport {
    /// The op-derived counters as one comparable string — equal across
    /// `jobs ∈ {1, 2, 8}` for the same seed, which the perf harness and the
    /// determinism tests assert.
    pub fn determinism_key(&self) -> String {
        format!(
            "seed={} digest={:016x} ops={} checks={} edits={} batches={} batch_ops={} \
             maintains={} errors={} fast_ind={} fast_dep={} upgrades={} confirmed={}",
            self.seed,
            self.stream_digest,
            self.ops_total,
            self.checks,
            self.edits,
            self.batches,
            self.batch_ops,
            self.maintains,
            self.errors,
            self.fast_independent,
            self.fast_dependent,
            self.upgrades,
            self.confirmed
        )
    }

    /// Pretty-printed JSON (hand-rolled: the workspace is dependency-free
    /// by construction). The digest is a string — JSON numbers cannot carry
    /// 64 bits exactly.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema_version\": 1,");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(s, "  \"tenants\": {},", self.tenants);
        let _ = writeln!(s, "  \"schemas\": {},", self.schemas);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"ops_total\": {},", self.ops_total);
        let _ = writeln!(s, "  \"stream_digest\": \"{:016x}\",", self.stream_digest);
        let _ = writeln!(s, "  \"checks\": {},", self.checks);
        let _ = writeln!(s, "  \"edits\": {},", self.edits);
        let _ = writeln!(s, "  \"batches\": {},", self.batches);
        let _ = writeln!(s, "  \"batch_ops\": {},", self.batch_ops);
        let _ = writeln!(s, "  \"maintains\": {},", self.maintains);
        let _ = writeln!(s, "  \"errors\": {},", self.errors);
        let _ = writeln!(s, "  \"fast_independent\": {},", self.fast_independent);
        let _ = writeln!(s, "  \"fast_dependent\": {},", self.fast_dependent);
        let _ = writeln!(s, "  \"upgrades\": {},", self.upgrades);
        let _ = writeln!(s, "  \"confirmed\": {},", self.confirmed);
        let _ = writeln!(s, "  \"upgrade_exactness\": {:.4},", self.upgrade_exactness);
        let _ = writeln!(s, "  \"cache_hit_rate\": {:.4},", self.cache_hit_rate);
        let _ = writeln!(s, "  \"wall_ms\": {:.3},", self.wall_ms);
        let _ = writeln!(s, "  \"ops_per_sec\": {:.1},", self.ops_per_sec);
        let _ = writeln!(s, "  \"p50_us\": {:.1},", self.p50_us);
        let _ = writeln!(s, "  \"p99_us\": {:.1},", self.p99_us);
        let _ = writeln!(s, "  \"p999_us\": {:.1},", self.p999_us);
        let _ = writeln!(s, "  \"fairness\": {:.4}", self.fairness);
        let _ = writeln!(s, "}}");
        s
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "traffic — seed {} ({}), {} tenants x {} ops over {} schemas, {} jobs",
            self.seed,
            self.mode,
            self.tenants,
            self.ops_total.checked_div(self.tenants).unwrap_or(0),
            self.schemas,
            self.jobs
        );
        let _ = writeln!(s, "stream digest : {:016x}", self.stream_digest);
        let _ = writeln!(
            s,
            "ops           : {} total = {} checks + {} edits + {} batches ({} ops) + {} maintains, {} errors",
            self.ops_total, self.checks, self.edits, self.batches, self.batch_ops, self.maintains,
            self.errors
        );
        let _ = writeln!(
            s,
            "tiered        : {} independent / {} dependent fast answers; {}/{} upgrades confirmed — exactness {:.3}",
            self.fast_independent,
            self.fast_dependent,
            self.confirmed,
            self.upgrades,
            self.upgrade_exactness
        );
        let _ = writeln!(
            s,
            "throughput    : {:.0} ops/s over {:.1} ms (cache hit rate {:.2})",
            self.ops_per_sec, self.wall_ms, self.cache_hit_rate
        );
        let _ = writeln!(
            s,
            "latency       : p50 {:.1} us, p99 {:.1} us, p999 {:.1} us; fairness {:.3}",
            self.p50_us, self.p99_us, self.p999_us, self.fairness
        );
        s
    }
}

/// Per-tenant execution outcome fed back to the aggregator.
#[derive(Clone, Debug, Default)]
struct TenantOutcome {
    latencies_us: Vec<f64>,
    checks: usize,
    edits: usize,
    batches: usize,
    batch_ops: usize,
    maintains: usize,
    errors: usize,
    fast_independent: usize,
    fast_dependent: usize,
    upgrades: usize,
    confirmed: usize,
}

/// Per-schema material shared by every tenant on that schema.
struct SchemaRuntime {
    name: String,
    shared: Arc<SharedSession<'static, Dtd>>,
    queries: Vec<Query>,
    updates: Vec<Update>,
    pools: SchemaPools,
}

/// The simulator. Construct with a [`TrafficConfig`], then [`run`](Self::run).
pub struct TrafficSim {
    config: TrafficConfig,
}

/// The p-th percentile (0..=1) of the samples, in place.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

/// Jain's fairness index over per-tenant mean latencies.
fn jain(means: &[f64]) -> f64 {
    if means.is_empty() {
        return 1.0;
    }
    let sum: f64 = means.iter().sum();
    let sq: f64 = means.iter().map(|m| m * m).sum();
    if sq <= f64::EPSILON {
        return 1.0;
    }
    (sum * sum) / (means.len() as f64 * sq)
}

impl TrafficSim {
    /// Builds a simulator over the given shape.
    pub fn new(config: TrafficConfig) -> TrafficSim {
        TrafficSim { config }
    }

    /// The configured shape.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// The corpus this run registers: fixtures plus generated schemas,
    /// truncated/extended to `config.schemas`.
    pub fn corpus(&self) -> Vec<CorpusSchema> {
        let want = self.config.schemas.max(1);
        let fixtures = Corpus::fixtures().len();
        Corpus::seeded(self.config.seed, want.saturating_sub(fixtures))
            .iter()
            .take(want)
            .cloned()
            .collect()
    }

    /// All tenant plans for this seed (pure — no session work).
    pub fn plans(&self) -> Vec<TenantPlan> {
        let n_schemas = self.corpus().len();
        (0..self.config.tenants)
            .map(|t| {
                tenant_plan(
                    self.config.seed,
                    t,
                    n_schemas,
                    self.config.ops_per_tenant,
                    self.config.queries_per_schema,
                    self.config.updates_per_schema,
                )
            })
            .collect()
    }

    /// Runs the simulation on the configured transport.
    pub fn run(&self) -> TrafficReport {
        let schemas = self.corpus();
        let plans = self.plans();
        let digest = stream_digest(&plans);
        let registry = Arc::new(SessionRegistry::new(
            AnalyzerConfig::default(),
            Jobs::Fixed(1),
        ));
        let mut runtimes = Vec::with_capacity(schemas.len());
        for (i, schema) in schemas.iter().enumerate() {
            registry
                .load_schema(&schema.name, &schema.source, Some(&schema.start))
                .unwrap_or_else(|e| panic!("corpus schema {} loads: {e}", schema.name));
            let pools = schema_pools(
                schema,
                self.config.seed,
                i,
                self.config.queries_per_schema,
                self.config.updates_per_schema,
            );
            let queries = pools
                .queries
                .iter()
                .map(|q| parse_query(q).unwrap_or_else(|e| panic!("{q}: {e:?}")))
                .collect();
            let updates = pools
                .updates
                .iter()
                .map(|u| parse_update(u).unwrap_or_else(|e| panic!("{u}: {e:?}")))
                .collect();
            runtimes.push(SchemaRuntime {
                name: schema.name.clone(),
                shared: registry.get(&schema.name).expect("registered schema"),
                queries,
                updates,
                pools,
            });
        }

        let (outcomes, wall_ms) = if self.config.http {
            http::run_over_http(&self.config, &registry, &runtimes, &plans)
        } else {
            self.run_in_process(&runtimes, &plans)
        };

        let mut report = aggregate(&self.config, &runtimes, digest, outcomes, wall_ms);
        report.mode = if self.config.http {
            "http"
        } else {
            "in-process"
        }
        .to_string();
        report
    }

    /// In-process transport: `jobs` worker threads, tenants assigned
    /// round-robin; each tenant gets its own [`TieredSession`] front over
    /// its schema's shared session.
    fn run_in_process(
        &self,
        runtimes: &[SchemaRuntime],
        plans: &[TenantPlan],
    ) -> (Vec<TenantOutcome>, f64) {
        let threads = self.config.jobs.max(1);
        let outcomes: Vec<Mutex<TenantOutcome>> = plans
            .iter()
            .map(|_| Mutex::new(TenantOutcome::default()))
            .collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let outcomes = &outcomes;
                scope.spawn(move || {
                    for plan in plans.iter().skip(worker).step_by(threads) {
                        let rt = &runtimes[plan.schema];
                        let outcome = run_tenant_in_process(rt, plan);
                        *outcomes[plan.tenant].lock().unwrap() = outcome;
                    }
                });
            }
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let outcomes = outcomes
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        (outcomes, wall_ms)
    }
}

/// Executes one tenant's plan against the in-process tiered front.
fn run_tenant_in_process(rt: &SchemaRuntime, plan: &TenantPlan) -> TenantOutcome {
    let tiered = TieredSession::new(Arc::clone(&rt.shared));
    let mut out = TenantOutcome::default();
    for op in &plan.ops {
        let begin = Instant::now();
        match op {
            Op::Check { query, update } => {
                let v = tiered.check_fast(&rt.queries[*query], &rt.updates[*update]);
                out.checks += 1;
                if v.is_independent() {
                    out.fast_independent += 1;
                } else {
                    out.fast_dependent += 1;
                }
            }
            Op::AddView { name, query } => {
                let resp = rt.shared.handle(&Request::AddView {
                    name: Some(name.clone()),
                    expr: rt.pools.queries[*query].clone(),
                });
                out.edits += 1;
                if matches!(resp, Response::Error { .. }) {
                    out.errors += 1;
                }
            }
            Op::Drop { name } => {
                let resp = rt.shared.handle(&Request::Drop { name: name.clone() });
                out.edits += 1;
                if matches!(resp, Response::Error { .. }) {
                    out.errors += 1;
                }
            }
            Op::Batch { pairs } => {
                let ops = pairs
                    .iter()
                    .map(|(q, u)| Request::Check {
                        query: rt.pools.queries[*q].clone(),
                        update: rt.pools.updates[*u].clone(),
                    })
                    .collect();
                let resp = rt.shared.handle(&Request::Batch(ops));
                out.batches += 1;
                out.batch_ops += pairs.len();
                if matches!(resp, Response::Error { .. }) {
                    out.errors += 1;
                }
            }
            Op::Maintain => {
                let drain = tiered.drain_upgrades();
                out.maintains += 1;
                out.upgrades += drain.upgraded;
                out.confirmed += drain.confirmed;
            }
        }
        out.latencies_us.push(begin.elapsed().as_secs_f64() * 1e6);
    }
    // Leftover upgrades drain outside the per-op timing but inside the
    // deterministic counters: every fast answer ends up upgraded.
    let drain = tiered.drain_upgrades();
    out.upgrades += drain.upgraded;
    out.confirmed += drain.confirmed;
    out
}

/// Folds per-tenant outcomes into the report.
fn aggregate(
    config: &TrafficConfig,
    runtimes: &[SchemaRuntime],
    digest: u64,
    outcomes: Vec<TenantOutcome>,
    wall_ms: f64,
) -> TrafficReport {
    let mut all_latencies = Vec::new();
    let mut means = Vec::new();
    let mut totals = TenantOutcome::default();
    for o in &outcomes {
        if !o.latencies_us.is_empty() {
            means.push(o.latencies_us.iter().sum::<f64>() / o.latencies_us.len() as f64);
        }
        all_latencies.extend_from_slice(&o.latencies_us);
        totals.checks += o.checks;
        totals.edits += o.edits;
        totals.batches += o.batches;
        totals.batch_ops += o.batch_ops;
        totals.maintains += o.maintains;
        totals.errors += o.errors;
        totals.fast_independent += o.fast_independent;
        totals.fast_dependent += o.fast_dependent;
        totals.upgrades += o.upgrades;
        totals.confirmed += o.confirmed;
    }
    let ops_total = totals.checks + totals.edits + totals.batches + totals.maintains;
    // `*_inferences` counts fresh (cache-missing) inferences, so the hit
    // rate denominator is hits + misses.
    let (mut hits, mut inferences) = (0usize, 0usize);
    for rt in runtimes {
        let stats = rt.shared.with_read(|h| h.session().stats());
        hits += stats.cdag_cache_hits + stats.explicit_cache_hits;
        inferences += stats.cdag_inferences + stats.explicit_inferences;
    }
    let lookups = hits + inferences;
    let upgrade_exactness = if totals.upgrades == 0 {
        1.0
    } else {
        totals.confirmed as f64 / totals.upgrades as f64
    };
    TrafficReport {
        seed: config.seed,
        mode: String::new(),
        tenants: config.tenants,
        schemas: runtimes.len(),
        jobs: config.jobs.max(1),
        ops_total,
        stream_digest: digest,
        checks: totals.checks,
        edits: totals.edits,
        batches: totals.batches,
        batch_ops: totals.batch_ops,
        maintains: totals.maintains,
        errors: totals.errors,
        fast_independent: totals.fast_independent,
        fast_dependent: totals.fast_dependent,
        upgrades: totals.upgrades,
        confirmed: totals.confirmed,
        upgrade_exactness,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        wall_ms,
        ops_per_sec: ops_total as f64 / (wall_ms / 1e3).max(f64::EPSILON),
        p50_us: percentile(&mut all_latencies.clone(), 0.5),
        p99_us: percentile(&mut all_latencies.clone(), 0.99),
        p999_us: percentile(&mut all_latencies, 0.999),
        fairness: jain(&means),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_core::Json;

    fn tiny(jobs: usize, http: bool) -> TrafficConfig {
        TrafficConfig {
            tenants: 12,
            ops_per_tenant: 10,
            schemas: 3,
            seed: 7,
            jobs,
            http,
            queries_per_schema: 6,
            updates_per_schema: 6,
        }
    }

    #[test]
    fn in_process_run_is_deterministic_across_jobs() {
        let a = TrafficSim::new(tiny(1, false)).run();
        let b = TrafficSim::new(tiny(2, false)).run();
        let c = TrafficSim::new(tiny(8, false)).run();
        assert_eq!(a.errors, 0, "{}", a.render());
        let strip_jobs = |k: &str| k.to_string(); // determinism key has no jobs field
        assert_eq!(
            strip_jobs(&a.determinism_key()),
            strip_jobs(&b.determinism_key())
        );
        assert_eq!(
            strip_jobs(&a.determinism_key()),
            strip_jobs(&c.determinism_key())
        );
        assert_eq!(a.ops_total, 12 * 10);
        // Every fast answer is eventually upgraded (maintains + final drain).
        assert_eq!(a.upgrades, a.checks);
        assert!(a.upgrade_exactness > 0.0 && a.upgrade_exactness <= 1.0);
    }

    #[test]
    fn seeds_change_the_stream() {
        let mut cfg = tiny(1, false);
        let a = TrafficSim::new(cfg.clone()).plans();
        cfg.seed = 8;
        let b = TrafficSim::new(cfg).plans();
        assert_ne!(stream_digest(&a), stream_digest(&b));
    }

    #[test]
    fn report_json_parses_and_carries_gate_fields() {
        let report = TrafficSim::new(tiny(2, false)).run();
        let json = Json::parse(&report.to_json()).expect("report JSON");
        assert_eq!(json.get("seed").and_then(Json::as_usize), Some(7));
        assert_eq!(json.get("mode").and_then(Json::as_str), Some("in-process"));
        assert_eq!(
            json.get("stream_digest").and_then(Json::as_str),
            Some(format!("{:016x}", report.stream_digest).as_str())
        );
        assert!(json
            .get("upgrade_exactness")
            .and_then(Json::as_f64)
            .is_some());
        assert!(json.get("ops_per_sec").and_then(Json::as_f64).is_some());
        assert!(report.render().contains("exactness"));
    }

    #[test]
    fn fairness_and_percentiles_behave() {
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(jain(&[1.0, 0.0, 0.0]) < 0.5);
        let mut s = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&mut s, 0.5), 3.0);
        assert_eq!(percentile(&mut s, 1.0), 100.0);
    }

    #[test]
    fn corpus_respects_the_schema_budget() {
        let mut cfg = tiny(1, false);
        cfg.schemas = 2;
        assert_eq!(TrafficSim::new(cfg.clone()).corpus().len(), 2);
        cfg.schemas = 7;
        let corpus = TrafficSim::new(cfg).corpus();
        assert_eq!(corpus.len(), 7);
        assert!(corpus.iter().any(|s| s.name.starts_with("gen-")));
    }

    #[test]
    fn http_run_replays_the_same_streams() {
        let inproc = TrafficSim::new(tiny(1, false)).run();
        let http = TrafficSim::new(tiny(2, true)).run();
        assert_eq!(http.mode, "http");
        assert_eq!(http.errors, 0, "{}", http.render());
        assert_eq!(http.stream_digest, inproc.stream_digest);
        assert_eq!(http.ops_total, inproc.ops_total);
        assert_eq!(http.checks, inproc.checks);
        assert_eq!(http.edits, inproc.edits);
        // HTTP checks are exact (no tiered front over the wire), so the
        // upgrade counters stay empty and exactness defaults to 1.
        assert_eq!(http.upgrades, 0);
        assert!((http.upgrade_exactness - 1.0).abs() < 1e-12);
    }
}
