//! The HTTP transport: replays the same tenant op streams against a live
//! `qui serve` daemon over keep-alive connections, measuring the full
//! socket + HTTP-parse + JSON-protocol round trip.
//!
//! Checks over the wire are *exact* (the daemon's check endpoint runs the
//! session's full engine order; the tiered front is an in-process
//! construct), so the upgrade counters stay at zero in this mode and
//! `upgrade_exactness` reports its no-upgrades default of 1. Maintain ops
//! map to `stats` round trips to keep the op count — and the stream
//! digest — identical to the in-process replay.

use crate::ops::{Op, TenantPlan};
use crate::{SchemaRuntime, TenantOutcome, TrafficConfig};
use qui_core::{Json, Request, ServeConfig, Server, SessionRegistry};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One keep-alive client connection.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to traffic daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client { stream }
    }

    /// POSTs one protocol request to the schema's session endpoint and
    /// returns (HTTP status, parsed JSON body).
    fn post(&mut self, schema: &str, request: &Request) -> (u16, Json) {
        let body = request.to_json().render();
        let wire = format!(
            "POST /sessions/{schema} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(wire.as_bytes()).unwrap();
        let mut head = Vec::new();
        let mut b = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            self.stream.read_exact(&mut b).expect("response head");
            head.push(b[0]);
        }
        let head = String::from_utf8(head).unwrap();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut payload = vec![0u8; length];
        self.stream.read_exact(&mut payload).unwrap();
        let json =
            Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap_or(Json::Obj(Vec::new()));
        (status, json)
    }
}

/// Whether a protocol reply should count as an error.
fn is_error(status: u16, body: &Json) -> bool {
    status != 200 || body.get("type").and_then(Json::as_str) == Some("error")
}

/// Executes one tenant's plan over one keep-alive connection.
fn run_tenant_http(client: &mut Client, rt: &SchemaRuntime, plan: &TenantPlan) -> TenantOutcome {
    let mut out = TenantOutcome::default();
    for op in &plan.ops {
        let begin = Instant::now();
        match op {
            Op::Check { query, update } => {
                let (status, body) = client.post(
                    &rt.name,
                    &Request::Check {
                        query: rt.pools.queries[*query].clone(),
                        update: rt.pools.updates[*update].clone(),
                    },
                );
                out.checks += 1;
                if is_error(status, &body) {
                    out.errors += 1;
                } else if body.get("independent").and_then(Json::as_bool) == Some(true) {
                    out.fast_independent += 1;
                } else {
                    out.fast_dependent += 1;
                }
            }
            Op::AddView { name, query } => {
                let (status, body) = client.post(
                    &rt.name,
                    &Request::AddView {
                        name: Some(name.clone()),
                        expr: rt.pools.queries[*query].clone(),
                    },
                );
                out.edits += 1;
                if is_error(status, &body) {
                    out.errors += 1;
                }
            }
            Op::Drop { name } => {
                let (status, body) = client.post(&rt.name, &Request::Drop { name: name.clone() });
                out.edits += 1;
                if is_error(status, &body) {
                    out.errors += 1;
                }
            }
            Op::Batch { pairs } => {
                let ops = pairs
                    .iter()
                    .map(|(q, u)| Request::Check {
                        query: rt.pools.queries[*q].clone(),
                        update: rt.pools.updates[*u].clone(),
                    })
                    .collect();
                let (status, body) = client.post(&rt.name, &Request::Batch(ops));
                out.batches += 1;
                out.batch_ops += pairs.len();
                if is_error(status, &body) {
                    out.errors += 1;
                }
            }
            Op::Maintain => {
                // No tiered front over the wire; a stats round trip keeps
                // the op count aligned with the in-process replay.
                let (status, body) = client.post(&rt.name, &Request::Stats);
                out.maintains += 1;
                if is_error(status, &body) {
                    out.errors += 1;
                }
            }
        }
        out.latencies_us.push(begin.elapsed().as_secs_f64() * 1e6);
    }
    out
}

/// Boots a daemon over the (already loaded) registry, replays every tenant
/// plan through `config.jobs` keep-alive clients, and shuts the daemon
/// down. Returns the per-tenant outcomes and the op-window wall time.
pub(crate) fn run_over_http(
    config: &TrafficConfig,
    registry: &Arc<SessionRegistry>,
    runtimes: &[SchemaRuntime],
    plans: &[TenantPlan],
) -> (Vec<TenantOutcome>, f64) {
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: config.jobs.clamp(1, 4),
            ..Default::default()
        },
        Arc::clone(registry),
    )
    .expect("bind traffic daemon");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("traffic daemon run"));

    let threads = config.jobs.max(1);
    let outcomes: Vec<Mutex<TenantOutcome>> = plans
        .iter()
        .map(|_| Mutex::new(TenantOutcome::default()))
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for plan in plans.iter().skip(worker).step_by(threads) {
                    let outcome = run_tenant_http(&mut client, &runtimes[plan.schema], plan);
                    *outcomes[plan.tenant].lock().unwrap() = outcome;
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    shutdown.store(true, Ordering::SeqCst);
    // Nudge the accept loop so the shutdown flag is observed promptly.
    let _ = TcpStream::connect(addr);
    handle.join().unwrap();
    (
        outcomes
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
        wall_ms,
    )
}
