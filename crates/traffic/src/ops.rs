//! Seeded tenant op streams: every choice the simulator makes — which
//! schema a tenant lives on, which op comes next, which query/update the op
//! touches — is derived from per-tenant [`StdRng`] streams split off the
//! run seed. The streams are generated up front, before any session work,
//! so they are identical whatever the worker-thread count, and the
//! [`stream_digest`] pins that: two runs with the same seed must produce
//! the same digest, jobs ∈ {1, 2, 8} included.

use qui_schema::{random_query, random_update, CorpusSchema};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Splits a per-stream seed off the run seed (SplitMix-style odd multiplier
/// so neighbouring stream ids land far apart).
pub fn mix(seed: u64, stream: u64) -> u64 {
    seed ^ stream
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(23)
}

/// `[0, 1)` from the top 53 bits of the next word — float sampling without
/// relying on float ranges in the vendored rand shim.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A Zipf-ish sampler over ranks `0..n`: rank `r` is drawn with weight
/// `1 / (r + 1)^s`, via a cumulative table. Rank 0 is the hot item.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the cumulative weight table for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        let n = n.max(1);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let x = unit(rng);
        self.cumulative
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// One simulated tenant operation. Query/update indices refer to the
/// tenant schema's string pools (see [`SchemaPools`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Tiered check of pool pair (`query`, `update`).
    Check { query: usize, update: usize },
    /// Register pool query `query` as the tenant-owned view `name`.
    AddView { name: String, query: usize },
    /// Drop a view this tenant registered earlier.
    Drop { name: String },
    /// One round trip carrying several checks.
    Batch { pairs: Vec<(usize, usize)> },
    /// Drain this tenant's pending explicit-witness upgrades.
    Maintain,
}

impl Op {
    /// Canonical one-line form, the unit the [`stream_digest`] hashes.
    pub fn canonical(&self) -> String {
        match self {
            Op::Check { query, update } => format!("check {query} {update}"),
            Op::AddView { name, query } => format!("view {name} {query}"),
            Op::Drop { name } => format!("drop {name}"),
            Op::Batch { pairs } => {
                let body: Vec<String> = pairs.iter().map(|(q, u)| format!("{q}:{u}")).collect();
                format!("batch {}", body.join(","))
            }
            Op::Maintain => "maintain".to_string(),
        }
    }
}

/// One tenant's precomputed run: its schema assignment and op stream.
#[derive(Clone, Debug)]
pub struct TenantPlan {
    /// Tenant id (also the plan's position in the plan list).
    pub tenant: usize,
    /// Index into the corpus schema list.
    pub schema: usize,
    /// The ops, executed in order.
    pub ops: Vec<Op>,
}

/// Generates tenant `tenant`'s plan. Schema assignment is Zipf over the
/// corpus (hot schemas get most tenants, like real multi-tenant registries)
/// and the op mix is roughly 62% check / 12% add-view / 8% drop /
/// 10% batch / 8% maintain, with pool picks Zipf-skewed toward hot pairs.
pub fn tenant_plan(
    seed: u64,
    tenant: usize,
    n_schemas: usize,
    n_ops: usize,
    n_queries: usize,
    n_updates: usize,
) -> TenantPlan {
    let mut rng = StdRng::seed_from_u64(mix(seed, tenant as u64));
    let schema = Zipf::new(n_schemas, 1.1).sample(&mut rng);
    let queries = Zipf::new(n_queries, 1.0);
    let updates = Zipf::new(n_updates, 1.0);
    let mut live: Vec<String> = Vec::new();
    let mut next_view = 0usize;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let roll = rng.random_range(0..100usize);
        let op = if roll < 62 {
            Op::Check {
                query: queries.sample(&mut rng),
                update: updates.sample(&mut rng),
            }
        } else if roll < 74 {
            let name = format!("t{tenant}v{next_view}");
            next_view += 1;
            live.push(name.clone());
            Op::AddView {
                name,
                query: queries.sample(&mut rng),
            }
        } else if roll < 82 {
            if live.is_empty() {
                // Nothing to drop yet; keep the stream deterministic by
                // substituting a check rather than rerolling.
                Op::Check {
                    query: queries.sample(&mut rng),
                    update: updates.sample(&mut rng),
                }
            } else {
                let i = rng.random_range(0..live.len());
                Op::Drop {
                    name: live.swap_remove(i),
                }
            }
        } else if roll < 92 {
            let n = rng.random_range(2..=6usize);
            Op::Batch {
                pairs: (0..n)
                    .map(|_| (queries.sample(&mut rng), updates.sample(&mut rng)))
                    .collect(),
            }
        } else {
            Op::Maintain
        };
        ops.push(op);
    }
    TenantPlan {
        tenant,
        schema,
        ops,
    }
}

/// Per-schema query/update string pools, seeded off the run seed and the
/// schema's corpus position.
#[derive(Clone, Debug)]
pub struct SchemaPools {
    /// Query sources, index space of [`Op::Check::query`].
    pub queries: Vec<String>,
    /// Update sources, index space of [`Op::Check::update`].
    pub updates: Vec<String>,
}

/// Generates the pools for corpus schema `index`.
pub fn schema_pools(
    schema: &CorpusSchema,
    seed: u64,
    index: usize,
    n_queries: usize,
    n_updates: usize,
) -> SchemaPools {
    let labels = schema.labels();
    let mut rng = StdRng::seed_from_u64(mix(seed, 0x0705_0000 ^ index as u64));
    SchemaPools {
        queries: (0..n_queries.max(1))
            .map(|_| random_query(&labels, &mut rng))
            .collect(),
        updates: (0..n_updates.max(1))
            .map(|_| random_update(&schema.start, &labels, &mut rng))
            .collect(),
    }
}

/// FNV-1a over every tenant's canonical op stream, in tenant order. This is
/// the run's replay fingerprint: embedded in the report, compared across
/// `jobs ∈ {1, 2, 8}` by the perf harness.
pub fn stream_digest(plans: &[TenantPlan]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for plan in plans {
        feed(format!("t{} s{};", plan.tenant, plan.schema).as_bytes());
        for op in &plan.ops {
            feed(op.canonical().as_bytes());
            feed(b"\n");
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_schema::Corpus;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[0] > counts[7]);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn plans_are_deterministic_and_mixed() {
        let a = tenant_plan(42, 3, 4, 400, 12, 10);
        let b = tenant_plan(42, 3, 4, 400, 12, 10);
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.ops, b.ops);
        let has = |f: fn(&Op) -> bool| a.ops.iter().any(f);
        assert!(has(|o| matches!(o, Op::Check { .. })));
        assert!(has(|o| matches!(o, Op::AddView { .. })));
        assert!(has(|o| matches!(o, Op::Drop { .. })));
        assert!(has(|o| matches!(o, Op::Batch { .. })));
        assert!(has(|o| matches!(o, Op::Maintain)));
    }

    #[test]
    fn drops_only_follow_their_add() {
        let plan = tenant_plan(9, 0, 2, 600, 8, 8);
        let mut live = Vec::new();
        for op in &plan.ops {
            match op {
                Op::AddView { name, .. } => {
                    assert!(!live.contains(name));
                    live.push(name.clone());
                }
                Op::Drop { name } => {
                    let i = live
                        .iter()
                        .position(|n| n == name)
                        .expect("drop of live view");
                    live.swap_remove(i);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn digest_is_seed_sensitive() {
        let plans_a: Vec<TenantPlan> = (0..6).map(|t| tenant_plan(1, t, 3, 20, 8, 8)).collect();
        let plans_b: Vec<TenantPlan> = (0..6).map(|t| tenant_plan(2, t, 3, 20, 8, 8)).collect();
        assert_ne!(stream_digest(&plans_a), stream_digest(&plans_b));
        let again: Vec<TenantPlan> = (0..6).map(|t| tenant_plan(1, t, 3, 20, 8, 8)).collect();
        assert_eq!(stream_digest(&plans_a), stream_digest(&again));
    }

    #[test]
    fn pools_parse_against_their_schema() {
        for (i, schema) in Corpus::seeded(11, 2).iter().enumerate() {
            let pools = schema_pools(schema, 11, i, 6, 6);
            for q in &pools.queries {
                qui_xquery::parse_query(q).unwrap_or_else(|e| panic!("{q}: {e:?}"));
            }
            for u in &pools.updates {
                qui_xquery::parse_update(u).unwrap_or_else(|e| panic!("{u}: {e:?}"));
            }
        }
    }
}
