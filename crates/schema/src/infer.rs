//! DTD inference from a corpus of documents.
//!
//! The paper assumes a schema is available, noting (§1) that when none is,
//! "quite precise schemas, in the form of a DTD, can be automatically
//! inferred, by using accurate and efficient existing techniques like the one
//! proposed by Bex et al.". This module provides that missing substrate: a
//! concise-DTD inference in the spirit of the CHARE (chain of alternation
//! factors) class of Bex, Neven, Schwentick and Vansummeren.
//!
//! For every element name appearing in the corpus, the observed child-name
//! sequences are generalised to a *chain regular expression*
//! `f_1, f_2, …, f_n` where each factor `f_i` is `a`, `a?`, `a+`, `a*`,
//! `(a_1|…|a_m)+` or `(a_1|…|a_m)*`:
//!
//! 1. build the *precedes* relation over child names (`a < b` iff some
//!    observed sequence has an `a` before a `b`);
//! 2. its strongly connected components become the factors — two names that
//!    can appear in either order must share a factor;
//! 3. factors are emitted in topological order (which is consistent with
//!    every observed sequence by construction);
//! 4. multiplicities are read off the observations: a factor is optional if
//!    some sequence contains none of its names, and repeating if some
//!    sequence contains more than one occurrence (or it has several names).
//!
//! The result is *sound for the corpus*: every document the expressions were
//! learnt from is valid w.r.t. the inferred DTD (this is asserted by tests
//! and by the [`infer_dtd`] post-condition check). Text content is treated
//! as the reserved `#PCDATA` symbol, so mixed content infers models such as
//! `(#PCDATA | bold | emph)*`.

use crate::dtd::Dtd;
use crate::parser::SchemaParseError;
use crate::symbols::TEXT_NAME;
use qui_xmlstore::Tree;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An error produced by DTD inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// The corpus is empty, or contains only text roots.
    EmptyCorpus,
    /// Two documents have different root element names.
    MixedRoots(String, String),
    /// The generalised content models failed to re-parse (internal error).
    Schema(SchemaParseError),
    /// The inferred DTD rejected one of the corpus documents (internal
    /// error — the construction is supposed to make this impossible).
    NotGeneralising(String),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::EmptyCorpus => write!(f, "cannot infer a DTD from an empty corpus"),
            InferenceError::MixedRoots(a, b) => {
                write!(f, "documents have different roots: <{a}> and <{b}>")
            }
            InferenceError::Schema(e) => write!(f, "inferred schema failed to build: {e}"),
            InferenceError::NotGeneralising(tag) => write!(
                f,
                "inferred content model for <{tag}> rejects a corpus document"
            ),
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<SchemaParseError> for InferenceError {
    fn from(e: SchemaParseError) -> Self {
        InferenceError::Schema(e)
    }
}

/// One factor of an inferred chain regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Factor {
    /// The names in the factor (singleton for a plain symbol).
    names: Vec<String>,
    /// The factor may be absent from a child sequence.
    optional: bool,
    /// The factor may contribute more than one child.
    repeating: bool,
}

impl Factor {
    fn render(&self) -> String {
        let body = if self.names.len() == 1 {
            escape_name(&self.names[0])
        } else {
            format!(
                "({})",
                self.names
                    .iter()
                    .map(|n| escape_name(n))
                    .collect::<Vec<_>>()
                    .join(" | ")
            )
        };
        match (self.optional, self.repeating) {
            (false, false) => body,
            (true, false) => format!("{body}?"),
            (false, true) => format!("{body}+"),
            (true, true) => format!("{body}*"),
        }
    }
}

fn escape_name(name: &str) -> String {
    if name == TEXT_NAME {
        "#PCDATA".to_string()
    } else {
        name.to_string()
    }
}

/// The per-element observations collected from the corpus.
#[derive(Debug, Default, Clone)]
struct Observations {
    /// Every observed child-name sequence (text children are recorded as
    /// [`TEXT_NAME`]).
    sequences: Vec<Vec<String>>,
}

/// The outcome of [`infer_dtd`]: the schema plus the per-element generalised
/// content-model sources, useful for reports and for round-tripping.
#[derive(Debug, Clone)]
pub struct InferredDtd {
    /// The inferred schema.
    pub dtd: Dtd,
    /// The root element name.
    pub root: String,
    /// For each element name, the generalised content-model source text.
    pub rules: BTreeMap<String, String>,
    /// Number of documents the inference consumed.
    pub documents: usize,
    /// Number of element nodes the inference consumed.
    pub elements: usize,
}

impl InferredDtd {
    /// Renders the inferred schema in the compact `name -> model` syntax
    /// accepted by [`Dtd::parse_compact`].
    pub fn to_compact(&self) -> String {
        self.rules
            .iter()
            .map(|(name, model)| format!("{name} -> {model}"))
            .collect::<Vec<_>>()
            .join(" ; ")
    }
}

/// Infers a concise DTD from a corpus of documents.
///
/// Every document of the corpus is guaranteed to be valid w.r.t. the
/// returned DTD; the function re-validates the corpus and reports an
/// internal error otherwise.
pub fn infer_dtd(corpus: &[Tree]) -> Result<InferredDtd, InferenceError> {
    let mut root: Option<String> = None;
    let mut obs: BTreeMap<String, Observations> = BTreeMap::new();
    let mut elements = 0usize;

    for tree in corpus {
        let store = &tree.store;
        let root_tag = match store.tag(tree.root) {
            Some(tag) => tag.to_string(),
            None => return Err(InferenceError::EmptyCorpus),
        };
        match &root {
            None => root = Some(root_tag.clone()),
            Some(r) if *r != root_tag => {
                return Err(InferenceError::MixedRoots(r.clone(), root_tag))
            }
            _ => {}
        }
        for id in tree.reachable() {
            let node = store.node_ref(id);
            let Some(tag) = node.tag() else {
                continue;
            };
            elements += 1;
            let seq: Vec<String> = node
                .children()
                .map(|c| c.tag().unwrap_or(TEXT_NAME).to_string())
                .collect();
            obs.entry(tag.to_string()).or_default().sequences.push(seq);
        }
    }

    let root = root.ok_or(InferenceError::EmptyCorpus)?;

    let mut rules: BTreeMap<String, String> = BTreeMap::new();
    for (tag, observations) in &obs {
        rules.insert(tag.clone(), generalise(&observations.sequences));
    }

    let compact = rules
        .iter()
        .map(|(name, model)| format!("{name} -> {model}"))
        .collect::<Vec<_>>()
        .join(" ; ");
    let dtd = Dtd::parse_compact(&compact, &root)?;

    // Post-condition: the corpus is covered.
    for tree in corpus {
        if dtd.validate(tree).is_err() {
            let tag = tree.root_tag().unwrap_or("?").to_string();
            return Err(InferenceError::NotGeneralising(tag));
        }
    }

    Ok(InferredDtd {
        dtd,
        root,
        rules,
        documents: corpus.len(),
        elements,
    })
}

/// Generalises a set of observed child sequences into a chain regular
/// expression, rendered in the compact content-model syntax.
fn generalise(sequences: &[Vec<String>]) -> String {
    let names: BTreeSet<&String> = sequences.iter().flatten().collect();
    if names.is_empty() {
        return "EMPTY".to_string();
    }
    // Content that is only ever a single text child is plain #PCDATA.
    if names.len() == 1 && *names.iter().next().unwrap() == TEXT_NAME {
        let optional = sequences.iter().any(|s| s.is_empty());
        let repeating = sequences.iter().any(|s| s.len() > 1);
        let f = Factor {
            names: vec![TEXT_NAME.to_string()],
            optional,
            repeating,
        };
        return f.render();
    }

    let names: Vec<String> = names.into_iter().cloned().collect();
    let index: BTreeMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let n = names.len();

    // precedes[a][b]: some sequence has an occurrence of a before one of b.
    let mut precedes = vec![vec![false; n]; n];
    for seq in sequences {
        for (i, a) in seq.iter().enumerate() {
            for b in &seq[i + 1..] {
                precedes[index[a.as_str()]][index[b.as_str()]] = true;
            }
        }
    }

    // Strongly connected components of the precedes graph (Tarjan would do;
    // with the tiny alphabets of content models a transitive closure is
    // simpler and plenty fast).
    let mut reach = precedes.clone();
    for k in 0..n {
        let through_k = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (j, &reachable) in through_k.iter().enumerate() {
                    if reachable {
                        row[j] = true;
                    }
                }
            }
        }
    }
    let mut component = vec![usize::MAX; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        if component[i] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = vec![i];
        component[i] = id;
        for j in i + 1..n {
            if component[j] == usize::MAX && reach[i][j] && reach[j][i] {
                component[j] = id;
                members.push(j);
            }
        }
        components.push(members);
    }

    // Order components: c1 before c2 if some member of c1 precedes some
    // member of c2. Components that never co-occur are ordered by their
    // smallest member, which is safe because both are then optional.
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by(|&a, &b| {
        let a_before_b = components[a]
            .iter()
            .any(|&i| components[b].iter().any(|&j| reach[i][j]));
        let b_before_a = components[b]
            .iter()
            .any(|&i| components[a].iter().any(|&j| reach[i][j]));
        match (a_before_b, b_before_a) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            _ => components[a][0].cmp(&components[b][0]),
        }
    });

    let mut factors = Vec::new();
    for &c in &order {
        let members = &components[c];
        let member_names: Vec<String> = members.iter().map(|&i| names[i].clone()).collect();
        let mut optional = false;
        let mut repeating = members.len() > 1;
        for seq in sequences {
            let count = seq
                .iter()
                .filter(|s| member_names.iter().any(|m| m == *s))
                .count();
            if count == 0 {
                optional = true;
            }
            if count > 1 {
                repeating = true;
            }
        }
        factors.push(Factor {
            names: member_names,
            optional,
            repeating,
        });
    }

    factors
        .iter()
        .map(Factor::render)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genvalid::{generate_valid, GenValidConfig};
    use qui_xmlstore::parse_xml;

    fn corpus_from(xml: &[&str]) -> Vec<Tree> {
        xml.iter().map(|s| parse_xml(s).unwrap()).collect()
    }

    #[test]
    fn empty_corpus_is_rejected() {
        assert_eq!(infer_dtd(&[]).unwrap_err(), InferenceError::EmptyCorpus);
    }

    #[test]
    fn mixed_roots_are_rejected() {
        let corpus = corpus_from(&["<a/>", "<b/>"]);
        assert!(matches!(
            infer_dtd(&corpus),
            Err(InferenceError::MixedRoots(_, _))
        ));
    }

    #[test]
    fn single_empty_element() {
        let corpus = corpus_from(&["<a/>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.rules["a"], "EMPTY");
        assert_eq!(inferred.root, "a");
    }

    #[test]
    fn text_only_content_infers_pcdata() {
        let corpus = corpus_from(&["<a>hello</a>", "<a>world</a>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.rules["a"], "#PCDATA");
    }

    #[test]
    fn optional_text_content() {
        let corpus = corpus_from(&["<a>hello</a>", "<a/>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.rules["a"], "#PCDATA?");
    }

    #[test]
    fn fixed_sequence_is_inferred_exactly() {
        let corpus = corpus_from(&["<book><title>t</title><price>p</price></book>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.rules["book"], "title, price");
    }

    #[test]
    fn optional_and_repeated_children() {
        let corpus = corpus_from(&["<bib><book/><book/></bib>", "<bib><book/></bib>", "<bib/>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.rules["bib"], "book*");
    }

    #[test]
    fn interleaved_children_share_a_factor() {
        let corpus = corpus_from(&[
            "<r><a/><b/><a/></r>", // a before b and b before a: same factor
        ]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.rules["r"], "(a | b)+");
    }

    #[test]
    fn ordered_children_get_separate_factors() {
        let corpus = corpus_from(&[
            "<person><name>n</name><phone>p</phone></person>",
            "<person><name>n</name></person>",
        ]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.rules["person"], "name, phone?");
    }

    #[test]
    fn mixed_content_keeps_text_symbol() {
        let corpus = corpus_from(&["<p>hello <b>bold</b> world</p>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        let p = inferred.rules["p"].clone();
        assert!(p.contains("#PCDATA"), "{p}");
        assert!(p.contains('b'), "{p}");
    }

    #[test]
    fn corpus_documents_validate_against_inferred_dtd() {
        let corpus = corpus_from(&[
            "<bib><book><title>a</title><author><last>x</last></author></book></bib>",
            "<bib><book><title>b</title><author><last>y</last><last>z</last></author></book><book><title>c</title></book></bib>",
            "<bib/>",
        ]);
        let inferred = infer_dtd(&corpus).unwrap();
        for doc in &corpus {
            assert!(inferred.dtd.validate(doc).is_ok());
        }
    }

    #[test]
    fn inference_round_trips_through_compact_syntax() {
        let corpus = corpus_from(&["<r><a/><b>t</b></r>", "<r><a/><a/><b>t</b></r>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        let reparsed = Dtd::parse_compact(&inferred.to_compact(), &inferred.root).unwrap();
        for doc in &corpus {
            assert!(reparsed.validate(doc).is_ok());
        }
    }

    #[test]
    fn inferred_dtd_generalises_generated_documents() {
        // Learn from documents generated by a known DTD, then check that the
        // inferred schema accepts further documents from the same source —
        // not guaranteed in general, but expected on this simple schema.
        let source = Dtd::parse_compact(
            "lib -> shelf* ; shelf -> (book | journal)* ; book -> (title, author*) ; \
             journal -> title ; title -> #PCDATA ; author -> #PCDATA",
            "lib",
        )
        .unwrap();
        let corpus: Vec<Tree> = (0..20)
            .map(|seed| generate_valid(&source, &GenValidConfig::with_target(120), seed))
            .collect();
        let inferred = infer_dtd(&corpus).unwrap();
        for seed in 100..110 {
            let doc = generate_valid(&source, &GenValidConfig::with_target(150), seed);
            assert!(
                inferred.dtd.validate(&doc).is_ok(),
                "unseen document (seed {seed}) rejected by the inferred DTD"
            );
        }
    }

    #[test]
    fn element_and_document_counts_are_reported() {
        let corpus = corpus_from(&["<a><b/></a>", "<a><b/><b/></a>"]);
        let inferred = infer_dtd(&corpus).unwrap();
        assert_eq!(inferred.documents, 2);
        assert_eq!(inferred.elements, 5);
    }
}
