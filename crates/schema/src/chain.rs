//! Chains over a schema (Definition 2.1).
//!
//! A chain `α_1.α_2.….α_n` is a sequence of symbols such that each symbol is
//! reachable (`⇒_d`) from its predecessor. Chains inferred for queries and
//! updates record the *entire* root-to-node context, which is what makes the
//! paper's analysis more precise than type-set based analyses.

use crate::symbols::Sym;
use std::fmt;

/// A chain of schema symbols.
///
/// The empty chain is allowed as a value (it is convenient when manipulating
/// prefixes/suffixes) even though Definition 2.1 only speaks of non-empty
/// chains.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Chain(pub Vec<Sym>);

impl Chain {
    /// The empty chain `ε`.
    pub fn empty() -> Self {
        Chain(Vec::new())
    }

    /// A singleton chain.
    pub fn single(s: Sym) -> Self {
        Chain(vec![s])
    }

    /// Builds a chain from a slice of symbols.
    pub fn from_slice(s: &[Sym]) -> Self {
        Chain(s.to_vec())
    }

    /// Number of symbols in the chain.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty chain.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The last symbol, if any.
    pub fn last(&self) -> Option<Sym> {
        self.0.last().copied()
    }

    /// The first symbol, if any.
    pub fn first(&self) -> Option<Sym> {
        self.0.first().copied()
    }

    /// The symbols of the chain.
    pub fn symbols(&self) -> &[Sym] {
        &self.0
    }

    /// Returns a new chain with `s` appended (`c.α`).
    pub fn push(&self, s: Sym) -> Chain {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(s);
        Chain(v)
    }

    /// Concatenation `c_1.c_2`.
    pub fn concat(&self, other: &Chain) -> Chain {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Chain(v)
    }

    /// The chain without its last symbol (`c` for `c.α`), or `None` for the
    /// empty chain.
    pub fn parent(&self) -> Option<Chain> {
        if self.0.is_empty() {
            None
        } else {
            Some(Chain(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// All proper prefixes, from the empty chain excluded up to (excluding)
    /// the chain itself — i.e. the chains reached by the `ancestor` axis.
    pub fn proper_prefixes(&self) -> Vec<Chain> {
        (1..self.0.len())
            .map(|i| Chain(self.0[..i].to_vec()))
            .collect()
    }

    /// All prefixes including the chain itself (the `ancestor-or-self` axis),
    /// excluding the empty chain.
    pub fn prefixes_or_self(&self) -> Vec<Chain> {
        (1..=self.0.len())
            .map(|i| Chain(self.0[..i].to_vec()))
            .collect()
    }

    /// The prefix relation `c_1 ⪯ c_2` (reflexive).
    pub fn is_prefix_of(&self, other: &Chain) -> bool {
        self.0.len() <= other.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Returns `true` if the two chains are comparable under `⪯` in either
    /// direction (one is a prefix of the other).
    pub fn overlaps(&self, other: &Chain) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// Number of occurrences of `s` in the chain.
    pub fn count(&self, s: Sym) -> usize {
        self.0.iter().filter(|&&x| x == s).count()
    }

    /// Returns `true` if no symbol occurs more than `k` times — i.e. the
    /// chain is a *k-chain* in the sense of §5.
    pub fn is_k_chain(&self, k: usize) -> bool {
        // Chains are short in practice; a quadratic scan avoids allocating a
        // counting map on this very hot path.
        for (i, &s) in self.0.iter().enumerate() {
            let occ = 1 + self.0[..i].iter().filter(|&&x| x == s).count();
            if occ > k {
                return false;
            }
        }
        true
    }

    /// Renders the chain with a symbol-name resolver, e.g. `doc.a.c`.
    pub fn display_with<F: Fn(Sym) -> String>(&self, name: &F) -> String {
        if self.0.is_empty() {
            return "ε".to_string();
        }
        self.0
            .iter()
            .map(|&s| name(s))
            .collect::<Vec<_>>()
            .join(".")
    }
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        let parts: Vec<String> = self.0.iter().map(|s| format!("{s:?}")).collect();
        write!(f, "{}", parts.join("."))
    }
}

impl From<Vec<Sym>> for Chain {
    fn from(v: Vec<Sym>) -> Self {
        Chain(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> Sym {
        Sym(i)
    }

    #[test]
    fn push_concat_parent() {
        let c = Chain::single(s(1)).push(s(2)).push(s(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.last(), Some(s(3)));
        assert_eq!(c.first(), Some(s(1)));
        assert_eq!(c.parent().unwrap(), Chain::from_slice(&[s(1), s(2)]));
        let d = Chain::from_slice(&[s(4)]);
        assert_eq!(c.concat(&d).len(), 4);
        assert!(Chain::empty().parent().is_none());
    }

    #[test]
    fn prefix_relation() {
        let c1 = Chain::from_slice(&[s(1), s(2)]);
        let c2 = Chain::from_slice(&[s(1), s(2), s(3)]);
        let c3 = Chain::from_slice(&[s(1), s(4)]);
        assert!(c1.is_prefix_of(&c2));
        assert!(!c2.is_prefix_of(&c1));
        assert!(c1.is_prefix_of(&c1));
        assert!(!c1.is_prefix_of(&c3));
        assert!(c1.overlaps(&c2));
        assert!(c2.overlaps(&c1));
        assert!(!c2.overlaps(&c3));
        assert!(Chain::empty().is_prefix_of(&c1));
    }

    #[test]
    fn prefixes_and_ancestors() {
        let c = Chain::from_slice(&[s(1), s(2), s(3)]);
        assert_eq!(
            c.proper_prefixes(),
            vec![Chain::from_slice(&[s(1)]), Chain::from_slice(&[s(1), s(2)])]
        );
        assert_eq!(c.prefixes_or_self().len(), 3);
    }

    #[test]
    fn k_chain_predicate() {
        let c = Chain::from_slice(&[s(1), s(2), s(1), s(3), s(1)]);
        assert_eq!(c.count(s(1)), 3);
        assert!(c.is_k_chain(3));
        assert!(!c.is_k_chain(2));
        assert!(Chain::empty().is_k_chain(0));
    }

    #[test]
    fn display() {
        let c = Chain::from_slice(&[s(1), s(2)]);
        let shown = c.display_with(&|x| format!("t{}", x.0));
        assert_eq!(shown, "t1.t2");
        assert_eq!(Chain::empty().display_with(&|_| "x".into()), "ε");
    }
}
