//! Content models: regular expressions over `Σ ∪ {S}`.
//!
//! Besides construction and pretty-printing, this module provides the three
//! operations the rest of the system needs:
//!
//! * [`ContentModel::matches`] — word membership (used by validation), via a
//!   Glushkov position automaton built on demand;
//! * [`ContentModel::symbols`] — the symbols occurring in the expression,
//!   which defines the reachability relation `α ⇒_d β` (Definition 2.1);
//! * [`ContentModel::before_pairs`] — the sibling order relation `α <_r β` of
//!   §3.1: `α <_r β` holds iff some word of `L(r)` contains an `α` strictly
//!   before a `β`. It drives chain inference for the
//!   `following-sibling`/`preceding-sibling` axes.

use crate::symbols::Sym;
use std::collections::HashSet;

/// A regular expression used as a DTD content model.
///
/// The constructors cannot express the empty language, so every content
/// model denotes a non-empty set of words; this matches DTD practice and
/// keeps `before_pairs`/`symbols` simple (every syntactic occurrence of a
/// symbol can actually occur in some word).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentModel {
    /// The empty word `ε` (the content model of `EMPTY` elements and of the
    /// text type `S`).
    Epsilon,
    /// A single symbol (an element tag or the text type).
    Symbol(Sym),
    /// Concatenation `r_1, r_2, …, r_n`.
    Seq(Vec<ContentModel>),
    /// Alternation `r_1 | r_2 | … | r_n`.
    Alt(Vec<ContentModel>),
    /// Kleene star `r*`.
    Star(Box<ContentModel>),
    /// One-or-more `r+`.
    Plus(Box<ContentModel>),
    /// Optional `r?`.
    Opt(Box<ContentModel>),
}

impl ContentModel {
    /// Convenience constructor for a symbol atom.
    pub fn sym(s: Sym) -> Self {
        ContentModel::Symbol(s)
    }

    /// Convenience constructor for a sequence, flattening trivial cases.
    pub fn seq(items: Vec<ContentModel>) -> Self {
        match items.len() {
            0 => ContentModel::Epsilon,
            1 => items.into_iter().next().expect("len checked"),
            _ => ContentModel::Seq(items),
        }
    }

    /// Convenience constructor for an alternation, flattening trivial cases.
    pub fn alt(items: Vec<ContentModel>) -> Self {
        match items.len() {
            0 => ContentModel::Epsilon,
            1 => items.into_iter().next().expect("len checked"),
            _ => ContentModel::Alt(items),
        }
    }

    /// `r*`
    pub fn star(r: ContentModel) -> Self {
        ContentModel::Star(Box::new(r))
    }

    /// `r+`
    pub fn plus(r: ContentModel) -> Self {
        ContentModel::Plus(Box::new(r))
    }

    /// `r?`
    pub fn opt(r: ContentModel) -> Self {
        ContentModel::Opt(Box::new(r))
    }

    /// Returns `true` iff the empty word belongs to `L(r)`.
    pub fn nullable(&self) -> bool {
        match self {
            ContentModel::Epsilon => true,
            ContentModel::Symbol(_) => false,
            ContentModel::Seq(rs) => rs.iter().all(|r| r.nullable()),
            ContentModel::Alt(rs) => rs.iter().any(|r| r.nullable()),
            ContentModel::Star(_) | ContentModel::Opt(_) => true,
            ContentModel::Plus(r) => r.nullable(),
        }
    }

    /// The set of symbols occurring in the expression.
    ///
    /// Because the constructors cannot denote the empty language, every
    /// occurring symbol appears in some word, so this set is exactly
    /// `{β | α ⇒_d β}` when the expression is `d(α)`.
    pub fn symbols(&self) -> HashSet<Sym> {
        let mut out = HashSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut HashSet<Sym>) {
        match self {
            ContentModel::Epsilon => {}
            ContentModel::Symbol(s) => {
                out.insert(*s);
            }
            ContentModel::Seq(rs) | ContentModel::Alt(rs) => {
                for r in rs {
                    r.collect_symbols(out);
                }
            }
            ContentModel::Star(r) | ContentModel::Plus(r) | ContentModel::Opt(r) => {
                r.collect_symbols(out)
            }
        }
    }

    /// The sibling order relation `<_r`: all pairs `(α, β)` such that some
    /// word of `L(r)` contains an occurrence of `α` strictly before an
    /// occurrence of `β`.
    ///
    /// For example (paper §3.1) `<_{a,(b|c)*}` is
    /// `{(a,b),(a,c),(b,c),(c,b),(c,c),(b,b)}`.
    pub fn before_pairs(&self) -> HashSet<(Sym, Sym)> {
        match self {
            ContentModel::Epsilon | ContentModel::Symbol(_) => HashSet::new(),
            ContentModel::Seq(rs) => {
                let mut out = HashSet::new();
                for r in rs {
                    out.extend(r.before_pairs());
                }
                // A symbol of an earlier factor can precede any symbol of a
                // later factor.
                for i in 0..rs.len() {
                    let left = rs[i].symbols();
                    for r in &rs[i + 1..] {
                        for &a in &left {
                            for &b in r.symbols().iter() {
                                out.insert((a, b));
                            }
                        }
                    }
                }
                out
            }
            ContentModel::Alt(rs) => {
                let mut out = HashSet::new();
                for r in rs {
                    out.extend(r.before_pairs());
                }
                out
            }
            ContentModel::Star(r) | ContentModel::Plus(r) => {
                // Two iterations of r put any symbol of r before any other.
                let mut out = r.before_pairs();
                let syms = r.symbols();
                for &a in &syms {
                    for &b in &syms {
                        out.insert((a, b));
                    }
                }
                out
            }
            ContentModel::Opt(r) => r.before_pairs(),
        }
    }

    /// Returns `true` iff `word ∈ L(r)`, using a Glushkov position automaton.
    pub fn matches(&self, word: &[Sym]) -> bool {
        if word.is_empty() {
            return self.nullable();
        }
        let g = Glushkov::build(self);
        g.matches(word)
    }

    /// The total number of nodes in the expression tree (a simple size
    /// measure used to report `|d|`-related statistics).
    pub fn size(&self) -> usize {
        match self {
            ContentModel::Epsilon | ContentModel::Symbol(_) => 1,
            ContentModel::Seq(rs) | ContentModel::Alt(rs) => {
                1 + rs.iter().map(|r| r.size()).sum::<usize>()
            }
            ContentModel::Star(r) | ContentModel::Plus(r) | ContentModel::Opt(r) => 1 + r.size(),
        }
    }

    /// Renders the expression using a symbol-name resolver.
    pub fn display_with<F: Fn(Sym) -> String>(&self, name: &F) -> String {
        match self {
            ContentModel::Epsilon => "EMPTY".to_string(),
            ContentModel::Symbol(s) => name(*s),
            ContentModel::Seq(rs) => {
                let parts: Vec<String> = rs.iter().map(|r| r.display_with(name)).collect();
                format!("({})", parts.join(", "))
            }
            ContentModel::Alt(rs) => {
                let parts: Vec<String> = rs.iter().map(|r| r.display_with(name)).collect();
                format!("({})", parts.join(" | "))
            }
            ContentModel::Star(r) => format!("{}*", r.display_with(name)),
            ContentModel::Plus(r) => format!("{}+", r.display_with(name)),
            ContentModel::Opt(r) => format!("{}?", r.display_with(name)),
        }
    }
}

/// Glushkov position automaton: `first`, `last` and `follow` sets over symbol
/// *positions* (occurrences), giving linear-time membership testing without
/// epsilon transitions.
struct Glushkov {
    /// Symbol at each position.
    syms: Vec<Sym>,
    first: HashSet<usize>,
    last: HashSet<usize>,
    follow: Vec<HashSet<usize>>,
    nullable: bool,
}

struct GlushkovSets {
    first: HashSet<usize>,
    last: HashSet<usize>,
    nullable: bool,
}

impl Glushkov {
    fn build(r: &ContentModel) -> Glushkov {
        let mut g = Glushkov {
            syms: Vec::new(),
            first: HashSet::new(),
            last: HashSet::new(),
            follow: Vec::new(),
            nullable: false,
        };
        let sets = g.walk(r);
        g.first = sets.first;
        g.last = sets.last;
        g.nullable = sets.nullable;
        g
    }

    fn walk(&mut self, r: &ContentModel) -> GlushkovSets {
        match r {
            ContentModel::Epsilon => GlushkovSets {
                first: HashSet::new(),
                last: HashSet::new(),
                nullable: true,
            },
            ContentModel::Symbol(s) => {
                let pos = self.syms.len();
                self.syms.push(*s);
                self.follow.push(HashSet::new());
                GlushkovSets {
                    first: [pos].into_iter().collect(),
                    last: [pos].into_iter().collect(),
                    nullable: false,
                }
            }
            ContentModel::Seq(rs) => {
                let mut acc = GlushkovSets {
                    first: HashSet::new(),
                    last: HashSet::new(),
                    nullable: true,
                };
                for sub in rs {
                    let s = self.walk(sub);
                    // follow: every last of acc can be followed by a first of s
                    for &l in &acc.last {
                        for &f in &s.first {
                            self.follow[l].insert(f);
                        }
                    }
                    let first = if acc.nullable {
                        acc.first.union(&s.first).copied().collect()
                    } else {
                        acc.first
                    };
                    let last = if s.nullable {
                        acc.last.union(&s.last).copied().collect()
                    } else {
                        s.last
                    };
                    acc = GlushkovSets {
                        first,
                        last,
                        nullable: acc.nullable && s.nullable,
                    };
                }
                acc
            }
            ContentModel::Alt(rs) => {
                let mut acc = GlushkovSets {
                    first: HashSet::new(),
                    last: HashSet::new(),
                    nullable: false,
                };
                for sub in rs {
                    let s = self.walk(sub);
                    acc.first.extend(s.first);
                    acc.last.extend(s.last);
                    acc.nullable |= s.nullable;
                }
                acc
            }
            ContentModel::Star(inner) | ContentModel::Plus(inner) => {
                let s = self.walk(inner);
                for &l in &s.last {
                    for &f in &s.first {
                        self.follow[l].insert(f);
                    }
                }
                GlushkovSets {
                    first: s.first,
                    last: s.last,
                    nullable: matches!(r, ContentModel::Star(_)) || s.nullable,
                }
            }
            ContentModel::Opt(inner) => {
                let s = self.walk(inner);
                GlushkovSets {
                    first: s.first,
                    last: s.last,
                    nullable: true,
                }
            }
        }
    }

    fn matches(&self, word: &[Sym]) -> bool {
        if word.is_empty() {
            return self.nullable;
        }
        let mut current: HashSet<usize> = self
            .first
            .iter()
            .copied()
            .filter(|&p| self.syms[p] == word[0])
            .collect();
        for &w in &word[1..] {
            if current.is_empty() {
                return false;
            }
            let mut next = HashSet::new();
            for &p in &current {
                for &f in &self.follow[p] {
                    if self.syms[f] == w {
                        next.insert(f);
                    }
                }
            }
            current = next;
        }
        current.iter().any(|p| self.last.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    fn syms() -> (SymbolTable, Sym, Sym, Sym) {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        (t, a, b, c)
    }

    #[test]
    fn nullability() {
        let (_, a, b, _) = syms();
        assert!(ContentModel::Epsilon.nullable());
        assert!(!ContentModel::sym(a).nullable());
        assert!(ContentModel::star(ContentModel::sym(a)).nullable());
        assert!(!ContentModel::plus(ContentModel::sym(a)).nullable());
        assert!(ContentModel::opt(ContentModel::sym(a)).nullable());
        assert!(!ContentModel::seq(vec![ContentModel::sym(a), ContentModel::sym(b)]).nullable());
        assert!(ContentModel::seq(vec![
            ContentModel::opt(ContentModel::sym(a)),
            ContentModel::star(ContentModel::sym(b))
        ])
        .nullable());
    }

    #[test]
    fn membership_simple_sequences() {
        let (_, a, b, c) = syms();
        // (a, (b|c)*)
        let r = ContentModel::seq(vec![
            ContentModel::sym(a),
            ContentModel::star(ContentModel::alt(vec![
                ContentModel::sym(b),
                ContentModel::sym(c),
            ])),
        ]);
        assert!(r.matches(&[a]));
        assert!(r.matches(&[a, b, c, c, b]));
        assert!(!r.matches(&[b]));
        assert!(!r.matches(&[a, a]));
        assert!(!r.matches(&[]));
    }

    #[test]
    fn membership_plus_and_opt() {
        let (_, a, b, _) = syms();
        // (a+, b?)
        let r = ContentModel::seq(vec![
            ContentModel::plus(ContentModel::sym(a)),
            ContentModel::opt(ContentModel::sym(b)),
        ]);
        assert!(r.matches(&[a]));
        assert!(r.matches(&[a, a, a, b]));
        assert!(!r.matches(&[b]));
        assert!(!r.matches(&[a, b, b]));
    }

    #[test]
    fn symbols_and_reachability() {
        let (_, a, b, c) = syms();
        let r = ContentModel::seq(vec![
            ContentModel::sym(a),
            ContentModel::star(ContentModel::alt(vec![
                ContentModel::sym(b),
                ContentModel::sym(c),
            ])),
        ]);
        let s = r.symbols();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&a) && s.contains(&b) && s.contains(&c));
    }

    #[test]
    fn before_pairs_matches_paper_example() {
        let (_, a, b, c) = syms();
        // a, (b|c)*   — the example of §3.1
        let r = ContentModel::seq(vec![
            ContentModel::sym(a),
            ContentModel::star(ContentModel::alt(vec![
                ContentModel::sym(b),
                ContentModel::sym(c),
            ])),
        ]);
        let before = r.before_pairs();
        let expected: HashSet<(Sym, Sym)> = [(a, b), (a, c), (b, c), (c, b), (c, c), (b, b)]
            .into_iter()
            .collect();
        assert_eq!(before, expected);
    }

    #[test]
    fn before_pairs_sequence_only() {
        let (_, a, b, c) = syms();
        // (a, b, c) — strictly ordered
        let r = ContentModel::seq(vec![
            ContentModel::sym(a),
            ContentModel::sym(b),
            ContentModel::sym(c),
        ]);
        let before = r.before_pairs();
        let expected: HashSet<(Sym, Sym)> = [(a, b), (a, c), (b, c)].into_iter().collect();
        assert_eq!(before, expected);
    }

    #[test]
    fn display_roundtrip_is_readable() {
        let (t, a, b, _) = syms();
        let r = ContentModel::seq(vec![
            ContentModel::sym(a),
            ContentModel::star(ContentModel::sym(b)),
        ]);
        let shown = r.display_with(&|s| t.name(s).to_string());
        assert_eq!(shown, "(a, b*)");
    }

    #[test]
    fn size_counts_nodes() {
        let (_, a, b, _) = syms();
        let r = ContentModel::seq(vec![
            ContentModel::sym(a),
            ContentModel::star(ContentModel::sym(b)),
        ]);
        assert_eq!(r.size(), 4);
    }
}
