//! A common abstraction over DTDs and Extended DTDs.
//!
//! The chain inference system of `qui-core` is written against this trait so
//! that the §7 extension to Extended DTDs (XML Schema / RelaxNG typing) comes
//! for free: the only difference between a DTD and an EDTD is that in an EDTD
//! several *types* may carry the same *label*, which only affects how node
//! tests select types.

use crate::symbols::Sym;
use std::collections::HashSet;

/// Schema operations needed by the static analyses.
pub trait SchemaLike {
    /// The start type `s_d`.
    fn start_type(&self) -> Sym;

    /// Total number of types, including the text type.
    fn num_types(&self) -> usize;

    /// The label of a type (`µ` in an EDTD; the identity for a DTD).
    fn type_label(&self, t: Sym) -> &str;

    /// All types whose label is `label`.
    fn types_with_label(&self, label: &str) -> Vec<Sym>;

    /// The types occurring in the content model of `t`, i.e. the `β` with
    /// `t ⇒_d β` (Definition 2.1). Empty for the text type.
    fn child_types(&self, t: Sym) -> &[Sym];

    /// The sibling order relation `<_{d(t)}` of the content model of `t`.
    fn before_pairs_of(&self, t: Sym) -> &HashSet<(Sym, Sym)>;

    /// Returns `true` if `t` can (transitively) reach itself, i.e. `t` is a
    /// vertically recursive type.
    fn is_recursive_type(&self, t: Sym) -> bool;

    /// Number of element types (excludes the text type) — the paper's `|d|`.
    fn schema_size(&self) -> usize;

    /// All element types of the schema.
    fn element_types(&self) -> Vec<Sym>;

    /// Returns `true` if the schema has at least one recursive type.
    fn is_recursive(&self) -> bool {
        self.element_types()
            .into_iter()
            .any(|t| self.is_recursive_type(t))
    }

    /// All labels of the schema's element types (the alphabet `Σ`), without
    /// duplicates.
    fn labels(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in self.element_types() {
            let l = self.type_label(t).to_string();
            if seen.insert(l.clone()) {
                out.push(l);
            }
        }
        out
    }

    /// Returns `true` if `child` occurs in the content model of `parent`
    /// (the one-step reachability `parent ⇒_d child`).
    fn is_child_type(&self, parent: Sym, child: Sym) -> bool {
        self.child_types(parent).contains(&child)
    }

    /// Returns `true` if `chain` is a chain of the schema (every adjacent
    /// pair is in `⇒_d`). The empty chain and singleton chains are chains.
    fn is_chain(&self, chain: &crate::Chain) -> bool {
        chain
            .symbols()
            .windows(2)
            .all(|w| self.is_child_type(w[0], w[1]))
    }
}
