//! Interned symbols — re-exported from `qui-xmlstore`.
//!
//! The symbol table moved into the store crate with the columnar rewrite so
//! that tag names are interned once at parse time and the store's label
//! column, the schema's content models and the CDAG all share one `Sym`
//! space. This module keeps the historical `qui_schema::symbols` paths
//! working unchanged.

pub use qui_xmlstore::{Sym, SymbolTable, TEXT_NAME, TEXT_SYM};
