//! The schema corpus: hand-written DTD fixtures of deliberately different
//! shapes plus a seeded random-schema generator, with matching seeded
//! query/update generators.
//!
//! Every analysis result in this repository was originally demonstrated
//! against exactly one schema (XMark). The corpus breaks that monoculture:
//! the differential, precision and delta-maintenance suites iterate a
//! [`Corpus`] — five fixtures (shallow-wide catalog, deep-recursive
//! treatise, attribute-heavy records, mixed-content article,
//! mutual-recursion orgchart) optionally extended with [`SchemaGen`]
//! schemas — and the `qui-traffic` simulator registers the same corpus in
//! its session registry to drive multi-tenant load over heterogeneous
//! schemas.
//!
//! Everything here is deterministic per seed: [`SchemaGen::generate`],
//! [`random_query`] and [`random_update`] derive all choices from the
//! caller's [`StdRng`], so a corpus run is replayable from its seed alone.
//!
//! Generated schemas are **terminating by construction**: the base rules
//! form a level DAG (each rule only references strictly deeper symbols,
//! bottoming out in `#PCDATA`/`EMPTY` leaves) and recursion cliques are
//! added only under `?`/`*` modifiers, so every element can derive a finite
//! document — the invariant [`generate_valid`](crate::generate_valid)
//! asserts.

use crate::dtd::Dtd;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One corpus schema: a name, a shape tag, the schema source (compact rule
/// syntax or `<!ELEMENT …>` DTD syntax) and the start symbol.
#[derive(Clone, Debug)]
pub struct CorpusSchema {
    /// Registry-friendly identifier (`catalog`, `gen-7-…`).
    pub name: String,
    /// The shape family, for reports ("shallow-wide", "deep-recursive", …).
    pub shape: &'static str,
    /// Schema source; `<!ELEMENT` declarations or the compact rule syntax.
    pub source: String,
    /// Start symbol.
    pub start: String,
}

impl CorpusSchema {
    /// Parses the schema (corpus sources are valid by construction).
    pub fn dtd(&self) -> Dtd {
        if self.source.contains("<!ELEMENT") {
            crate::parser::parse_dtd(&self.source, &self.start)
        } else {
            crate::parser::parse_compact(&self.source, &self.start)
        }
        .expect("corpus schemas parse")
    }

    /// The element labels of the schema, in symbol order — the label pool
    /// the query/update generators draw from.
    pub fn labels(&self) -> Vec<String> {
        let dtd = self.dtd();
        dtd.alphabet().map(|s| dtd.name(s).to_string()).collect()
    }
}

// ---------------------------------------------------------------------------
// Hand-written fixtures
// ---------------------------------------------------------------------------

fn fixture(name: &str, shape: &'static str, source: &str, start: &str) -> CorpusSchema {
    CorpusSchema {
        name: name.to_string(),
        shape,
        source: source.to_string(),
        start: start.to_string(),
    }
}

/// The five hand-written fixtures, in corpus order.
pub fn fixtures() -> Vec<CorpusSchema> {
    vec![
        fixture(
            "catalog",
            "shallow-wide",
            "catalog -> (product*, vendor*, promotion?) ;
             product -> (name, sku, price, stock?, blurb?, tag*) ;
             vendor -> (name, region?, rating?) ;
             promotion -> (name, price, expires?) ;
             name -> #PCDATA ; sku -> #PCDATA ; price -> #PCDATA ;
             stock -> #PCDATA ; blurb -> #PCDATA ; tag -> #PCDATA ;
             region -> #PCDATA ; rating -> #PCDATA ; expires -> #PCDATA",
            "catalog",
        ),
        fixture(
            "treatise",
            "deep-recursive",
            "treatise -> (title, section+) ;
             section -> (title, para*, note?, section*) ;
             note -> (para+) ;
             para -> (#PCDATA | emph)* ;
             emph -> #PCDATA ; title -> #PCDATA",
            "treatise",
        ),
        fixture(
            "records",
            "attribute-heavy",
            r#"<!ELEMENT records (record*)>
               <!ATTLIST records version CDATA #REQUIRED schema CDATA #IMPLIED>
               <!ELEMENT record (field*, audit?)>
               <!ATTLIST record id ID #REQUIRED owner CDATA #REQUIRED stamp CDATA #IMPLIED>
               <!ELEMENT field (#PCDATA)>
               <!ATTLIST field key CDATA #REQUIRED kind CDATA #IMPLIED>
               <!ELEMENT audit (entry*)>
               <!ELEMENT entry (#PCDATA)>
               <!ATTLIST entry at CDATA #REQUIRED who CDATA #IMPLIED>"#,
            "records",
        ),
        fixture(
            "article",
            "mixed-content",
            "article -> (title, meta?, body) ;
             meta -> (author+, date?) ;
             body -> (#PCDATA | para | list)* ;
             para -> (#PCDATA | em | strong | cite)* ;
             list -> (item+) ;
             item -> (#PCDATA | em)* ;
             em -> (#PCDATA | strong)* ;
             strong -> #PCDATA ; cite -> #PCDATA ;
             title -> #PCDATA ; author -> #PCDATA ; date -> #PCDATA",
            "article",
        ),
        fixture(
            "orgchart",
            "mutual-recursive",
            "org -> (unit*) ;
             unit -> (name, head?, team*, unit*) ;
             head -> (member) ;
             team -> (name, member*) ;
             member -> (name, reports?) ;
             reports -> (member+) ;
             name -> #PCDATA",
            "org",
        ),
    ]
}

// ---------------------------------------------------------------------------
// Seeded schema generation
// ---------------------------------------------------------------------------

/// A seeded random-schema generator. The knobs bound the *shape*:
/// `depth` levels of a rule DAG, up to `fanout` child references per rule,
/// `recursion_cliques` optional back-edges (each closes a parent↔child
/// cycle), and `alphabet` element symbols overall.
#[derive(Clone, Copy, Debug)]
pub struct SchemaGen {
    /// Levels of the base rule DAG (≥ 2; leaves live on the last level).
    pub depth: usize,
    /// Maximum child references per non-leaf rule (≥ 1).
    pub fanout: usize,
    /// Number of `?`/`*`-guarded back-edges closing recursion cliques.
    pub recursion_cliques: usize,
    /// Total element symbols (clamped to at least `depth`).
    pub alphabet: usize,
}

impl Default for SchemaGen {
    fn default() -> Self {
        SchemaGen {
            depth: 4,
            fanout: 3,
            recursion_cliques: 1,
            alphabet: 12,
        }
    }
}

impl SchemaGen {
    /// Generates one schema, deterministically per `(self, seed)`.
    pub fn generate(&self, seed: u64) -> CorpusSchema {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0AB_5EED_0DDB_A11E);
        let depth = self.depth.max(2);
        let n = self.alphabet.max(depth);
        // Symbol i lives on level i*depth/n: level 0 holds the start symbol,
        // the last level holds leaves only.
        let level = |i: usize| i * depth / n;
        let name = |i: usize| format!("e{i}");
        let mut models: Vec<String> = Vec::with_capacity(n);
        for i in 0..n {
            let l = level(i);
            if l + 1 >= depth {
                models.push(
                    if rng.random_bool(0.7) {
                        "#PCDATA"
                    } else {
                        "EMPTY"
                    }
                    .to_string(),
                );
                continue;
            }
            // Children come from strictly deeper levels, so the base rules
            // form a DAG and every symbol terminates.
            let deeper: Vec<usize> = (0..n).filter(|&j| level(j) > l).collect();
            let k = rng.random_range(1..=self.fanout.max(1)).min(deeper.len());
            let mut parts: Vec<String> = Vec::with_capacity(k);
            for _ in 0..k {
                let child = deeper[rng.random_range(0..deeper.len())];
                let modifier = ["", "?", "*", "+"][rng.random_range(0..4usize)];
                parts.push(format!("{}{}", name(child), modifier));
            }
            let model = if parts.len() >= 2 && rng.random_bool(0.3) {
                format!("({})*", parts.join(" | ").replace(['?', '*', '+'], ""))
            } else {
                format!("({})", parts.join(", "))
            };
            models.push(model);
        }
        // Recursion cliques: append an optional reference back to a
        // shallower symbol. The back-edge sits under `?`/`*`, so the
        // element still derives a finite document by taking zero copies.
        for _ in 0..self.recursion_cliques {
            let from = rng.random_range(0..n);
            let shallower: Vec<usize> = (0..n).filter(|&j| level(j) <= level(from)).collect();
            let to = shallower[rng.random_range(0..shallower.len())];
            let modifier = if rng.random_bool(0.5) { "?" } else { "*" };
            let target = format!("{}{}", name(to), modifier);
            if models[from] == "EMPTY" {
                models[from] = format!("({target})");
            } else if models[from] == "#PCDATA" {
                models[from] = format!("(#PCDATA, {target})");
            } else {
                let m = &models[from];
                models[from] = format!("({m}, {target})");
            }
        }
        let source = (0..n)
            .map(|i| format!("{} -> {}", name(i), models[i]))
            .collect::<Vec<_>>()
            .join(" ;\n");
        CorpusSchema {
            name: format!("gen-{seed}-d{depth}f{}a{n}", self.fanout.max(1)),
            shape: "generated",
            source,
            start: name(0),
        }
    }
}

// ---------------------------------------------------------------------------
// The corpus
// ---------------------------------------------------------------------------

/// An iterable set of corpus schemas: the hand-written fixtures, optionally
/// extended with seeded [`SchemaGen`] schemas of varied shape.
#[derive(Clone, Debug)]
pub struct Corpus {
    schemas: Vec<CorpusSchema>,
}

impl Corpus {
    /// The five hand-written fixtures only.
    pub fn fixtures() -> Corpus {
        Corpus {
            schemas: fixtures(),
        }
    }

    /// Fixtures plus `generated` random schemas. Shapes vary with the
    /// index (depth 3–5, fanout 2–4, 0–2 recursion cliques, alphabet
    /// 8–20), all derived from `seed` alone.
    pub fn seeded(seed: u64, generated: usize) -> Corpus {
        let mut schemas = fixtures();
        for i in 0..generated {
            let g = SchemaGen {
                depth: 3 + i % 3,
                fanout: 2 + i % 3,
                recursion_cliques: i % 3,
                alphabet: 8 + 4 * (i % 4),
            };
            schemas.push(g.generate(seed.wrapping_add(i as u64)));
        }
        Corpus { schemas }
    }

    /// Iterates the schemas in corpus order.
    pub fn iter(&self) -> std::slice::Iter<'_, CorpusSchema> {
        self.schemas.iter()
    }

    /// Number of schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the corpus is empty (it never is, but clippy insists a
    /// `len` comes with an `is_empty`).
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

impl<'a> IntoIterator for &'a Corpus {
    type Item = &'a CorpusSchema;
    type IntoIter = std::slice::Iter<'a, CorpusSchema>;
    fn into_iter(self) -> Self::IntoIter {
        self.schemas.iter()
    }
}

impl IntoIterator for Corpus {
    type Item = CorpusSchema;
    type IntoIter = std::vec::IntoIter<CorpusSchema>;
    fn into_iter(self) -> Self::IntoIter {
        self.schemas.into_iter()
    }
}

// ---------------------------------------------------------------------------
// Seeded query/update generation
// ---------------------------------------------------------------------------

/// Draws a random query over the given label pool (eight shapes mirroring
/// the differential suite's generator: descendant/child paths, parent and
/// ancestor axes, sibling steps and a FLWR body).
pub fn random_query(labels: &[String], rng: &mut StdRng) -> String {
    let l = |rng: &mut StdRng| labels[rng.random_range(0..labels.len())].clone();
    let (a, b) = (l(rng), l(rng));
    match rng.random_range(0..8usize) {
        0 => format!("//{a}"),
        1 => format!("/{a}/{b}"),
        2 => format!("//{a}//{b}"),
        3 => format!("//{a}/{b}"),
        4 => format!("//{a}/parent::node()"),
        5 => format!("//{a}/ancestor::{b}"),
        6 => format!("for $x in //{a} return $x/{b}"),
        _ => format!("//{a}/following-sibling::{b}"),
    }
}

/// Draws a random update over the given label pool (six shapes: deletes at
/// varying depth, and FLWR insert/rename/replace bodies).
pub fn random_update(start: &str, labels: &[String], rng: &mut StdRng) -> String {
    let l = |rng: &mut StdRng| labels[rng.random_range(0..labels.len())].clone();
    let (a, b) = (l(rng), l(rng));
    match rng.random_range(0..6usize) {
        0 => format!("delete //{a}"),
        1 => format!("delete //{a}//{b}"),
        2 => format!("delete /{start}/{a}"),
        3 => format!("for $x in //{a} return insert <{b}/> into $x"),
        4 => format!("for $x in //{a} return rename $x as {b}"),
        _ => format!("for $x in //{a} return replace $x with <{b}/>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genvalid::{generate_valid, GenValidConfig};
    use crate::schema_like::SchemaLike;

    #[test]
    fn fixtures_parse_and_generate_valid_documents() {
        for schema in Corpus::fixtures().iter() {
            let dtd = schema.dtd();
            assert!(dtd.size() >= 4, "{} too small", schema.name);
            for seed in 0..3u64 {
                let t = generate_valid(&dtd, &GenValidConfig::with_target(300), seed);
                assert!(
                    dtd.validate(&t).is_ok(),
                    "{} seed {seed} produced an invalid document",
                    schema.name
                );
            }
        }
    }

    #[test]
    fn fixtures_cover_the_declared_shapes() {
        let corpus = Corpus::fixtures();
        let shapes: Vec<&str> = corpus.iter().map(|s| s.shape).collect();
        assert_eq!(
            shapes,
            vec![
                "shallow-wide",
                "deep-recursive",
                "attribute-heavy",
                "mixed-content",
                "mutual-recursive"
            ]
        );
        // The recursive fixtures really are recursive; the catalog is not.
        assert!(!corpus.schemas[0].dtd().is_recursive());
        assert!(corpus.schemas[1].dtd().is_recursive());
        assert!(corpus.schemas[4].dtd().is_recursive());
    }

    #[test]
    fn schema_gen_is_deterministic_and_terminating() {
        let g = SchemaGen::default();
        let a = g.generate(7);
        let b = g.generate(7);
        assert_eq!(a.source, b.source);
        assert_ne!(a.source, g.generate(8).source);
        for seed in 0..16u64 {
            let schema = g.generate(seed);
            let dtd = schema.dtd();
            // generate_valid panics if any element cannot derive a finite
            // document — running it is the termination assertion.
            let t = generate_valid(&dtd, &GenValidConfig::with_target(200), seed);
            assert!(dtd.validate(&t).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn recursion_cliques_make_generated_schemas_recursive() {
        // With zero cliques the rule graph is a level DAG; with several,
        // some seed closes a cycle (the back-edge may target a leaf's own
        // level, so not every seed is recursive — but most are).
        let flat = SchemaGen {
            recursion_cliques: 0,
            ..SchemaGen::default()
        };
        for seed in 0..8u64 {
            assert!(!flat.generate(seed).dtd().is_recursive(), "seed {seed}");
        }
        let cyclic = SchemaGen {
            recursion_cliques: 3,
            ..SchemaGen::default()
        };
        let recursive = (0..8u64)
            .filter(|&s| cyclic.generate(s).dtd().is_recursive())
            .count();
        assert!(recursive >= 4, "only {recursive}/8 seeds recursive");
    }

    #[test]
    fn corpus_iterates_fixtures_plus_generated() {
        let corpus = Corpus::seeded(42, 3);
        assert_eq!(corpus.len(), 8);
        assert_eq!(corpus.iter().filter(|s| s.shape == "generated").count(), 3);
        // Same seed, same corpus.
        let again = Corpus::seeded(42, 3);
        for (a, b) in corpus.iter().zip(again.iter()) {
            assert_eq!(a.source, b.source);
        }
    }

    #[test]
    fn query_and_update_generators_are_deterministic() {
        let labels = Corpus::fixtures().iter().next().unwrap().labels();
        assert!(labels.len() >= 10);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(
                random_query(&labels, &mut r1),
                random_query(&labels, &mut r2)
            );
            assert_eq!(
                random_update("catalog", &labels, &mut r1),
                random_update("catalog", &labels, &mut r2)
            );
        }
    }
}
