//! Seeded generation of documents that are valid by construction.
//!
//! The experiments of §6.2 use XMark documents of 1, 10 and 100 MB. We do
//! not have the original XMark generator, so workloads generate synthetic
//! documents directly from the DTD: for every element, a word of its content
//! model is sampled, recursion is throttled by a node budget, and mandatory
//! sub-elements are always produced so that the result validates.
//!
//! Generation is written against a [`DocumentSink`] receiving start/end/text
//! events in document order, so the same sampling walk (and hence the same
//! RNG consumption) can either build an in-memory [`Tree`]
//! ([`generate_valid`]) or stream serialized XML straight to an
//! [`io::Write`] ([`generate_valid_xml`]) in `O(depth)` memory — which is
//! how the paper-scale XMark documents are produced. For a given `(dtd,
//! config, seed)` the streamed bytes parse back to exactly the tree the
//! in-memory path builds.

use crate::content::ContentModel;
use crate::dtd::Dtd;
use crate::symbols::{Sym, TEXT_SYM};
use qui_xmlstore::serializer::escape_text;
use qui_xmlstore::{NodeId, Store, Tree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};

/// Configuration for [`generate_valid`].
#[derive(Clone, Debug)]
pub struct GenValidConfig {
    /// Approximate number of nodes to generate. Generation stops *expanding*
    /// optional/repeated content once the budget is exhausted, then finishes
    /// mandatory content, so the result can overshoot slightly.
    pub target_nodes: usize,
    /// Maximum number of repetitions sampled for `*` and `+` while the
    /// budget lasts.
    pub max_repeat: usize,
    /// Probability of taking an optional branch while the budget lasts.
    pub optional_probability: f64,
    /// Maximum element depth; below it only minimal content is produced so
    /// recursive schemas cannot generate pathologically deep documents.
    pub max_depth: usize,
    /// Hard ceiling on the repetitions sampled for one `*`/`+` however large
    /// the budget. The default (2 000) keeps any single child list modest;
    /// paper-scale generation raises it in proportion to the target so
    /// multi-million-node documents do not saturate below their target.
    pub max_repeat_cap: usize,
}

impl Default for GenValidConfig {
    fn default() -> Self {
        GenValidConfig {
            target_nodes: 1_000,
            max_repeat: 4,
            optional_probability: 0.5,
            max_depth: 48,
            max_repeat_cap: 2_000,
        }
    }
}

impl GenValidConfig {
    /// A configuration targeting roughly `n` nodes.
    pub fn with_target(n: usize) -> Self {
        GenValidConfig {
            target_nodes: n,
            ..Default::default()
        }
    }
}

/// A consumer of generated document events, received in document order.
///
/// `start_element`/`end_element` calls are properly nested; `text` carries
/// the raw (unescaped) text value.
pub trait DocumentSink {
    /// An element opens.
    fn start_element(&mut self, name: &str);
    /// The innermost open element closes.
    fn end_element(&mut self, name: &str);
    /// A text node in the current element.
    fn text(&mut self, value: &str);
    /// Returns `true` once the sink can no longer accept events (e.g. a
    /// write error); the generation walk then stops early instead of
    /// producing the rest of the document into a dead sink.
    fn is_failed(&self) -> bool {
        false
    }
}

/// A sink that builds an in-memory [`Tree`].
#[derive(Default)]
struct StoreSink {
    store: Store,
    /// One child list per open element.
    stack: Vec<Vec<NodeId>>,
    root: Option<NodeId>,
}

impl StoreSink {
    fn attach(&mut self, id: NodeId) {
        match self.stack.last_mut() {
            Some(children) => children.push(id),
            None => self.root = Some(id),
        }
    }

    fn into_tree(self) -> Tree {
        let mut store = self.store;
        let root = self
            .root
            .unwrap_or_else(|| store.new_element("empty", vec![]));
        Tree::new(store, root)
    }
}

impl DocumentSink for StoreSink {
    fn start_element(&mut self, _name: &str) {
        self.stack.push(Vec::new());
    }

    fn end_element(&mut self, name: &str) {
        let children = self.stack.pop().expect("balanced events");
        let id = self.store.new_element(name, children);
        self.attach(id);
    }

    fn text(&mut self, value: &str) {
        let id = self.store.new_text(value);
        self.attach(id);
    }
}

/// A sink that streams serialized XML to a writer in `O(depth)` memory,
/// producing exactly the bytes `qui_xmlstore::serialize_tree` would produce
/// for the equivalent in-memory tree (`<a/>` for empty elements, predefined
/// entities escaped).
struct XmlWriterSink<W: Write> {
    writer: W,
    /// The innermost start tag has been emitted as `<name` and still needs
    /// `>` (or `/>` if the element stays empty).
    open_pending: bool,
    nodes: u64,
    bytes: u64,
    error: Option<io::Error>,
}

impl<W: Write> XmlWriterSink<W> {
    fn new(writer: W) -> Self {
        XmlWriterSink {
            writer,
            open_pending: false,
            nodes: 0,
            bytes: 0,
            error: None,
        }
    }

    fn emit(&mut self, s: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(s.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.bytes += s.len() as u64;
    }

    fn close_pending(&mut self) {
        if self.open_pending {
            self.emit(">");
            self.open_pending = false;
        }
    }

    fn finish(mut self) -> io::Result<GenXmlStats> {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok(GenXmlStats {
                nodes: self.nodes,
                bytes: self.bytes,
            }),
        }
    }
}

impl<W: Write> DocumentSink for XmlWriterSink<W> {
    fn start_element(&mut self, name: &str) {
        self.close_pending();
        self.nodes += 1;
        self.emit("<");
        self.emit(name);
        self.open_pending = true;
    }

    fn end_element(&mut self, name: &str) {
        if self.open_pending {
            self.emit("/>");
            self.open_pending = false;
        } else {
            self.emit("</");
            self.emit(name);
            self.emit(">");
        }
    }

    fn text(&mut self, value: &str) {
        self.close_pending();
        self.nodes += 1;
        self.emit(&escape_text(value));
    }

    fn is_failed(&self) -> bool {
        self.error.is_some()
    }
}

/// What [`generate_valid_xml`] produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenXmlStats {
    /// Number of element and text nodes in the document.
    pub nodes: u64,
    /// Number of XML bytes written.
    pub bytes: u64,
}

/// Generates a document valid w.r.t. `dtd`, deterministically from `seed`.
///
/// # Panics
/// Panics if the DTD has an element type from which no finite document can
/// be derived (e.g. `a -> a`), which no meaningful DTD has.
pub fn generate_valid(dtd: &Dtd, config: &GenValidConfig, seed: u64) -> Tree {
    let mut sink = StoreSink::default();
    generate_valid_into(dtd, config, seed, &mut sink);
    sink.into_tree()
}

/// Streams the serialized XML of the same document [`generate_valid`] would
/// build (byte-identical to serializing it) directly to `writer`, without
/// ever holding more than the current element path in memory. This is how
/// paper-scale (multi-million-node) XMark documents are produced.
pub fn generate_valid_xml<W: Write>(
    dtd: &Dtd,
    config: &GenValidConfig,
    seed: u64,
    writer: W,
) -> io::Result<GenXmlStats> {
    let mut sink = XmlWriterSink::new(writer);
    generate_valid_into(dtd, config, seed, &mut sink);
    sink.finish()
}

/// Runs the generation walk against an arbitrary [`DocumentSink`].
pub fn generate_valid_into<S: DocumentSink>(
    dtd: &Dtd,
    config: &GenValidConfig,
    seed: u64,
    sink: &mut S,
) {
    let gen = Generator::new(dtd, config.clone(), seed);
    gen.generate(sink)
}

struct Generator<'a> {
    dtd: &'a Dtd,
    config: GenValidConfig,
    rng: StdRng,
    /// Symbols from which a finite tree can be derived.
    terminating: HashSet<Sym>,
    /// A minimal children word for each symbol (used once the budget is
    /// exhausted to close the document quickly).
    minimal_word: HashMap<Sym, Vec<Sym>>,
    nodes_made: usize,
    text_counter: usize,
}

impl<'a> Generator<'a> {
    fn new(dtd: &'a Dtd, config: GenValidConfig, seed: u64) -> Self {
        let (terminating, minimal_word) = compute_terminating(dtd);
        Generator {
            dtd,
            config,
            rng: StdRng::seed_from_u64(seed),
            terminating,
            minimal_word,
            nodes_made: 0,
            text_counter: 0,
        }
    }

    fn generate<S: DocumentSink>(mut self, sink: &mut S) {
        let target = self.config.target_nodes.max(1);
        self.gen_element(sink, self.dtd.start(), 0, target);
    }

    /// Generates the subtree for `sym` using at most roughly `budget` nodes,
    /// emitting it to the sink in document order. The budget is divided
    /// equally among the element's children so that every document region
    /// (and not just the first repeated section in document order) receives
    /// a share of the target size.
    fn gen_element<S: DocumentSink>(
        &mut self,
        sink: &mut S,
        sym: Sym,
        depth: usize,
        budget: usize,
    ) {
        if sink.is_failed() {
            return;
        }
        self.nodes_made += 1;
        if sym == TEXT_SYM {
            self.text_counter += 1;
            sink.text(&format!("txt{}", self.text_counter));
            return;
        }
        let word = if budget > 1 && depth < self.config.max_depth {
            self.sample_word(&self.dtd.content(sym).clone(), budget)
        } else {
            self.minimal_word.get(&sym).cloned().unwrap_or_default()
        };
        let child_budget = budget.saturating_sub(1) / word.len().max(1);
        let name = self.dtd.name(sym).to_string();
        sink.start_element(&name);
        for child_sym in word {
            self.gen_element(sink, child_sym, depth + 1, child_budget);
        }
        sink.end_element(&name);
    }

    /// Samples a word of `L(r)`, restricted to terminating symbols when
    /// alternatives exist (which they always do for meaningful DTDs).
    fn sample_word(&mut self, r: &ContentModel, budget: usize) -> Vec<Sym> {
        let mut out = Vec::new();
        self.sample_into(r, budget, &mut out);
        out
    }

    /// Upper bound on the number of repetitions for `*`/`+` under a budget.
    fn repeat_cap(&self, budget: usize) -> usize {
        self.config
            .max_repeat
            .max((budget / 8).min(self.config.max_repeat_cap))
    }

    fn sample_into(&mut self, r: &ContentModel, budget: usize, out: &mut Vec<Sym>) {
        match r {
            ContentModel::Epsilon => {}
            ContentModel::Symbol(s) => out.push(*s),
            ContentModel::Seq(rs) => {
                let share = budget / rs.len().max(1);
                for sub in rs {
                    self.sample_into(sub, share.max(1), out);
                }
            }
            ContentModel::Alt(rs) => {
                // Prefer terminating branches; among them pick uniformly.
                let candidates: Vec<&ContentModel> = rs
                    .iter()
                    .filter(|sub| self.branch_terminates(sub))
                    .collect();
                let pick = if candidates.is_empty() {
                    &rs[self.rng.random_range(0..rs.len())]
                } else {
                    candidates[self.rng.random_range(0..candidates.len())]
                };
                let pick = pick.clone();
                self.sample_into(&pick, budget, out);
            }
            ContentModel::Star(sub) => {
                let n = if budget > 1 {
                    self.rng.random_range(0..=self.repeat_cap(budget))
                } else {
                    0
                };
                for _ in 0..n {
                    self.sample_into(&sub.clone(), budget / n.max(1), out);
                }
            }
            ContentModel::Plus(sub) => {
                let n = if budget > 1 {
                    self.rng.random_range(1..=self.repeat_cap(budget).max(1))
                } else {
                    1
                };
                for _ in 0..n {
                    self.sample_into(&sub.clone(), budget / n.max(1), out);
                }
            }
            ContentModel::Opt(sub) => {
                let take = budget > 1 && self.rng.random_bool(self.config.optional_probability);
                if take {
                    self.sample_into(&sub.clone(), budget, out);
                }
            }
        }
    }

    fn branch_terminates(&self, r: &ContentModel) -> bool {
        r.symbols()
            .iter()
            .all(|s| *s == TEXT_SYM || self.terminating.contains(s))
    }
}

/// Computes the set of symbols from which a finite tree can be derived, plus
/// a minimal children word witnessing it, by a least fixpoint.
fn compute_terminating(dtd: &Dtd) -> (HashSet<Sym>, HashMap<Sym, Vec<Sym>>) {
    let mut terminating: HashSet<Sym> = HashSet::new();
    terminating.insert(TEXT_SYM);
    let mut minimal: HashMap<Sym, Vec<Sym>> = HashMap::new();
    minimal.insert(TEXT_SYM, Vec::new());
    loop {
        let mut changed = false;
        for sym in dtd.alphabet() {
            if terminating.contains(&sym) {
                continue;
            }
            if let Some(word) = minimal_word(dtd.content(sym), &terminating) {
                terminating.insert(sym);
                minimal.insert(sym, word);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for sym in dtd.alphabet() {
        assert!(
            terminating.contains(&sym),
            "element <{}> cannot derive any finite document",
            dtd.name(sym)
        );
    }
    (terminating, minimal)
}

/// Returns a shortest-effort word of `L(r)` that only uses `allowed` symbols,
/// or `None` if no such word exists.
fn minimal_word(r: &ContentModel, allowed: &HashSet<Sym>) -> Option<Vec<Sym>> {
    match r {
        ContentModel::Epsilon => Some(Vec::new()),
        ContentModel::Symbol(s) => {
            if allowed.contains(s) {
                Some(vec![*s])
            } else {
                None
            }
        }
        ContentModel::Seq(rs) => {
            let mut out = Vec::new();
            for sub in rs {
                out.extend(minimal_word(sub, allowed)?);
            }
            Some(out)
        }
        ContentModel::Alt(rs) => rs
            .iter()
            .filter_map(|sub| minimal_word(sub, allowed))
            .min_by_key(|w| w.len()),
        ContentModel::Star(_) | ContentModel::Opt(_) => Some(Vec::new()),
        ContentModel::Plus(sub) => minimal_word(sub, allowed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bib_dtd() -> Dtd {
        Dtd::builder()
            .rule("bib", "book*")
            .rule("book", "(title, author*, price?)")
            .rule("title", "#PCDATA")
            .rule("author", "(first?, last)")
            .rule("first", "#PCDATA")
            .rule("last", "#PCDATA")
            .rule("price", "#PCDATA")
            .build("bib")
            .unwrap()
    }

    #[test]
    fn generated_documents_validate() {
        let d = bib_dtd();
        for seed in 0..20 {
            let t = generate_valid(&d, &GenValidConfig::with_target(200), seed);
            assert!(d.validate(&t).is_ok(), "seed {seed} produced invalid doc");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = bib_dtd();
        let t1 = generate_valid(&d, &GenValidConfig::with_target(100), 3);
        let t2 = generate_valid(&d, &GenValidConfig::with_target(100), 3);
        assert!(t1.value_equiv(&t2));
    }

    #[test]
    fn target_size_scales_document() {
        let d = bib_dtd();
        let small = generate_valid(&d, &GenValidConfig::with_target(50), 1);
        let large = generate_valid(&d, &GenValidConfig::with_target(5_000), 1);
        assert!(
            large.size() > small.size() * 5,
            "{} vs {}",
            large.size(),
            small.size()
        );
    }

    #[test]
    fn recursive_dtds_terminate() {
        // d1 of §5 — mutually recursive a/b/c/e/f.
        let d = Dtd::builder()
            .rule("r", "a")
            .rule("a", "(b, c, e)*")
            .rule("b", "f")
            .rule("c", "f")
            .rule("e", "f")
            .rule("f", "(a, g)")
            .rule("g", "EMPTY")
            .build("r")
            .unwrap();
        for seed in 0..10 {
            let t = generate_valid(&d, &GenValidConfig::with_target(500), seed);
            assert!(d.validate(&t).is_ok(), "seed {seed}");
            assert!(t.size() < 1_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "cannot derive any finite document")]
    fn non_terminating_schema_panics() {
        let d = Dtd::parse_compact("a -> a", "a").unwrap();
        let _ = generate_valid(&d, &GenValidConfig::default(), 0);
    }

    #[test]
    fn streamed_xml_is_byte_identical_to_serializing_the_tree() {
        let d = bib_dtd();
        for seed in [0, 7, 99] {
            let cfg = GenValidConfig::with_target(300);
            let tree = generate_valid(&d, &cfg, seed);
            let mut bytes = Vec::new();
            let stats = generate_valid_xml(&d, &cfg, seed, &mut bytes).unwrap();
            assert_eq!(
                String::from_utf8_lossy(&bytes),
                qui_xmlstore::serialize_tree(&tree),
                "seed {seed}"
            );
            assert_eq!(stats.nodes as usize, tree.size(), "seed {seed}");
            assert_eq!(stats.bytes as usize, bytes.len());
        }
    }

    #[test]
    fn streamed_xml_parses_back_to_the_generated_tree() {
        let d = bib_dtd();
        let cfg = GenValidConfig::with_target(500);
        let tree = generate_valid(&d, &cfg, 11);
        let mut bytes = Vec::new();
        generate_valid_xml(&d, &cfg, 11, &mut bytes).unwrap();
        let reparsed = qui_xmlstore::parse_xml_reader(std::io::Cursor::new(bytes)).unwrap();
        assert!(tree.value_equiv(&reparsed));
        assert!(d.validate(&reparsed).is_ok());
    }
}
