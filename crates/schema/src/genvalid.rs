//! Seeded generation of documents that are valid by construction.
//!
//! The experiments of §6.2 use XMark documents of 1, 10 and 100 MB. We do
//! not have the original XMark generator, so workloads generate synthetic
//! documents directly from the DTD: for every element, a word of its content
//! model is sampled, recursion is throttled by a node budget, and mandatory
//! sub-elements are always produced so that the result validates.

use crate::content::ContentModel;
use crate::dtd::Dtd;
use crate::symbols::{Sym, TEXT_SYM};
use qui_xmlstore::{NodeId, Store, Tree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Configuration for [`generate_valid`].
#[derive(Clone, Debug)]
pub struct GenValidConfig {
    /// Approximate number of nodes to generate. Generation stops *expanding*
    /// optional/repeated content once the budget is exhausted, then finishes
    /// mandatory content, so the result can overshoot slightly.
    pub target_nodes: usize,
    /// Maximum number of repetitions sampled for `*` and `+` while the
    /// budget lasts.
    pub max_repeat: usize,
    /// Probability of taking an optional branch while the budget lasts.
    pub optional_probability: f64,
    /// Maximum element depth; below it only minimal content is produced so
    /// recursive schemas cannot generate pathologically deep documents.
    pub max_depth: usize,
}

impl Default for GenValidConfig {
    fn default() -> Self {
        GenValidConfig {
            target_nodes: 1_000,
            max_repeat: 4,
            optional_probability: 0.5,
            max_depth: 48,
        }
    }
}

impl GenValidConfig {
    /// A configuration targeting roughly `n` nodes.
    pub fn with_target(n: usize) -> Self {
        GenValidConfig {
            target_nodes: n,
            ..Default::default()
        }
    }
}

/// Generates a document valid w.r.t. `dtd`, deterministically from `seed`.
///
/// # Panics
/// Panics if the DTD has an element type from which no finite document can
/// be derived (e.g. `a -> a`), which no meaningful DTD has.
pub fn generate_valid(dtd: &Dtd, config: &GenValidConfig, seed: u64) -> Tree {
    let gen = Generator::new(dtd, config.clone(), seed);
    gen.generate()
}

struct Generator<'a> {
    dtd: &'a Dtd,
    config: GenValidConfig,
    rng: StdRng,
    /// Symbols from which a finite tree can be derived.
    terminating: HashSet<Sym>,
    /// A minimal children word for each symbol (used once the budget is
    /// exhausted to close the document quickly).
    minimal_word: HashMap<Sym, Vec<Sym>>,
    nodes_made: usize,
    text_counter: usize,
}

impl<'a> Generator<'a> {
    fn new(dtd: &'a Dtd, config: GenValidConfig, seed: u64) -> Self {
        let (terminating, minimal_word) = compute_terminating(dtd);
        Generator {
            dtd,
            config,
            rng: StdRng::seed_from_u64(seed),
            terminating,
            minimal_word,
            nodes_made: 0,
            text_counter: 0,
        }
    }

    fn generate(mut self) -> Tree {
        let mut store = Store::new();
        let target = self.config.target_nodes.max(1);
        let root = self.gen_element(&mut store, self.dtd.start(), 0, target);
        Tree::new(store, root)
    }

    /// Generates the subtree for `sym` using at most roughly `budget` nodes.
    /// The budget is divided equally among the element's children so that
    /// every document region (and not just the first repeated section in
    /// document order) receives a share of the target size.
    fn gen_element(&mut self, store: &mut Store, sym: Sym, depth: usize, budget: usize) -> NodeId {
        self.nodes_made += 1;
        if sym == TEXT_SYM {
            self.text_counter += 1;
            return store.new_text(format!("txt{}", self.text_counter));
        }
        let word = if budget > 1 && depth < self.config.max_depth {
            self.sample_word(&self.dtd.content(sym).clone(), budget)
        } else {
            self.minimal_word.get(&sym).cloned().unwrap_or_default()
        };
        let child_budget = budget.saturating_sub(1) / word.len().max(1);
        let children: Vec<NodeId> = word
            .into_iter()
            .map(|child_sym| self.gen_element(store, child_sym, depth + 1, child_budget))
            .collect();
        store.new_element(self.dtd.name(sym), children)
    }

    /// Samples a word of `L(r)`, restricted to terminating symbols when
    /// alternatives exist (which they always do for meaningful DTDs).
    fn sample_word(&mut self, r: &ContentModel, budget: usize) -> Vec<Sym> {
        let mut out = Vec::new();
        self.sample_into(r, budget, &mut out);
        out
    }

    /// Upper bound on the number of repetitions for `*`/`+` under a budget.
    fn repeat_cap(&self, budget: usize) -> usize {
        self.config.max_repeat.max((budget / 8).min(2_000))
    }

    fn sample_into(&mut self, r: &ContentModel, budget: usize, out: &mut Vec<Sym>) {
        match r {
            ContentModel::Epsilon => {}
            ContentModel::Symbol(s) => out.push(*s),
            ContentModel::Seq(rs) => {
                let share = budget / rs.len().max(1);
                for sub in rs {
                    self.sample_into(sub, share.max(1), out);
                }
            }
            ContentModel::Alt(rs) => {
                // Prefer terminating branches; among them pick uniformly.
                let candidates: Vec<&ContentModel> = rs
                    .iter()
                    .filter(|sub| self.branch_terminates(sub))
                    .collect();
                let pick = if candidates.is_empty() {
                    &rs[self.rng.random_range(0..rs.len())]
                } else {
                    candidates[self.rng.random_range(0..candidates.len())]
                };
                let pick = pick.clone();
                self.sample_into(&pick, budget, out);
            }
            ContentModel::Star(sub) => {
                let n = if budget > 1 {
                    self.rng.random_range(0..=self.repeat_cap(budget))
                } else {
                    0
                };
                for _ in 0..n {
                    self.sample_into(&sub.clone(), budget / n.max(1), out);
                }
            }
            ContentModel::Plus(sub) => {
                let n = if budget > 1 {
                    self.rng.random_range(1..=self.repeat_cap(budget).max(1))
                } else {
                    1
                };
                for _ in 0..n {
                    self.sample_into(&sub.clone(), budget / n.max(1), out);
                }
            }
            ContentModel::Opt(sub) => {
                let take = budget > 1 && self.rng.random_bool(self.config.optional_probability);
                if take {
                    self.sample_into(&sub.clone(), budget, out);
                }
            }
        }
    }

    fn branch_terminates(&self, r: &ContentModel) -> bool {
        r.symbols()
            .iter()
            .all(|s| *s == TEXT_SYM || self.terminating.contains(s))
    }
}

/// Computes the set of symbols from which a finite tree can be derived, plus
/// a minimal children word witnessing it, by a least fixpoint.
fn compute_terminating(dtd: &Dtd) -> (HashSet<Sym>, HashMap<Sym, Vec<Sym>>) {
    let mut terminating: HashSet<Sym> = HashSet::new();
    terminating.insert(TEXT_SYM);
    let mut minimal: HashMap<Sym, Vec<Sym>> = HashMap::new();
    minimal.insert(TEXT_SYM, Vec::new());
    loop {
        let mut changed = false;
        for sym in dtd.alphabet() {
            if terminating.contains(&sym) {
                continue;
            }
            if let Some(word) = minimal_word(dtd.content(sym), &terminating) {
                terminating.insert(sym);
                minimal.insert(sym, word);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for sym in dtd.alphabet() {
        assert!(
            terminating.contains(&sym),
            "element <{}> cannot derive any finite document",
            dtd.name(sym)
        );
    }
    (terminating, minimal)
}

/// Returns a shortest-effort word of `L(r)` that only uses `allowed` symbols,
/// or `None` if no such word exists.
fn minimal_word(r: &ContentModel, allowed: &HashSet<Sym>) -> Option<Vec<Sym>> {
    match r {
        ContentModel::Epsilon => Some(Vec::new()),
        ContentModel::Symbol(s) => {
            if allowed.contains(s) {
                Some(vec![*s])
            } else {
                None
            }
        }
        ContentModel::Seq(rs) => {
            let mut out = Vec::new();
            for sub in rs {
                out.extend(minimal_word(sub, allowed)?);
            }
            Some(out)
        }
        ContentModel::Alt(rs) => rs
            .iter()
            .filter_map(|sub| minimal_word(sub, allowed))
            .min_by_key(|w| w.len()),
        ContentModel::Star(_) | ContentModel::Opt(_) => Some(Vec::new()),
        ContentModel::Plus(sub) => minimal_word(sub, allowed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bib_dtd() -> Dtd {
        Dtd::builder()
            .rule("bib", "book*")
            .rule("book", "(title, author*, price?)")
            .rule("title", "#PCDATA")
            .rule("author", "(first?, last)")
            .rule("first", "#PCDATA")
            .rule("last", "#PCDATA")
            .rule("price", "#PCDATA")
            .build("bib")
            .unwrap()
    }

    #[test]
    fn generated_documents_validate() {
        let d = bib_dtd();
        for seed in 0..20 {
            let t = generate_valid(&d, &GenValidConfig::with_target(200), seed);
            assert!(d.validate(&t).is_ok(), "seed {seed} produced invalid doc");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = bib_dtd();
        let t1 = generate_valid(&d, &GenValidConfig::with_target(100), 3);
        let t2 = generate_valid(&d, &GenValidConfig::with_target(100), 3);
        assert!(t1.value_equiv(&t2));
    }

    #[test]
    fn target_size_scales_document() {
        let d = bib_dtd();
        let small = generate_valid(&d, &GenValidConfig::with_target(50), 1);
        let large = generate_valid(&d, &GenValidConfig::with_target(5_000), 1);
        assert!(
            large.size() > small.size() * 5,
            "{} vs {}",
            large.size(),
            small.size()
        );
    }

    #[test]
    fn recursive_dtds_terminate() {
        // d1 of §5 — mutually recursive a/b/c/e/f.
        let d = Dtd::builder()
            .rule("r", "a")
            .rule("a", "(b, c, e)*")
            .rule("b", "f")
            .rule("c", "f")
            .rule("e", "f")
            .rule("f", "(a, g)")
            .rule("g", "EMPTY")
            .build("r")
            .unwrap();
        for seed in 0..10 {
            let t = generate_valid(&d, &GenValidConfig::with_target(500), seed);
            assert!(d.validate(&t).is_ok(), "seed {seed}");
            assert!(t.size() < 1_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "cannot derive any finite document")]
    fn non_terminating_schema_panics() {
        let d = Dtd::parse_compact("a -> a", "a").unwrap();
        let _ = generate_valid(&d, &GenValidConfig::default(), 0);
    }
}
