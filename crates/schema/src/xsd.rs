//! An XML Schema (XSD) frontend producing Extended DTDs.
//!
//! §7 of the paper extends the analysis from DTDs to Extended DTDs precisely
//! because EDTDs "capture XML Schema and RelaxNG types". This module closes
//! the remaining gap for users whose schemas are written in XSD: it parses a
//! pragmatic subset of XML Schema into an [`Edtd`], after which the whole
//! chain analysis applies unchanged.
//!
//! Supported subset (the fragment commonly used for document-centric
//! schemas):
//!
//! * global `xs:element` declarations with a named `type`, an inline
//!   `xs:complexType`, or a simple (text) type;
//! * named and anonymous `xs:complexType`s with `xs:sequence` / `xs:choice`
//!   particles, arbitrarily nested, `minOccurs` / `maxOccurs`
//!   (`0`, `1`, `unbounded`; other bounds are approximated), `mixed="true"`,
//!   and `xs:attribute` declarations (`use="required"` or optional);
//! * local element declarations and `ref`s to global ones;
//! * built-in simple types (`xs:string`, `xs:integer`, …), all mapped to
//!   text content.
//!
//! Two element declarations with the same name but different content models
//! become two *types* with the same *label* — exactly the situation EDTDs
//! exist for. Namespaces are handled syntactically: any prefix (or none) is
//! accepted for the XML Schema vocabulary, and target-namespace prefixes on
//! instance names are ignored.
//!
//! Unsupported constructs (substitution groups, `xs:all`, identity
//! constraints, facets, imports) are rejected with an error rather than
//! silently mis-modelled.

use crate::edtd::Edtd;
use crate::parser::SchemaParseError;
use qui_xmlstore::{parse_xml_keep_attributes, NodeId, Store, Tree};
use std::collections::HashMap;
use std::fmt;

/// An error produced while translating an XSD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XsdError {
    /// Human-readable description.
    pub message: String,
}

impl XsdError {
    fn new(msg: impl Into<String>) -> Self {
        XsdError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for XsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XSD error: {}", self.message)
    }
}

impl std::error::Error for XsdError {}

impl From<SchemaParseError> for XsdError {
    fn from(e: SchemaParseError) -> Self {
        XsdError::new(format!("generated type rules failed to parse: {e}"))
    }
}

impl From<qui_xmlstore::ParseError> for XsdError {
    fn from(e: qui_xmlstore::ParseError) -> Self {
        XsdError::new(format!("schema document is not well-formed XML: {e}"))
    }
}

/// Parses an XSD document into an [`Edtd`], using the first global element
/// declaration as the document root.
pub fn parse_xsd(src: &str) -> Result<Edtd, XsdError> {
    Translator::run(src, None)
}

/// Parses an XSD document into an [`Edtd`] rooted at the named global
/// element.
pub fn parse_xsd_with_root(src: &str, root_element: &str) -> Result<Edtd, XsdError> {
    Translator::run(src, Some(root_element))
}

/// Identity of a type definition, used to share types between identical
/// declarations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum TypeKey {
    /// `<xs:element name="e" type="T"/>` with `T` a named complex type.
    Named(String, String),
    /// An inline anonymous complex type (identified by its node).
    Anonymous(String, NodeId),
    /// Text-only content (built-in simple types, or no type at all).
    Simple(String),
}

struct Translator {
    tree: Tree,
    /// Global complex types by name.
    complex_types: HashMap<String, NodeId>,
    /// Global element declarations by name.
    global_elements: HashMap<String, NodeId>,
    /// Memo: type key → generated type name.
    assigned: HashMap<TypeKey, String>,
    /// Per-label counter for `label#i` type names.
    counters: HashMap<String, usize>,
    /// Generated rules `type -> content`.
    rules: Vec<(String, String)>,
    /// Attribute types that need a `#PCDATA?` rule.
    attr_types: Vec<String>,
}

impl Translator {
    fn run(src: &str, root: Option<&str>) -> Result<Edtd, XsdError> {
        let tree = parse_xml_keep_attributes(src)?;
        if local_name(tag_of(&tree.store, tree.root)) != "schema" {
            return Err(XsdError::new("document element is not xs:schema"));
        }
        let mut t = Translator {
            tree,
            complex_types: HashMap::new(),
            global_elements: HashMap::new(),
            assigned: HashMap::new(),
            counters: HashMap::new(),
            rules: Vec::new(),
            attr_types: Vec::new(),
        };
        t.index_globals()?;
        let root_name = match root {
            Some(name) => name.to_string(),
            None => t
                .first_global_element()
                .ok_or_else(|| XsdError::new("schema declares no global element"))?,
        };
        let root_decl = *t
            .global_elements
            .get(&root_name)
            .ok_or_else(|| XsdError::new(format!("no global element named '{root_name}'")))?;
        let root_type = t.type_of_element(root_decl)?;
        for a in std::mem::take(&mut t.attr_types) {
            t.rules.push((a, "#PCDATA?".to_string()));
        }
        let compact = t
            .rules
            .iter()
            .map(|(n, c)| format!("{n} -> {c}"))
            .collect::<Vec<_>>()
            .join(" ;\n");
        let types = crate::Dtd::parse_compact(&compact, &root_type)?;
        Ok(Edtd::with_indexed_types(types))
    }

    // ------------------------------------------------------------ indexing

    fn index_globals(&mut self) -> Result<(), XsdError> {
        let root = self.tree.root;
        let children: Vec<NodeId> = self.tree.store.children(root).to_vec();
        for child in children {
            if !self.tree.store.is_element(child) {
                continue;
            }
            match local_name(tag_of(&self.tree.store, child)) {
                "element" => {
                    let name = self
                        .attr(child, "name")
                        .ok_or_else(|| XsdError::new("global xs:element without a name"))?;
                    self.global_elements.insert(name, child);
                }
                "complexType" => {
                    let name = self
                        .attr(child, "name")
                        .ok_or_else(|| XsdError::new("global xs:complexType without a name"))?;
                    self.complex_types.insert(name, child);
                }
                "simpleType" | "annotation" | "" => {}
                other if other.starts_with('@') => {}
                other
                @ ("import" | "include" | "redefine" | "group" | "attributeGroup" | "all") => {
                    return Err(XsdError::new(format!("unsupported construct xs:{other}")));
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn first_global_element(&self) -> Option<String> {
        let root = self.tree.root;
        for child in self.tree.store.children(root) {
            if self.tree.store.is_element(child)
                && local_name(tag_of(&self.tree.store, child)) == "element"
            {
                return self.attr(child, "name");
            }
        }
        None
    }

    // ----------------------------------------------------------- elements

    /// Returns the generated type name for an element declaration node,
    /// creating the type (and its rule) on first use.
    fn type_of_element(&mut self, decl: NodeId) -> Result<String, XsdError> {
        // `ref="name"` points at a global declaration.
        if let Some(target) = self.attr(decl, "ref") {
            let target = strip_prefix(&target);
            let global = *self
                .global_elements
                .get(target)
                .ok_or_else(|| XsdError::new(format!("unresolved element ref '{target}'")))?;
            return self.type_of_element(global);
        }
        let label = self
            .attr(decl, "name")
            .ok_or_else(|| XsdError::new("xs:element without name or ref"))?;
        let key = match (self.attr(decl, "type"), self.inline_complex_type(decl)) {
            (Some(ty), _) => {
                let ty = strip_prefix(&ty).to_string();
                if self.complex_types.contains_key(&ty) {
                    TypeKey::Named(label.clone(), ty)
                } else {
                    // Built-in simple type (xs:string, xs:integer, …).
                    TypeKey::Simple(label.clone())
                }
            }
            (None, Some(anon)) => TypeKey::Anonymous(label.clone(), anon),
            (None, None) => TypeKey::Simple(label.clone()),
        };
        if let Some(existing) = self.assigned.get(&key) {
            return Ok(existing.clone());
        }
        let type_name = self.fresh_type_name(&label);
        self.assigned.insert(key.clone(), type_name.clone());
        let content = match &key {
            TypeKey::Simple(_) => "#PCDATA?".to_string(),
            TypeKey::Named(_, ty) => {
                let node = self.complex_types[ty];
                self.complex_type_content(node)?
            }
            TypeKey::Anonymous(_, node) => self.complex_type_content(*node)?,
        };
        self.rules.push((type_name.clone(), content));
        Ok(type_name)
    }

    fn fresh_type_name(&mut self, label: &str) -> String {
        let counter = self.counters.entry(label.to_string()).or_insert(0);
        *counter += 1;
        format!("{label}#{counter}")
    }

    fn inline_complex_type(&self, decl: NodeId) -> Option<NodeId> {
        self.tree
            .store
            .children(decl)
            .iter()
            .copied()
            .find(|&c| local_name(tag_of(&self.tree.store, c)) == "complexType")
    }

    // ------------------------------------------------------ complex types

    /// Builds the compact content-model string of a complex type node.
    fn complex_type_content(&mut self, ctype: NodeId) -> Result<String, XsdError> {
        let mixed = self
            .attr(ctype, "mixed")
            .map(|v| v == "true" || v == "1")
            .unwrap_or(false);
        let mut attrs: Vec<String> = Vec::new();
        let mut particle: Option<String> = None;
        let mut particle_children: Vec<String> = Vec::new();
        let children: Vec<NodeId> = self.tree.store.children(ctype).to_vec();
        for child in children {
            if !self.tree.store.is_element(child) {
                continue;
            }
            match local_name(tag_of(&self.tree.store, child)) {
                "sequence" | "choice" => {
                    let (body, names) = self.particle_content(child)?;
                    particle_children = names;
                    particle = Some(body);
                }
                "attribute" => attrs.push(self.attribute_factor(child)?),
                "all" => return Err(XsdError::new("xs:all is not supported")),
                "complexContent" | "simpleContent" => {
                    return Err(XsdError::new(
                        "xs:complexContent / xs:simpleContent are not supported",
                    ))
                }
                _ => {}
            }
        }
        let body = if mixed {
            let mut alts = vec!["#PCDATA".to_string()];
            alts.extend(particle_children);
            format!("({})*", alts.join(" | "))
        } else {
            particle.unwrap_or_else(|| "EMPTY".to_string())
        };
        Ok(if attrs.is_empty() {
            body
        } else if body == "EMPTY" {
            attrs.join(", ")
        } else {
            format!("{}, ({})", attrs.join(", "), body)
        })
    }

    /// Builds the content of an `xs:sequence` / `xs:choice` node, returning
    /// the rendered expression and the list of child type names (used for
    /// mixed content).
    fn particle_content(&mut self, node: NodeId) -> Result<(String, Vec<String>), XsdError> {
        let kind = local_name(tag_of(&self.tree.store, node)).to_string();
        let mut parts: Vec<String> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let children: Vec<NodeId> = self.tree.store.children(node).to_vec();
        for child in children {
            if !self.tree.store.is_element(child) {
                continue;
            }
            let rendered = match local_name(tag_of(&self.tree.store, child)) {
                "element" => {
                    let ty = self.type_of_element(child)?;
                    names.push(ty.clone());
                    occurs(
                        ty,
                        self.attr(child, "minOccurs"),
                        self.attr(child, "maxOccurs"),
                    )
                }
                "sequence" | "choice" => {
                    let (inner, inner_names) = self.particle_content(child)?;
                    names.extend(inner_names);
                    occurs(
                        format!("({inner})"),
                        self.attr(child, "minOccurs"),
                        self.attr(child, "maxOccurs"),
                    )
                }
                "any" => {
                    return Err(XsdError::new("xs:any wildcards are not supported"));
                }
                _ => continue,
            };
            parts.push(rendered);
        }
        if parts.is_empty() {
            return Ok(("EMPTY".to_string(), names));
        }
        let joined = match kind.as_str() {
            "choice" => format!("({})", parts.join(" | ")),
            _ => format!("({})", parts.join(", ")),
        };
        let wrapped = occurs(
            joined,
            self.attr(node, "minOccurs"),
            self.attr(node, "maxOccurs"),
        );
        Ok((wrapped, names))
    }

    fn attribute_factor(&mut self, node: NodeId) -> Result<String, XsdError> {
        let name = self
            .attr(node, "name")
            .ok_or_else(|| XsdError::new("xs:attribute without a name"))?;
        let required = self.attr(node, "use").as_deref() == Some("required");
        let sym = format!("@{name}");
        if !self.attr_types.contains(&sym) {
            self.attr_types.push(sym.clone());
        }
        Ok(if required { sym } else { format!("{sym}?") })
    }

    // ----------------------------------------------------------- utilities

    /// Reads an attribute of an XSD node through the `@child` encoding.
    fn attr(&self, node: NodeId, name: &str) -> Option<String> {
        let want = format!("@{name}");
        for child in self.tree.store.children(node) {
            if self.tree.store.tag(child) == Some(want.as_str()) {
                let value: String = self
                    .tree
                    .store
                    .children(child)
                    .iter()
                    .filter_map(|&c| self.tree.store.text_value(c))
                    .collect();
                return Some(value);
            }
        }
        None
    }
}

fn tag_of(store: &Store, node: NodeId) -> &str {
    store.tag(node).unwrap_or("")
}

/// The local part of a possibly prefixed name (`xs:element` → `element`).
fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Strips a namespace prefix from a QName value (`tns:book` → `book`).
fn strip_prefix(name: &str) -> &str {
    local_name(name)
}

/// Applies minOccurs/maxOccurs to a rendered particle.
fn occurs(body: String, min: Option<String>, max: Option<String>) -> String {
    let min = min.as_deref().unwrap_or("1");
    let max = max.as_deref().unwrap_or("1");
    let min_zero = min == "0";
    let many = max == "unbounded" || max.parse::<u32>().map(|n| n > 1).unwrap_or(false);
    match (min_zero, many) {
        (false, false) => body,
        (true, false) => format!("{body}?"),
        (false, true) => format!("{body}+"),
        (true, true) => format!("{body}*"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOKSTORE: &str = r#"
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="bookstore">
            <xs:complexType>
              <xs:sequence>
                <xs:element ref="book" minOccurs="0" maxOccurs="unbounded"/>
              </xs:sequence>
            </xs:complexType>
          </xs:element>
          <xs:element name="book" type="BookType"/>
          <xs:complexType name="BookType">
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="author" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="last" type="xs:string"/>
                    <xs:element name="first" type="xs:string" minOccurs="0"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
              <xs:element name="price" type="xs:decimal" minOccurs="0"/>
            </xs:sequence>
            <xs:attribute name="isbn" use="required"/>
            <xs:attribute name="lang"/>
          </xs:complexType>
        </xs:schema>
    "#;

    #[test]
    fn bookstore_schema_translates() {
        let edtd = parse_xsd(BOOKSTORE).unwrap();
        let dtd = edtd.type_dtd();
        // bookstore, book, title, author, last, first, price + @isbn, @lang.
        assert_eq!(dtd.size(), 9);
        let root = dtd.start();
        assert_eq!(edtd.label_of(root), "bookstore");
        // The book type reaches title and the attribute types.
        let book = dtd
            .alphabet()
            .find(|&t| edtd.label_of(t) == "book")
            .unwrap();
        let title = dtd
            .alphabet()
            .find(|&t| edtd.label_of(t) == "title")
            .unwrap();
        let isbn = dtd
            .alphabet()
            .find(|&t| edtd.label_of(t) == "@isbn")
            .unwrap();
        assert!(dtd.reaches(book, title));
        assert!(dtd.reaches(book, isbn));
    }

    #[test]
    fn instances_validate_against_the_translation() {
        let edtd = parse_xsd(BOOKSTORE).unwrap();
        let ok = qui_xmlstore::parse_xml_keep_attributes(
            r#"<bookstore>
                 <book isbn="1-55860-438-3" lang="en">
                   <title>Data on the Web</title>
                   <author><last>Abiteboul</last><first>Serge</first></author>
                   <author><last>Buneman</last></author>
                   <price>39.95</price>
                 </book>
                 <book isbn="0">
                   <title>t</title>
                   <author><last>x</last></author>
                 </book>
               </bookstore>"#,
        )
        .unwrap();
        assert!(edtd.validate(&ok));
        // Missing required attribute and missing author are both rejected.
        let missing_attr = qui_xmlstore::parse_xml_keep_attributes(
            "<bookstore><book><title>t</title><author><last>x</last></author></book></bookstore>",
        )
        .unwrap();
        assert!(!edtd.validate(&missing_attr));
        let missing_author = qui_xmlstore::parse_xml_keep_attributes(
            r#"<bookstore><book isbn="1"><title>t</title></book></bookstore>"#,
        )
        .unwrap();
        assert!(!edtd.validate(&missing_author));
    }

    #[test]
    fn same_label_with_two_content_models_becomes_two_types() {
        let src = r#"
            <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="shop">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="new">
                      <xs:complexType><xs:sequence>
                        <xs:element name="item">
                          <xs:complexType><xs:sequence>
                            <xs:element name="price" type="xs:decimal"/>
                          </xs:sequence></xs:complexType>
                        </xs:element>
                      </xs:sequence></xs:complexType>
                    </xs:element>
                    <xs:element name="old">
                      <xs:complexType><xs:sequence>
                        <xs:element name="item">
                          <xs:complexType><xs:sequence>
                            <xs:element name="note" type="xs:string" minOccurs="0"/>
                          </xs:sequence></xs:complexType>
                        </xs:element>
                      </xs:sequence></xs:complexType>
                    </xs:element>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:schema>
        "#;
        let edtd = parse_xsd(src).unwrap();
        let dtd = edtd.type_dtd();
        let item_types: Vec<_> = dtd
            .alphabet()
            .filter(|&t| edtd.label_of(t) == "item")
            .collect();
        assert_eq!(item_types.len(), 2, "two item types with different content");
        assert!(dtd.sym("item#1").is_some() && dtd.sym("item#2").is_some());
    }

    #[test]
    fn choice_mixed_and_occurs_are_translated() {
        let src = r#"
            <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="doc">
                <xs:complexType>
                  <xs:choice minOccurs="0" maxOccurs="unbounded">
                    <xs:element name="para">
                      <xs:complexType mixed="true">
                        <xs:sequence>
                          <xs:element name="em" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="hr"/>
                  </xs:choice>
                </xs:complexType>
              </xs:element>
            </xs:schema>
        "#;
        let edtd = parse_xsd(src).unwrap();
        let doc = qui_xmlstore::parse_xml_keep_attributes(
            "<doc><para>hello <em>world</em> again</para><hr/><para/></doc>",
        )
        .unwrap();
        assert!(edtd.validate(&doc));
    }

    #[test]
    fn root_selection_and_missing_roots_are_reported() {
        assert!(parse_xsd_with_root(BOOKSTORE, "book").is_ok());
        assert!(parse_xsd_with_root(BOOKSTORE, "nosuch").is_err());
        let no_elements = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:complexType name="T"><xs:sequence/></xs:complexType>
        </xs:schema>"#;
        assert!(parse_xsd(no_elements).is_err());
        assert!(parse_xsd("<not-a-schema/>").is_err());
    }

    #[test]
    fn unsupported_constructs_are_rejected_loudly() {
        let with_any = r#"
            <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType><xs:sequence>
                  <xs:any/>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>
        "#;
        assert!(parse_xsd(with_any).is_err());
    }
}
