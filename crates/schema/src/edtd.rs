//! Extended DTDs (paper §7, Definition 7.1).
//!
//! An EDTD `(Σ, Σ', s, d, µ)` is a DTD over a *type* alphabet `Σ'` plus a
//! labelling function `µ : Σ' ∪ {S} → Σ ∪ {S}`. A tree is valid iff it can be
//! relabelled by `µ⁻¹` into a tree valid w.r.t. the DTD over types. EDTDs
//! capture XML Schema and RelaxNG typing where two types with the same label
//! may have different content models. The chain analysis extends to EDTDs by
//! only changing how node tests select types, which is exactly what the
//! [`crate::SchemaLike`] abstraction exposes.

use crate::dtd::Dtd;
use crate::schema_like::SchemaLike;
use crate::symbols::{Sym, TEXT_SYM};
use qui_xmlstore::{NodeId, Tree};
use std::collections::{HashMap, HashSet};

/// An Extended DTD: a DTD over types plus a type-to-label map.
#[derive(Clone, Debug)]
pub struct Edtd {
    /// The underlying DTD whose "tags" are the type names of `Σ'`.
    types: Dtd,
    /// The label of every type (`µ`); indexed by type symbol.
    labels: Vec<String>,
    /// Reverse index: label → types carrying it.
    by_label: HashMap<String, Vec<Sym>>,
}

impl Edtd {
    /// Builds an EDTD from a DTD over type names and a mapping from type
    /// name to label. Types not mentioned in `label_of` keep their own name
    /// as label (so every DTD is trivially an EDTD).
    pub fn new(types: Dtd, label_of: &HashMap<String, String>) -> Edtd {
        let mut labels = vec![String::new(); types.symbols().len()];
        let mut by_label: HashMap<String, Vec<Sym>> = HashMap::new();
        for t in types.symbols().all() {
            let name = types.name(t).to_string();
            let label = if t == TEXT_SYM {
                name.clone()
            } else {
                label_of.get(&name).cloned().unwrap_or_else(|| name.clone())
            };
            by_label.entry(label.clone()).or_default().push(t);
            labels[t.index()] = label;
        }
        Edtd {
            types,
            labels,
            by_label,
        }
    }

    /// A convenience constructor following the paper's convention
    /// `Σ' = {a_i | a ∈ Σ}` with `µ(a_i) = a`: every type name of the form
    /// `label#i` (or `label_i` with a numeric suffix after the last `#`)
    /// is mapped to `label`; other names map to themselves.
    pub fn with_indexed_types(types: Dtd) -> Edtd {
        let mut map = HashMap::new();
        for t in types.symbols().elements() {
            let name = types.name(t);
            if let Some((base, suffix)) = name.rsplit_once('#') {
                if !base.is_empty() && suffix.chars().all(|c| c.is_ascii_digit()) {
                    map.insert(name.to_string(), base.to_string());
                }
            }
        }
        Edtd::new(types, &map)
    }

    /// The underlying DTD over types.
    pub fn type_dtd(&self) -> &Dtd {
        &self.types
    }

    /// The label (`µ`) of a type.
    pub fn label_of(&self, t: Sym) -> &str {
        &self.labels[t.index()]
    }

    /// Validates a tree: checks whether *some* assignment of types to
    /// locations (compatible with labels and content models) exists.
    pub fn validate(&self, tree: &Tree) -> bool {
        let mut memo: HashMap<(NodeId, Sym), bool> = HashMap::new();
        let start = self.types.start();
        let root_label = tree.store.tag(tree.root).unwrap_or("#text");
        if self.label_of(start) != root_label {
            return false;
        }
        self.check(tree, tree.root, start, &mut memo)
    }

    fn check(
        &self,
        tree: &Tree,
        node: NodeId,
        ty: Sym,
        memo: &mut HashMap<(NodeId, Sym), bool>,
    ) -> bool {
        if let Some(&r) = memo.get(&(node, ty)) {
            return r;
        }
        // Insert a provisional result to cut cycles (stores are trees, so
        // this cannot actually recurse into itself; the memo is only a cache).
        let children: Vec<NodeId> = tree.store.children(node).to_vec();
        let result = self.match_children(tree, &children, ty, memo);
        memo.insert((node, ty), result);
        result
    }

    fn match_children(
        &self,
        tree: &Tree,
        children: &[NodeId],
        ty: Sym,
        memo: &mut HashMap<(NodeId, Sym), bool>,
    ) -> bool {
        // For every child, compute the set of candidate types (matching
        // label and recursively valid); then ask whether some choice of
        // candidates forms a word of the content model. We enumerate
        // candidate words lazily via a simple DFS over per-child candidate
        // sets; content models are small so this is fine for testing
        // purposes.
        let model = self.types.content(ty);
        let mut candidate_sets: Vec<Vec<Sym>> = Vec::with_capacity(children.len());
        for &c in children {
            let label = if tree.store.is_text(c) {
                "#text".to_string()
            } else {
                tree.store.tag(c).unwrap_or_default().to_string()
            };
            let cands: Vec<Sym> = self
                .by_label
                .get(&label)
                .cloned()
                .unwrap_or_default()
                .into_iter()
                .filter(|&t| {
                    if t == TEXT_SYM {
                        tree.store.is_text(c)
                    } else {
                        self.check(tree, c, t, memo)
                    }
                })
                .collect();
            if cands.is_empty() {
                return false;
            }
            candidate_sets.push(cands);
        }
        // DFS over the product of candidate sets, pruned by a running
        // Glushkov-style reachability check: we simply enumerate (candidate
        // sets are almost always singletons in practice).
        let mut word: Vec<Sym> = Vec::with_capacity(children.len());
        fn dfs(model: &crate::ContentModel, sets: &[Vec<Sym>], word: &mut Vec<Sym>) -> bool {
            if sets.is_empty() {
                return model.matches(word);
            }
            for &cand in &sets[0] {
                word.push(cand);
                if dfs(model, &sets[1..], word) {
                    return true;
                }
                word.pop();
            }
            false
        }
        dfs(model, &candidate_sets, &mut word)
    }
}

impl SchemaLike for Edtd {
    fn start_type(&self) -> Sym {
        self.types.start()
    }

    fn num_types(&self) -> usize {
        self.types.symbols().len()
    }

    fn type_label(&self, t: Sym) -> &str {
        self.label_of(t)
    }

    fn types_with_label(&self, label: &str) -> Vec<Sym> {
        self.by_label.get(label).cloned().unwrap_or_default()
    }

    fn child_types(&self, t: Sym) -> &[Sym] {
        self.types.child_syms(t)
    }

    fn before_pairs_of(&self, t: Sym) -> &HashSet<(Sym, Sym)> {
        self.types.before_pairs(t)
    }

    fn is_recursive_type(&self, t: Sym) -> bool {
        self.types.is_recursive_sym(t)
    }

    fn schema_size(&self) -> usize {
        self.types.size()
    }

    fn element_types(&self) -> Vec<Sym> {
        self.types.alphabet().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_xmlstore::parse_xml;

    /// An EDTD where the label `item` has two types with different content:
    /// items under `new` must contain a `price`, items under `old` must not.
    fn two_typed_items() -> Edtd {
        let types = Dtd::parse_compact(
            "shop -> (new, old) ; new -> item#1* ; old -> item#2* ; item#1 -> price ; item#2 -> EMPTY ; price -> #PCDATA",
            "shop",
        )
        .unwrap();
        Edtd::with_indexed_types(types)
    }

    #[test]
    fn labels_collapse_indexed_types() {
        let e = two_typed_items();
        let t1 = e.type_dtd().sym("item#1").unwrap();
        let t2 = e.type_dtd().sym("item#2").unwrap();
        assert_eq!(e.label_of(t1), "item");
        assert_eq!(e.label_of(t2), "item");
        let both = e.types_with_label("item");
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn validation_distinguishes_types_by_context() {
        let e = two_typed_items();
        let valid =
            parse_xml("<shop><new><item><price>3</price></item></new><old><item/></old></shop>")
                .unwrap();
        let invalid = parse_xml("<shop><new><item/></new><old><item/></old></shop>").unwrap();
        assert!(e.validate(&valid));
        assert!(!e.validate(&invalid));
    }

    #[test]
    fn plain_dtd_is_a_degenerate_edtd() {
        let d = Dtd::parse_compact("doc -> a* ; a -> EMPTY", "doc").unwrap();
        let e = Edtd::new(d, &HashMap::new());
        let t = parse_xml("<doc><a/><a/></doc>").unwrap();
        assert!(e.validate(&t));
        let bad = parse_xml("<doc><b/></doc>").unwrap();
        assert!(!e.validate(&bad));
    }

    #[test]
    fn schema_like_interface() {
        let e = two_typed_items();
        assert_eq!(e.schema_size(), 6);
        assert!(!e.is_recursive());
        let shop = e.start_type();
        assert_eq!(e.type_label(shop), "shop");
        assert_eq!(e.child_types(shop).len(), 2);
    }
}
