//! DTDs `(Σ, s_d, d)` (paper §2).

use crate::chain::Chain;
use crate::content::ContentModel;
use crate::schema_like::SchemaLike;
use crate::symbols::{Sym, SymbolTable, TEXT_SYM};
use std::collections::{HashMap, HashSet};

/// A Document Type Definition: an alphabet of element tags, a start symbol,
/// and a content model for every tag.
///
/// Construction goes through [`DtdBuilder`] (or the parsers in
/// [`crate::parser`]); once built, the DTD is immutable and caches the
/// derived relations the analyses need: the reachability relation `⇒_d`,
/// the sibling order relations `<_{d(a)}`, and per-type recursion flags.
#[derive(Clone, Debug)]
pub struct Dtd {
    symbols: SymbolTable,
    start: Sym,
    rules: Vec<ContentModel>,
    children: Vec<Vec<Sym>>,
    before: Vec<HashSet<(Sym, Sym)>>,
    recursive: Vec<bool>,
}

impl Dtd {
    /// Starts building a DTD.
    pub fn builder() -> DtdBuilder {
        DtdBuilder::new()
    }

    /// Parses the compact rule syntax used in the paper's examples, e.g.
    /// `"doc -> (a|b)* ; a -> c ; b -> c"`. See [`crate::parser`].
    pub fn parse_compact(src: &str, start: &str) -> Result<Dtd, crate::SchemaParseError> {
        crate::parser::parse_compact(src, start)
    }

    /// Parses standard `<!ELEMENT …>` DTD syntax. See [`crate::parser`].
    pub fn parse_dtd(src: &str, start: &str) -> Result<Dtd, crate::SchemaParseError> {
        crate::parser::parse_dtd(src, start)
    }

    pub(crate) fn from_parts(symbols: SymbolTable, start: Sym, rules: Vec<ContentModel>) -> Dtd {
        let n = symbols.len();
        debug_assert_eq!(rules.len(), n);
        let children: Vec<Vec<Sym>> = rules
            .iter()
            .map(|r| {
                let mut v: Vec<Sym> = r.symbols().into_iter().collect();
                v.sort();
                v
            })
            .collect();
        let before: Vec<HashSet<(Sym, Sym)>> = rules.iter().map(|r| r.before_pairs()).collect();
        let recursive = compute_recursive(n, &children);
        Dtd {
            symbols,
            start,
            rules,
            children,
            before,
            recursive,
        }
    }

    /// The symbol table of the DTD.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The start symbol `s_d`.
    pub fn start(&self) -> Sym {
        self.start
    }

    /// The name of `sym`.
    pub fn name(&self, sym: Sym) -> &str {
        self.symbols.name(sym)
    }

    /// Looks up the symbol for `name`, if it is part of the alphabet.
    pub fn sym(&self, name: &str) -> Option<Sym> {
        self.symbols.lookup(name)
    }

    /// The content model `d(sym)`. The text type has content `ε`.
    pub fn content(&self, sym: Sym) -> &ContentModel {
        &self.rules[sym.index()]
    }

    /// The symbols occurring in `d(sym)`, i.e. `{β | sym ⇒_d β}`, sorted.
    pub fn child_syms(&self, sym: Sym) -> &[Sym] {
        &self.children[sym.index()]
    }

    /// One-step reachability `α ⇒_d β`.
    pub fn reaches(&self, alpha: Sym, beta: Sym) -> bool {
        self.children[alpha.index()].contains(&beta)
    }

    /// All symbols transitively reachable from `sym` (excluding `sym` itself
    /// unless it is reachable through a cycle).
    pub fn reachable_from(&self, sym: Sym) -> HashSet<Sym> {
        let mut out = HashSet::new();
        let mut stack = vec![sym];
        let mut seen = HashSet::new();
        seen.insert(sym);
        while let Some(s) = stack.pop() {
            for &c in self.child_syms(s) {
                out.insert(c);
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Returns `true` if `sym` can reach itself (vertical recursion).
    pub fn is_recursive_sym(&self, sym: Sym) -> bool {
        self.recursive[sym.index()]
    }

    /// Number of element symbols (the paper's `|d|`).
    pub fn size(&self) -> usize {
        self.symbols.len() - 1
    }

    /// Iterates over the element symbols of the alphabet.
    pub fn alphabet(&self) -> impl Iterator<Item = Sym> + '_ {
        self.symbols.elements()
    }

    /// Displays a chain using the DTD's symbol names (e.g. `doc.a.c`).
    pub fn show_chain(&self, c: &Chain) -> String {
        c.display_with(&|s| self.name(s).to_string())
    }

    /// Builds a chain from tag names. Returns `None` if some name is not in
    /// the alphabet ("#text" maps to the text type).
    pub fn chain_of_names(&self, names: &[&str]) -> Option<Chain> {
        let syms: Option<Vec<Sym>> = names.iter().map(|n| self.sym(n)).collect();
        syms.map(Chain::from)
    }

    /// The sibling order relation `<_{d(sym)}`.
    pub fn before_pairs(&self, sym: Sym) -> &HashSet<(Sym, Sym)> {
        &self.before[sym.index()]
    }

    /// Validates a tree against this DTD. See [`crate::validate`].
    pub fn validate(&self, tree: &qui_xmlstore::Tree) -> crate::Validity {
        crate::validate::validate(self, tree)
    }

    /// Renders the DTD in the compact rule syntax (useful for debugging and
    /// for the workload definitions' round-trip tests).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        for sym in self.alphabet() {
            let rule = self.content(sym);
            out.push_str(self.name(sym));
            out.push_str(" -> ");
            out.push_str(&rule.display_with(&|s| {
                if s == TEXT_SYM {
                    "#PCDATA".to_string()
                } else {
                    self.name(s).to_string()
                }
            }));
            out.push_str(" ;\n");
        }
        out
    }
}

fn compute_recursive(n: usize, children: &[Vec<Sym>]) -> Vec<bool> {
    // recursive[s] = s ∈ reachable_from(s); computed with a DFS per symbol
    // (schemas are small, |d| ≤ a few hundred).
    let mut recursive = vec![false; n];
    for s in 0..n {
        let start = Sym(s as u16);
        let mut stack: Vec<Sym> = children[s].clone();
        let mut seen: HashSet<Sym> = HashSet::new();
        while let Some(x) = stack.pop() {
            if x == start {
                recursive[s] = true;
                break;
            }
            if seen.insert(x) {
                stack.extend(children[x.index()].iter().copied());
            }
        }
    }
    recursive
}

impl SchemaLike for Dtd {
    fn start_type(&self) -> Sym {
        self.start
    }

    fn num_types(&self) -> usize {
        self.symbols.len()
    }

    fn type_label(&self, t: Sym) -> &str {
        self.name(t)
    }

    fn types_with_label(&self, label: &str) -> Vec<Sym> {
        match self.sym(label) {
            Some(s) => vec![s],
            None => Vec::new(),
        }
    }

    fn child_types(&self, t: Sym) -> &[Sym] {
        self.child_syms(t)
    }

    fn before_pairs_of(&self, t: Sym) -> &HashSet<(Sym, Sym)> {
        self.before_pairs(t)
    }

    fn is_recursive_type(&self, t: Sym) -> bool {
        self.is_recursive_sym(t)
    }

    fn schema_size(&self) -> usize {
        self.size()
    }

    fn element_types(&self) -> Vec<Sym> {
        self.alphabet().collect()
    }
}

/// Incremental builder for [`Dtd`].
///
/// ```
/// use qui_schema::Dtd;
/// let dtd = Dtd::builder()
///     .rule("doc", "(a | b)*")
///     .rule("a", "c")
///     .rule("b", "c")
///     .rule("c", "EMPTY")
///     .build("doc")
///     .unwrap();
/// assert_eq!(dtd.size(), 4);
/// ```
#[derive(Default)]
pub struct DtdBuilder {
    rules: Vec<(String, String)>,
}

impl DtdBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DtdBuilder { rules: Vec::new() }
    }

    /// Adds (or overrides) the rule `name -> content`, where `content` uses
    /// the compact regular-expression syntax (`,` sequence, `|` alternation,
    /// `* + ?` postfix, `#PCDATA`/`S` for text, `EMPTY` for ε).
    pub fn rule(mut self, name: &str, content: &str) -> Self {
        self.rules.push((name.to_string(), content.to_string()));
        self
    }

    /// Finalizes the DTD with `start` as start symbol.
    pub fn build(self, start: &str) -> Result<Dtd, crate::SchemaParseError> {
        let src: String = self
            .rules
            .iter()
            .map(|(n, c)| format!("{n} -> {c}"))
            .collect::<Vec<_>>()
            .join(" ; ");
        crate::parser::parse_compact(&src, start)
    }
}

/// A map from symbols to values, stored densely. Convenience used by several
/// analyses to associate data with every type of a schema.
#[derive(Clone, Debug)]
pub struct SymMap<T> {
    data: Vec<T>,
}

impl<T: Clone + Default> SymMap<T> {
    /// Creates a map with `n` default-initialized entries.
    pub fn new(n: usize) -> Self {
        SymMap {
            data: vec![T::default(); n],
        }
    }

    /// Gets the entry for `s`.
    pub fn get(&self, s: Sym) -> &T {
        &self.data[s.index()]
    }

    /// Gets the entry for `s` mutably.
    pub fn get_mut(&mut self, s: Sym) -> &mut T {
        &mut self.data[s.index()]
    }
}

/// Computes, for every symbol, the set of symbols that can appear *above* it
/// in a chain starting from the start symbol (i.e. its possible ancestors).
/// This is a derived relation used by the baseline analysis and by a few
/// workload sanity checks.
pub fn ancestor_types(dtd: &Dtd) -> HashMap<Sym, HashSet<Sym>> {
    let mut out: HashMap<Sym, HashSet<Sym>> = HashMap::new();
    for a in dtd.alphabet() {
        for &b in dtd.child_syms(a) {
            out.entry(b).or_default().insert(a);
        }
    }
    // Transitive closure (small fixpoint).
    loop {
        let mut changed = false;
        let keys: Vec<Sym> = out.keys().copied().collect();
        for k in keys {
            let parents: Vec<Sym> = out[&k].iter().copied().collect();
            for p in parents {
                let grand: Vec<Sym> = out
                    .get(&p)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                let entry = out.entry(k).or_default();
                for g in grand {
                    changed |= entry.insert(g);
                }
            }
        }
        if !changed {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_dtd() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c ; c -> EMPTY", "doc").unwrap()
    }

    #[test]
    fn reachability_of_figure1() {
        let d = figure1_dtd();
        let doc = d.sym("doc").unwrap();
        let a = d.sym("a").unwrap();
        let b = d.sym("b").unwrap();
        let c = d.sym("c").unwrap();
        assert!(d.reaches(doc, a));
        assert!(d.reaches(doc, b));
        assert!(d.reaches(a, c));
        assert!(d.reaches(b, c));
        assert!(!d.reaches(doc, c));
        assert!(!d.reaches(c, doc));
        let reach = d.reachable_from(doc);
        assert_eq!(reach, [a, b, c].into_iter().collect());
    }

    #[test]
    fn figure1_is_not_recursive() {
        let d = figure1_dtd();
        assert!(!d.is_recursive());
        for s in d.alphabet() {
            assert!(!d.is_recursive_sym(s));
        }
    }

    #[test]
    fn recursive_dtd_detection() {
        // The schema d1 of §5: r ← a ; a ← (b,c,e)* ; b,c,e ← f ; f ← (a,g)
        let d = Dtd::builder()
            .rule("r", "a")
            .rule("a", "(b, c, e)*")
            .rule("b", "f")
            .rule("c", "f")
            .rule("e", "f")
            .rule("f", "(a, g)")
            .rule("g", "EMPTY")
            .build("r")
            .unwrap();
        assert!(d.is_recursive());
        assert!(d.is_recursive_sym(d.sym("a").unwrap()));
        assert!(d.is_recursive_sym(d.sym("f").unwrap()));
        assert!(!d.is_recursive_sym(d.sym("r").unwrap()));
        assert!(!d.is_recursive_sym(d.sym("g").unwrap()));
    }

    #[test]
    fn chains_membership() {
        let d = figure1_dtd();
        let doc_a_c = d.chain_of_names(&["doc", "a", "c"]).unwrap();
        let doc_c = d.chain_of_names(&["doc", "c"]).unwrap();
        assert!(d.is_chain(&doc_a_c));
        assert!(!d.is_chain(&doc_c));
        assert!(d.is_chain(&Chain::empty()));
        assert_eq!(d.show_chain(&doc_a_c), "doc.a.c");
    }

    #[test]
    fn schema_like_label_lookup() {
        let d = figure1_dtd();
        let a = d.sym("a").unwrap();
        assert_eq!(d.type_label(a), "a");
        assert_eq!(d.types_with_label("a"), vec![a]);
        assert!(d.types_with_label("zzz").is_empty());
        assert_eq!(d.schema_size(), 4);
    }

    #[test]
    fn ancestor_types_closure() {
        let d = figure1_dtd();
        let anc = ancestor_types(&d);
        let c = d.sym("c").unwrap();
        let expected: HashSet<Sym> = [
            d.sym("a").unwrap(),
            d.sym("b").unwrap(),
            d.sym("doc").unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(anc[&c], expected);
    }

    #[test]
    fn to_compact_roundtrips() {
        let d = figure1_dtd();
        let src = d.to_compact();
        let d2 = Dtd::parse_compact(&src, "doc").unwrap();
        assert_eq!(d2.size(), d.size());
        for s in d.alphabet() {
            let s2 = d2.sym(d.name(s)).unwrap();
            let names1: HashSet<&str> = d.child_syms(s).iter().map(|&x| d.name(x)).collect();
            let names2: HashSet<&str> = d2.child_syms(s2).iter().map(|&x| d2.name(x)).collect();
            assert_eq!(names1, names2);
        }
    }
}
