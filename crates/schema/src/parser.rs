//! Parsers for schemas: the compact rule syntax used in the paper's examples
//! and standard `<!ELEMENT …>` DTD syntax.
//!
//! Compact syntax:
//!
//! ```text
//! doc -> (a | b)* ; a -> c ; b -> c ; c -> EMPTY
//! ```
//!
//! Rules are separated by `;` or newlines. Content models use `,` for
//! sequence, `|` for alternation, postfix `*`, `+`, `?`, parentheses,
//! `#PCDATA` (or `S`) for the text type and `EMPTY` for the empty content.
//! Symbols that appear only on right-hand sides implicitly get content
//! `EMPTY`, which lets the paper's abbreviated examples (`{doc←(a|b)*, a←c,
//! b←c}`) be written verbatim.
//!
//! DTD syntax: `<!ELEMENT name (content)>`, with `EMPTY` and mixed content
//! `(#PCDATA | a | b)*`; `<!ATTLIST …>` declarations and comments are
//! accepted and ignored (the paper's core model has no attributes).

use crate::content::ContentModel;
use crate::dtd::Dtd;
use crate::symbols::{SymbolTable, TEXT_SYM};
use std::fmt;

/// An error produced while parsing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaParseError {
    /// Human-readable description.
    pub message: String,
}

impl SchemaParseError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        SchemaParseError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for SchemaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema parse error: {}", self.message)
    }
}

impl std::error::Error for SchemaParseError {}

/// Parses the compact rule syntax. `start` must be one of the declared or
/// referenced element names.
pub fn parse_compact(src: &str, start: &str) -> Result<Dtd, SchemaParseError> {
    let mut symbols = SymbolTable::new();
    let mut rules: Vec<(String, String)> = Vec::new();
    for raw_rule in src.split([';', '\n']) {
        let rule = raw_rule.trim();
        if rule.is_empty() || rule.starts_with('#') && !rule.contains("->") {
            continue;
        }
        let (lhs, rhs) = rule
            .split_once("->")
            .or_else(|| rule.split_once('←'))
            .ok_or_else(|| SchemaParseError::new(format!("rule without '->': {rule:?}")))?;
        rules.push((lhs.trim().to_string(), rhs.trim().to_string()));
    }
    if rules.is_empty() {
        return Err(SchemaParseError::new("no rules found"));
    }
    // Intern all left-hand sides first so rule indexing is stable.
    for (lhs, _) in &rules {
        if lhs.is_empty() {
            return Err(SchemaParseError::new("empty element name"));
        }
        symbols.intern(lhs);
    }
    let mut models: Vec<Option<ContentModel>> = Vec::new();
    let mut parsed: Vec<(String, ContentModel)> = Vec::new();
    for (lhs, rhs) in &rules {
        let cm = parse_content(rhs, &mut symbols)?;
        parsed.push((lhs.clone(), cm));
    }
    models.resize(symbols.len(), None);
    for (lhs, cm) in parsed {
        let sym = symbols.lookup(&lhs).expect("interned above");
        models[sym.index()] = Some(cm);
    }
    let start_sym = symbols
        .lookup(start)
        .ok_or_else(|| SchemaParseError::new(format!("start symbol {start:?} not declared")))?;
    // Symbols referenced but not declared get EMPTY content; the text type
    // gets ε.
    let final_models: Vec<ContentModel> = models
        .into_iter()
        .map(|m| m.unwrap_or(ContentModel::Epsilon))
        .collect();
    Ok(Dtd::from_parts(symbols, start_sym, final_models))
}

/// Parses standard `<!ELEMENT …>` declarations.
pub fn parse_dtd(src: &str, start: &str) -> Result<Dtd, SchemaParseError> {
    let mut compact_rules: Vec<String> = Vec::new();
    let mut rest = src;
    while let Some(idx) = rest.find("<!") {
        rest = &rest[idx..];
        if rest.starts_with("<!--") {
            match rest.find("-->") {
                Some(end) => rest = &rest[end + 3..],
                None => break,
            }
            continue;
        }
        let end = rest
            .find('>')
            .ok_or_else(|| SchemaParseError::new("unterminated declaration"))?;
        let decl = &rest[2..end];
        rest = &rest[end + 1..];
        let decl = decl.trim();
        if let Some(body) = decl.strip_prefix("ELEMENT") {
            let body = body.trim();
            let (name, content) = body
                .split_once(char::is_whitespace)
                .ok_or_else(|| SchemaParseError::new(format!("malformed ELEMENT: {body:?}")))?;
            let content = content.trim();
            let content = if content == "ANY" {
                // ANY is not used in our workloads; treat it as EMPTY with a
                // clear error to avoid silently mis-modelling a schema.
                return Err(SchemaParseError::new(
                    "ANY content models are not supported",
                ));
            } else {
                content.to_string()
            };
            compact_rules.push(format!("{name} -> {content}"));
        }
        // ATTLIST / ENTITY / NOTATION declarations are ignored.
    }
    parse_compact(&compact_rules.join("\n"), start)
}

/// Parses a content-model expression, interning referenced names.
pub fn parse_content(
    src: &str,
    symbols: &mut SymbolTable,
) -> Result<ContentModel, SchemaParseError> {
    let mut p = ContentParser {
        chars: src.chars().collect(),
        pos: 0,
        symbols,
    };
    p.skip_ws();
    if p.eof() {
        return Ok(ContentModel::Epsilon);
    }
    let cm = p.parse_alt()?;
    p.skip_ws();
    if !p.eof() {
        return Err(SchemaParseError::new(format!(
            "unexpected trailing input in content model {src:?} at {}",
            p.pos
        )));
    }
    Ok(cm)
}

struct ContentParser<'a> {
    chars: Vec<char>,
    pos: usize,
    symbols: &'a mut SymbolTable,
}

impl<'a> ContentParser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// alternation: seq ('|' seq)*
    fn parse_alt(&mut self) -> Result<ContentModel, SchemaParseError> {
        let mut items = vec![self.parse_seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.pos += 1;
                items.push(self.parse_seq()?);
            } else {
                break;
            }
        }
        Ok(ContentModel::alt(items))
    }

    /// sequence: postfix (',' postfix)*
    fn parse_seq(&mut self) -> Result<ContentModel, SchemaParseError> {
        let mut items = vec![self.parse_postfix()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(',') {
                self.pos += 1;
                items.push(self.parse_postfix()?);
            } else {
                break;
            }
        }
        Ok(ContentModel::seq(items))
    }

    /// postfix: atom ('*' | '+' | '?')*
    fn parse_postfix(&mut self) -> Result<ContentModel, SchemaParseError> {
        let mut atom = self.parse_atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    atom = ContentModel::star(atom);
                }
                Some('+') => {
                    self.pos += 1;
                    atom = ContentModel::plus(atom);
                }
                Some('?') => {
                    self.pos += 1;
                    atom = ContentModel::opt(atom);
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    /// atom: '(' alt ')' | name | '#PCDATA' | 'S' | 'EMPTY'
    fn parse_atom(&mut self) -> Result<ContentModel, SchemaParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_alt()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return Err(SchemaParseError::new("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(c) if c == '#' || c == '@' || c.is_alphanumeric() || c == '_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '#' | '@'))
                {
                    self.pos += 1;
                }
                let name: String = self.chars[start..self.pos].iter().collect();
                match name.as_str() {
                    "EMPTY" => Ok(ContentModel::Epsilon),
                    "#PCDATA" | "S" | "string" => Ok(ContentModel::sym(TEXT_SYM)),
                    _ => Ok(ContentModel::sym(self.symbols.intern(&name))),
                }
            }
            other => Err(SchemaParseError::new(format!(
                "unexpected character {other:?} in content model"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_like::SchemaLike;

    #[test]
    fn compact_parses_figure1() {
        let d = parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap();
        assert_eq!(d.size(), 4); // doc, a, b, c (c implicitly EMPTY)
        let doc = d.sym("doc").unwrap();
        assert_eq!(d.child_syms(doc).len(), 2);
        assert_eq!(d.content(d.sym("c").unwrap()), &ContentModel::Epsilon);
    }

    #[test]
    fn compact_supports_unicode_arrow() {
        let d = parse_compact("doc ← a ; a ← #PCDATA", "doc").unwrap();
        let a = d.sym("a").unwrap();
        assert_eq!(d.child_syms(a), &[TEXT_SYM]);
    }

    #[test]
    fn compact_rejects_bad_input() {
        assert!(parse_compact("", "doc").is_err());
        assert!(parse_compact("doc (a|b)", "doc").is_err());
        assert!(parse_compact("doc -> (a|b", "doc").is_err());
        assert!(parse_compact("doc -> a", "nosuch").is_err());
    }

    #[test]
    fn dtd_syntax_with_attlist_and_comments() {
        let src = r#"
            <!-- bibliography -->
            <!ELEMENT bib (book*)>
            <!ELEMENT book (title, author*, price?)>
            <!ATTLIST book year CDATA #REQUIRED>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT author (first?, last)>
            <!ELEMENT first (#PCDATA)>
            <!ELEMENT last (#PCDATA)>
            <!ELEMENT price (#PCDATA)>
        "#;
        let d = parse_dtd(src, "bib").unwrap();
        // bib, book, title, author, first, last, price
        assert_eq!(d.size(), 7);
        let book = d.sym("book").unwrap();
        assert!(d.reaches(book, d.sym("title").unwrap()));
        assert!(d.reaches(book, d.sym("author").unwrap()));
        assert!(!d.reaches(book, d.sym("last").unwrap()));
    }

    #[test]
    fn dtd_syntax_rejects_any() {
        assert!(parse_dtd("<!ELEMENT a ANY>", "a").is_err());
    }

    #[test]
    fn mixed_content_model() {
        let d = parse_compact(
            "text -> (#PCDATA | bold | emph)* ; bold -> (#PCDATA | bold | emph)* ; emph -> EMPTY",
            "text",
        )
        .unwrap();
        let text = d.sym("text").unwrap();
        assert!(d.child_syms(text).contains(&TEXT_SYM));
        assert!(d.is_recursive_sym(d.sym("bold").unwrap()));
        assert!(!d.is_recursive_sym(d.sym("emph").unwrap()));
        assert!(d.is_recursive());
    }

    #[test]
    fn operator_precedence_and_nesting() {
        let mut t = SymbolTable::new();
        let cm = parse_content("(a, b)* | c?, d+", &mut t).unwrap();
        // Top level is an alternation of two branches.
        match cm {
            ContentModel::Alt(items) => assert_eq!(items.len(), 2),
            other => panic!("expected Alt, got {other:?}"),
        }
    }
}
