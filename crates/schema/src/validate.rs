//! Validation of trees against a DTD (the typing `ν` of §2) and the
//! node-to-chain mapping `c^σ_l` of Definition 2.2.

use crate::chain::Chain;
use crate::dtd::Dtd;
use crate::symbols::{Sym, TEXT_SYM};
use qui_xmlstore::{NodeId, Store, Tree};
use std::collections::HashMap;
use std::fmt;

/// The reason a tree failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The root tag differs from the start symbol.
    WrongRoot {
        /// Expected start symbol name.
        expected: String,
        /// Actual root tag.
        found: String,
    },
    /// An element tag is not part of the alphabet.
    UnknownTag {
        /// The offending location.
        location: NodeId,
        /// The unknown tag.
        tag: String,
    },
    /// The children word of an element does not match its content model.
    ContentMismatch {
        /// The offending location.
        location: NodeId,
        /// The element tag.
        tag: String,
        /// The children word (as tag names).
        word: Vec<String>,
        /// The content model, rendered.
        model: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongRoot { expected, found } => {
                write!(f, "root element is <{found}>, expected <{expected}>")
            }
            ValidationError::UnknownTag { location, tag } => {
                write!(
                    f,
                    "element <{tag}> at {location} is not declared in the DTD"
                )
            }
            ValidationError::ContentMismatch {
                location,
                tag,
                word,
                model,
            } => write!(
                f,
                "children of <{tag}> at {location} are ({}) which does not match {model}",
                word.join(", ")
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// The result of validating a tree: `Ok` (with the typing) or the first
/// error found.
pub type Validity = Result<Typing, ValidationError>;

/// The typing `ν : dom(t) → Σ ∪ {S}` of a valid tree, plus the chains
/// `c^σ_l` of every location.
#[derive(Debug, Clone)]
pub struct Typing {
    types: HashMap<NodeId, Sym>,
}

impl Typing {
    /// The type assigned to `l`.
    pub fn type_of(&self, l: NodeId) -> Option<Sym> {
        self.types.get(&l).copied()
    }

    /// Number of typed locations.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns `true` if no location was typed.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The chain `c^σ_l` of a location: the types encountered from the root
    /// down to `l` (Definition 2.2).
    pub fn chain_of(&self, store: &Store, l: NodeId) -> Option<Chain> {
        let mut syms = Vec::new();
        let mut cur = Some(l);
        while let Some(n) = cur {
            syms.push(self.type_of(n)?);
            cur = store.parent(n);
        }
        syms.reverse();
        Some(Chain(syms))
    }
}

/// Validates `tree` against `dtd`, returning the typing on success.
pub fn validate(dtd: &Dtd, tree: &Tree) -> Validity {
    let store = &tree.store;
    let root_tag = store.tag(tree.root).unwrap_or("#text");
    if root_tag != dtd.name(dtd.start()) {
        return Err(ValidationError::WrongRoot {
            expected: dtd.name(dtd.start()).to_string(),
            found: root_tag.to_string(),
        });
    }
    let mut types: HashMap<NodeId, Sym> = HashMap::new();
    let mut stack = vec![tree.root];
    while let Some(l) = stack.pop() {
        if store.is_text(l) {
            types.insert(l, TEXT_SYM);
            continue;
        }
        let tag = store.tag(l).expect("element node");
        let sym = dtd.sym(tag).ok_or_else(|| ValidationError::UnknownTag {
            location: l,
            tag: tag.to_string(),
        })?;
        types.insert(l, sym);
        // Build the children word.
        let mut word: Vec<Sym> = Vec::new();
        let mut word_names: Vec<String> = Vec::new();
        let mut ok = true;
        for c in store.children(l) {
            if store.is_text(c) {
                word.push(TEXT_SYM);
                word_names.push("#PCDATA".to_string());
            } else {
                let ctag = store.tag(c).expect("element node");
                match dtd.sym(ctag) {
                    Some(cs) => {
                        word.push(cs);
                        word_names.push(ctag.to_string());
                    }
                    None => {
                        ok = false;
                        word_names.push(ctag.to_string());
                    }
                }
            }
        }
        let model = dtd.content(sym);
        if !ok || !model.matches(&word) {
            return Err(ValidationError::ContentMismatch {
                location: l,
                tag: tag.to_string(),
                word: word_names,
                model: model.display_with(&|s| dtd.name(s).to_string()),
            });
        }
        stack.extend(store.children(l).iter().copied());
    }
    Ok(Typing { types })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_xmlstore::parse_xml;

    fn figure1_dtd() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c ; c -> EMPTY", "doc").unwrap()
    }

    #[test]
    fn figure1_document_is_valid() {
        let d = figure1_dtd();
        let t = parse_xml("<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>").unwrap();
        let typing = d.validate(&t).expect("valid");
        assert_eq!(typing.len(), 9);
        // The chain of the first c node is doc.a.c (Definition 2.2 example).
        let a1 = t.store.children(t.root)[0];
        let c1 = t.store.children(a1)[0];
        let chain = typing.chain_of(&t.store, c1).unwrap();
        assert_eq!(d.show_chain(&chain), "doc.a.c");
    }

    #[test]
    fn wrong_root_is_rejected() {
        let d = figure1_dtd();
        let t = parse_xml("<a><c/></a>").unwrap();
        match d.validate(&t) {
            Err(ValidationError::WrongRoot { expected, found }) => {
                assert_eq!(expected, "doc");
                assert_eq!(found, "a");
            }
            other => panic!("expected WrongRoot, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let d = figure1_dtd();
        let t = parse_xml("<doc><z/></doc>").unwrap();
        assert!(matches!(
            d.validate(&t),
            Err(ValidationError::ContentMismatch { .. }) | Err(ValidationError::UnknownTag { .. })
        ));
    }

    #[test]
    fn content_mismatch_is_rejected() {
        let d = figure1_dtd();
        // a must contain exactly one c.
        let t = parse_xml("<doc><a/></doc>").unwrap();
        match d.validate(&t) {
            Err(ValidationError::ContentMismatch { tag, .. }) => assert_eq!(tag, "a"),
            other => panic!("expected ContentMismatch, got {other:?}"),
        }
    }

    #[test]
    fn text_nodes_are_typed_as_string() {
        let d = Dtd::parse_compact("doc -> a* ; a -> #PCDATA", "doc").unwrap();
        let t = parse_xml("<doc><a>hello</a><a>world</a></doc>").unwrap();
        let typing = d.validate(&t).expect("valid");
        let a1 = t.store.children(t.root)[0];
        let txt = t.store.children(a1)[0];
        assert_eq!(typing.type_of(txt), Some(TEXT_SYM));
        let chain = typing.chain_of(&t.store, txt).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.last(), Some(TEXT_SYM));
    }

    #[test]
    fn proposition_2_3_chains_belong_to_cd() {
        // Every chain of a valid document is a chain of the DTD.
        let d = figure1_dtd();
        let t = parse_xml("<doc><a><c/></a><b><c/></b></doc>").unwrap();
        let typing = d.validate(&t).expect("valid");
        for l in t.reachable() {
            let chain = typing.chain_of(&t.store, l).unwrap();
            assert!(crate::SchemaLike::is_chain(&d, &chain), "chain {chain:?}");
        }
    }
}
