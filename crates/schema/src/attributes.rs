//! Attribute declarations for DTDs (§7).
//!
//! The paper's data model and chain inference are element-only; §7 notes
//! that "concerning attributes, extensions are straightforward, and actually
//! implemented in our prototype (a simple rule for dealing with the attribute
//! axis is needed)". This workspace realises the extension with an
//! *encoding* instead of new inference rules: an attribute `a` of an element
//! `e` becomes a leading child of `e` tagged `@a` whose content is the
//! attribute value as text. Under that encoding:
//!
//! * documents parsed with
//!   [`qui_xmlstore::parse_xml_keep_attributes`](qui_xmlstore) carry their
//!   attributes as `@name` children,
//! * the query parser desugars `x/@a` and `x/attribute::a` into
//!   `x/child::@a`,
//! * schemas gain `@name` element types via [`with_attributes`] (or directly
//!   from `<!ATTLIST …>` declarations via [`parse_dtd_with_attributes`]),
//!
//! after which chain inference, the conflict relation and the `k`-bound
//! computation all apply unchanged — an attribute chain is just a chain
//! ending in an `@name` symbol.

use crate::dtd::Dtd;
use crate::parser::SchemaParseError;
use crate::symbols::TEXT_SYM;

/// One attribute declaration: element name, attribute name, and whether the
/// attribute is required on every instance of the element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDecl {
    /// The element the attribute belongs to.
    pub element: String,
    /// The attribute name (without the leading `@`).
    pub attribute: String,
    /// `true` for `#REQUIRED`, `false` for `#IMPLIED`/defaulted attributes.
    pub required: bool,
}

impl AttrDecl {
    /// Convenience constructor.
    pub fn new(element: &str, attribute: &str, required: bool) -> Self {
        AttrDecl {
            element: element.to_string(),
            attribute: attribute.to_string(),
            required,
        }
    }

    /// The `@`-prefixed symbol name used by the encoding.
    pub fn symbol_name(&self) -> String {
        format!("@{}", self.attribute)
    }
}

/// Extends a DTD with attribute declarations, producing a new DTD in which
/// every declared attribute appears as a leading `@name` child of its
/// element (optional unless the declaration is `required`), and every
/// `@name` type has content `#PCDATA?`.
pub fn with_attributes(dtd: &Dtd, decls: &[AttrDecl]) -> Result<Dtd, SchemaParseError> {
    let mut rules: Vec<String> = Vec::new();
    let mut attr_types: Vec<String> = Vec::new();
    let start = dtd.name(dtd.start()).to_string();

    for sym in dtd.alphabet() {
        if sym == TEXT_SYM {
            continue;
        }
        let name = dtd.name(sym).to_string();
        let body = dtd.content(sym).display_with(&|s| {
            if s == TEXT_SYM {
                "#PCDATA".to_string()
            } else {
                dtd.name(s).to_string()
            }
        });
        let mut prefix: Vec<String> = Vec::new();
        for d in decls.iter().filter(|d| d.element == name) {
            let sym_name = d.symbol_name();
            prefix.push(if d.required {
                sym_name.clone()
            } else {
                format!("{sym_name}?")
            });
            if !attr_types.contains(&sym_name) {
                attr_types.push(sym_name);
            }
        }
        let rhs = if prefix.is_empty() {
            body
        } else if body == "EMPTY" {
            prefix.join(", ")
        } else {
            format!("{}, ({})", prefix.join(", "), body)
        };
        rules.push(format!("{name} -> {rhs}"));
    }
    for t in attr_types {
        rules.push(format!("{t} -> #PCDATA?"));
    }
    Dtd::parse_compact(&rules.join(" ;\n"), &start)
}

/// Parses `<!ELEMENT …>` **and** `<!ATTLIST …>` declarations: the element
/// structure is read exactly as [`Dtd::parse_dtd`] does, and every declared
/// attribute is folded in through [`with_attributes`].
pub fn parse_dtd_with_attributes(src: &str, start: &str) -> Result<Dtd, SchemaParseError> {
    let base = Dtd::parse_dtd(src, start)?;
    let decls = collect_attlists(src)?;
    if decls.is_empty() {
        return Ok(base);
    }
    with_attributes(&base, &decls)
}

/// Extracts attribute declarations from the `<!ATTLIST …>` declarations of a
/// DTD source.
pub fn collect_attlists(src: &str) -> Result<Vec<AttrDecl>, SchemaParseError> {
    let mut decls = Vec::new();
    let mut rest = src;
    while let Some(idx) = rest.find("<!ATTLIST") {
        rest = &rest[idx + "<!ATTLIST".len()..];
        let end = rest
            .find('>')
            .ok_or_else(|| SchemaParseError::new("unterminated ATTLIST declaration"))?;
        let body = &rest[..end];
        rest = &rest[end + 1..];
        decls.extend(parse_attlist_body(body)?);
    }
    Ok(decls)
}

fn parse_attlist_body(body: &str) -> Result<Vec<AttrDecl>, SchemaParseError> {
    // ATTLIST bodies are `element (name type default)+`; defaults may be
    // quoted literals (possibly containing spaces), which we tokenize as a
    // single unit.
    let tokens = tokenize(body);
    let mut it = tokens.into_iter();
    let element = it
        .next()
        .ok_or_else(|| SchemaParseError::new("ATTLIST without an element name"))?;
    let rest: Vec<String> = it.collect();
    let mut decls = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let name = rest[i].clone();
        let _ty = rest.get(i + 1).ok_or_else(|| {
            SchemaParseError::new(format!("ATTLIST {element}: missing type for {name}"))
        })?;
        let default = rest
            .get(i + 2)
            .ok_or_else(|| {
                SchemaParseError::new(format!("ATTLIST {element}: missing default for {name}"))
            })?
            .clone();
        // #FIXED is followed by the fixed value.
        let consumed = if default == "#FIXED" { 4 } else { 3 };
        let required = default == "#REQUIRED" || default == "#FIXED";
        decls.push(AttrDecl::new(&element, &name, required));
        i += consumed;
    }
    Ok(decls)
}

fn tokenize(body: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' || c == '\'' {
            let quote = c;
            chars.next();
            let mut tok = String::new();
            for d in chars.by_ref() {
                if d == quote {
                    break;
                }
                tok.push(d);
            }
            tokens.push(tok);
        } else {
            let mut tok = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_whitespace() {
                    break;
                }
                tok.push(d);
                chars.next();
            }
            tokens.push(tok);
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_like::SchemaLike;
    use qui_xmlstore::parse_xml_keep_attributes;

    fn base() -> Dtd {
        Dtd::parse_compact(
            "catalog -> item* ; item -> (name, price?) ; name -> #PCDATA ; price -> #PCDATA",
            "catalog",
        )
        .unwrap()
    }

    #[test]
    fn with_attributes_adds_at_types() {
        let dtd = with_attributes(
            &base(),
            &[
                AttrDecl::new("item", "id", true),
                AttrDecl::new("item", "lang", false),
            ],
        )
        .unwrap();
        let item = dtd.sym("item").unwrap();
        let id = dtd.sym("@id").unwrap();
        assert!(dtd.reaches(item, id));
        assert!(dtd.sym("@lang").is_some());
        // Attribute types carry text content.
        assert!(dtd.child_syms(id).contains(&TEXT_SYM));
    }

    #[test]
    fn required_attribute_is_enforced_by_validation() {
        let dtd = with_attributes(&base(), &[AttrDecl::new("item", "id", true)]).unwrap();
        let ok =
            parse_xml_keep_attributes(r#"<catalog><item id="1"><name>x</name></item></catalog>"#)
                .unwrap();
        assert!(dtd.validate(&ok).is_ok());
        let missing =
            parse_xml_keep_attributes(r#"<catalog><item><name>x</name></item></catalog>"#).unwrap();
        assert!(dtd.validate(&missing).is_err());
    }

    #[test]
    fn optional_attribute_may_be_absent() {
        let dtd = with_attributes(&base(), &[AttrDecl::new("item", "lang", false)]).unwrap();
        let without =
            parse_xml_keep_attributes(r#"<catalog><item><name>x</name></item></catalog>"#).unwrap();
        assert!(dtd.validate(&without).is_ok());
        let with = parse_xml_keep_attributes(
            r#"<catalog><item lang="en"><name>x</name></item></catalog>"#,
        )
        .unwrap();
        assert!(dtd.validate(&with).is_ok());
    }

    #[test]
    fn attributes_on_empty_elements() {
        let dtd = Dtd::parse_compact("g -> edge* ; edge -> EMPTY", "g").unwrap();
        let dtd = with_attributes(
            &dtd,
            &[
                AttrDecl::new("edge", "from", true),
                AttrDecl::new("edge", "to", true),
            ],
        )
        .unwrap();
        let doc = parse_xml_keep_attributes(r#"<g><edge from="a" to="b"/></g>"#).unwrap();
        assert!(dtd.validate(&doc).is_ok());
    }

    #[test]
    fn unknown_element_declarations_are_harmless() {
        // A declaration for an element the DTD does not define adds nothing.
        let dtd = with_attributes(&base(), &[AttrDecl::new("nosuch", "id", true)]).unwrap();
        assert_eq!(dtd.size(), base().size());
    }

    #[test]
    fn collect_attlists_parses_defaults_and_fixed() {
        let src = r#"
            <!ELEMENT item (name)>
            <!ATTLIST item id CDATA #REQUIRED lang CDATA #IMPLIED>
            <!ATTLIST item version CDATA #FIXED "1.0">
            <!ATTLIST name style CDATA "plain">
        "#;
        let decls = collect_attlists(src).unwrap();
        assert_eq!(
            decls,
            vec![
                AttrDecl::new("item", "id", true),
                AttrDecl::new("item", "lang", false),
                AttrDecl::new("item", "version", true),
                AttrDecl::new("name", "style", false),
            ]
        );
    }

    #[test]
    fn parse_dtd_with_attributes_end_to_end() {
        let src = r#"
            <!ELEMENT catalog (item*)>
            <!ELEMENT item (name, price?)>
            <!ATTLIST item id CDATA #REQUIRED>
            <!ELEMENT name (#PCDATA)>
            <!ELEMENT price (#PCDATA)>
        "#;
        let dtd = parse_dtd_with_attributes(src, "catalog").unwrap();
        assert!(dtd.sym("@id").is_some());
        let doc = parse_xml_keep_attributes(
            r#"<catalog><item id="i1"><name>chair</name><price>10</price></item></catalog>"#,
        )
        .unwrap();
        assert!(dtd.validate(&doc).is_ok());
    }

    #[test]
    fn chains_reach_attribute_symbols() {
        let dtd = with_attributes(&base(), &[AttrDecl::new("item", "id", true)]).unwrap();
        let chain = dtd.chain_of_names(&["catalog", "item", "@id"]).unwrap();
        assert!(dtd.is_chain(&chain));
    }
}
