//! # qui-schema — DTDs, Extended DTDs and chains (paper §2 and §7)
//!
//! A DTD is a triple `(Σ, s_d, d)`: a finite alphabet of element tags, a
//! start symbol, and a function from tags to regular expressions over
//! `Σ ∪ {S}` (where `S` is the string/text type). This crate provides:
//!
//! * [`Sym`] / [`SymbolTable`] — interned schema symbols. The reserved symbol
//!   [`TEXT_SYM`] plays the role of the paper's `S`.
//! * [`ContentModel`] — regular expressions used as content models, with
//!   word-membership testing (Glushkov construction), nullability, occurring
//!   symbols, and the *sibling order* relation `α <_r β` of §3.1.
//! * [`Dtd`] — schemas with two parsers (a compact `a -> (b, c)*` syntax used
//!   throughout the paper's examples, and standard `<!ELEMENT …>` syntax),
//!   reachability `α ⇒_d β`, recursion analysis, and validation of trees.
//! * [`Chain`] — chains over a schema (Definition 2.1): sequences of symbols
//!   each reachable from the previous one, with the prefix relation `⪯`.
//! * [`Edtd`] — Extended DTDs (§7): types mapped to labels via `µ`, capturing
//!   XML Schema / RelaxNG-style typing where two types may share a label.
//! * [`generate_valid`] — seeded generation of documents valid by
//!   construction, used for the dynamic ground truth and the view-maintenance
//!   experiment (Fig. 3.c).
//!
//! The chain *inference* system itself (Tables 1 and 2 of the paper) lives in
//! `qui-core`; this crate only provides the schema-level notions it builds on.

pub mod attributes;
pub mod chain;
pub mod content;
pub mod corpus;
pub mod dtd;
pub mod edtd;
pub mod genvalid;
pub mod infer;
pub mod parser;
pub mod schema_like;
pub mod symbols;
pub mod validate;
pub mod xsd;

pub use attributes::{parse_dtd_with_attributes, with_attributes, AttrDecl};
pub use chain::Chain;
pub use content::ContentModel;
pub use corpus::{random_query, random_update, Corpus, CorpusSchema, SchemaGen};
pub use dtd::Dtd;
pub use edtd::Edtd;
pub use genvalid::{
    generate_valid, generate_valid_into, generate_valid_xml, DocumentSink, GenValidConfig,
    GenXmlStats,
};
pub use infer::{infer_dtd, InferenceError, InferredDtd};
pub use parser::SchemaParseError;
pub use schema_like::SchemaLike;
pub use symbols::{Sym, SymbolTable, TEXT_NAME, TEXT_SYM};
pub use validate::{ValidationError, Validity};
pub use xsd::{parse_xsd, parse_xsd_with_root, XsdError};
