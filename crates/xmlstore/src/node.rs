//! Node locations and node contents.
//!
//! A location (paper: `l ∈ dom(σ)`) is represented by a [`NodeId`], an index
//! into the [`crate::Store`] arena. A node is either an element `a[L]` or a
//! text node `s`.

use std::fmt;

/// A node location (identifier) in a [`crate::Store`].
///
/// Locations are never reused: deleting a node detaches it from its parent
/// but keeps its slot in the arena, matching the paper's treatment where
/// `dom(σ) ⊆ dom(σ_u)` (the updated store only grows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the arena index of this location.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The content of a node: an element `a[L]` or a text node.
///
/// Deprecated with the columnar store rewrite: node contents now live in
/// parallel columns and this boxed form is only materialized on demand by
/// the deprecated [`crate::Store::node`]. See the README migration table.
#[deprecated(note = "read node contents through `Store::node_ref` / the Store accessors instead")]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node `a[L]`: a tag and the ordered list of children
    /// locations.
    Element {
        /// The element tag (paper: `a ∈ Σ`).
        tag: String,
        /// The ordered children locations (paper: `L = (l_1, …, l_n)`).
        children: Vec<NodeId>,
    },
    /// A text node holding a string value (paper type `S`).
    Text(String),
}

#[allow(deprecated)]
impl NodeKind {
    /// Returns the tag if this is an element node.
    pub fn tag(&self) -> Option<&str> {
        match self {
            NodeKind::Element { tag, .. } => Some(tag),
            NodeKind::Text(_) => None,
        }
    }

    /// Returns `true` for element nodes.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// Returns `true` for text nodes.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text(_))
    }
}

/// A node in the store: its content plus a parent pointer.
///
/// The parent pointer is not part of the paper's formal model (which treats
/// the store as a child-list environment only) but is a standard derived
/// structure needed to evaluate the upward XPath axes efficiently.
///
/// Deprecated with the columnar store rewrite; see [`NodeKind`].
#[deprecated(note = "read node contents through `Store::node_ref` / the Store accessors instead")]
#[allow(deprecated)]
#[derive(Clone, Debug)]
pub struct Node {
    /// Element or text content.
    pub kind: NodeKind,
    /// The parent location, `None` for roots and detached nodes.
    pub parent: Option<NodeId>,
}

#[allow(deprecated)]
impl Node {
    /// Creates a new element node with no parent.
    pub fn element(tag: impl Into<String>, children: Vec<NodeId>) -> Self {
        Node {
            kind: NodeKind::Element {
                tag: tag.into(),
                children,
            },
            parent: None,
        }
    }

    /// Creates a new text node with no parent.
    pub fn text(value: impl Into<String>) -> Self {
        Node {
            kind: NodeKind::Text(value.into()),
            parent: None,
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "l42");
        assert_eq!(format!("{id:?}"), "l42");
    }

    #[test]
    fn node_kind_accessors() {
        let e = NodeKind::Element {
            tag: "a".into(),
            children: vec![],
        };
        let t = NodeKind::Text("hi".into());
        assert_eq!(e.tag(), Some("a"));
        assert_eq!(t.tag(), None);
        assert!(e.is_element() && !e.is_text());
        assert!(t.is_text() && !t.is_element());
    }

    #[test]
    fn node_constructors_have_no_parent() {
        assert!(Node::element("a", vec![]).parent.is_none());
        assert!(Node::text("x").parent.is_none());
    }
}
