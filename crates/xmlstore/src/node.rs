//! Node locations.
//!
//! A location (paper: `l ∈ dom(σ)`) is represented by a [`NodeId`], an index
//! into the [`crate::Store`] arena. Node *contents* live in the store's
//! parallel columns and are read through [`crate::NodeRef`] / the `Store`
//! accessors.

use std::fmt;

/// A node location (identifier) in a [`crate::Store`].
///
/// Locations are never reused: deleting a node detaches it from its parent
/// but keeps its slot in the arena, matching the paper's treatment where
/// `dom(σ) ⊆ dom(σ_u)` (the updated store only grows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the arena index of this location.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "l42");
        assert_eq!(format!("{id:?}"), "l42");
    }
}
