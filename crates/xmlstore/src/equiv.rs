//! Value equivalence `(σ, l) ≅ (σ', l')` (paper §2).
//!
//! Two locations are value equivalent iff the subtrees rooted at them are
//! isomorphic: same shape, same tags, same text values — possibly different
//! locations. This is the notion of equality used by Definition 2.4
//! (independence) to compare query results before and after an update.

use crate::node::NodeId;
use crate::store::Store;

/// Returns `true` iff `(σ1, l1) ≅ (σ2, l2)`.
pub fn value_equiv(s1: &Store, l1: NodeId, s2: &Store, l2: NodeId) -> bool {
    match (s1.text_cow(l1), s2.text_cow(l2)) {
        (Some(a), Some(b)) => a == b,
        (None, None) => {
            s1.tag(l1) == s2.tag(l2) && {
                let mut c1 = s1.children_iter(l1);
                let mut c2 = s2.children_iter(l2);
                loop {
                    match (c1.next(), c2.next()) {
                        (None, None) => break true,
                        (Some(a), Some(b)) => {
                            if !value_equiv(s1, a, s2, b) {
                                break false;
                            }
                        }
                        _ => break false,
                    }
                }
            }
        }
        _ => false,
    }
}

/// Value equivalence on location sequences: `(σ1, L1) ≅ (σ2, L2)` iff the
/// sequences have the same length and are pointwise value equivalent.
pub fn sequence_equiv(s1: &Store, l1: &[NodeId], s2: &Store, l2: &[NodeId]) -> bool {
    l1.len() == l2.len()
        && l1
            .iter()
            .zip(l2.iter())
            .all(|(&a, &b)| value_equiv(s1, a, s2, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn identical_structures_are_equivalent() {
        let t1 = TreeBuilder::elem("a")
            .child(TreeBuilder::elem("b").text("x"))
            .build();
        let t2 = TreeBuilder::elem("a")
            .child(TreeBuilder::elem("b").text("x"))
            .build();
        assert!(value_equiv(&t1.store, t1.root, &t2.store, t2.root));
    }

    #[test]
    fn differing_tag_text_or_arity_breaks_equivalence() {
        let base = TreeBuilder::elem("a").child(TreeBuilder::elem("b")).build();
        let other_tag = TreeBuilder::elem("a").child(TreeBuilder::elem("c")).build();
        let extra_child = TreeBuilder::elem("a")
            .child(TreeBuilder::elem("b"))
            .child(TreeBuilder::elem("b"))
            .build();
        let text_instead = TreeBuilder::elem("a").text("b").build();
        assert!(!value_equiv(
            &base.store,
            base.root,
            &other_tag.store,
            other_tag.root
        ));
        assert!(!value_equiv(
            &base.store,
            base.root,
            &extra_child.store,
            extra_child.root
        ));
        assert!(!value_equiv(
            &base.store,
            base.root,
            &text_instead.store,
            text_instead.root
        ));
    }

    #[test]
    fn sequence_equivalence_checks_length_and_order() {
        let t = TreeBuilder::elem("r")
            .child(TreeBuilder::elem("a"))
            .child(TreeBuilder::elem("b"))
            .build();
        let kids = t.store.children(t.root);
        assert!(sequence_equiv(&t.store, &kids, &t.store, &kids));
        let swapped = vec![kids[1], kids[0]];
        assert!(!sequence_equiv(&t.store, &kids, &t.store, &swapped));
        assert!(!sequence_equiv(&t.store, &kids, &t.store, &kids[..1]));
    }
}
