//! Result delivery: sinks that receive query matches as they are found.
//!
//! Query evaluation and streamed projection used to materialize every match
//! into a `Vec<NodeId>` — the one remaining O(result) memory cliff. A
//! [`ResultSink`] receives matches one at a time instead:
//!
//! * [`CollectSink`] reproduces the old collect-to-`Vec` behavior (and backs
//!   the unchanged public APIs),
//! * [`CountSink`] answers cardinality queries in O(1) space,
//! * [`SerializeSink`] writes each match's XML straight to any
//!   [`std::io::Write`], reusing one buffer across matches.
//!
//! ```
//! use qui_xmlstore::{parse_xml, sink::{CountSink, ResultSink}};
//!
//! let t = parse_xml("<doc><a/><a/></doc>").unwrap();
//! let mut count = CountSink::default();
//! for c in t.store.children_iter(t.root) {
//!     count.push(&t.store, c);
//! }
//! assert_eq!(count.count(), 2);
//! ```

use crate::node::NodeId;
use crate::serializer::serialize_node_into;
use crate::store::Store;
use std::io::Write;

/// A consumer of query matches, invoked once per matched node in delivery
/// order.
pub trait ResultSink {
    /// Delivers one match.
    fn push(&mut self, store: &Store, node: NodeId);
}

/// Collects matches into a `Vec<NodeId>` (the pre-sink behavior).
#[derive(Debug, Default)]
pub struct CollectSink {
    nodes: Vec<NodeId>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected matches, in delivery order.
    pub fn into_nodes(self) -> Vec<NodeId> {
        self.nodes
    }

    /// The matches collected so far.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl ResultSink for CollectSink {
    fn push(&mut self, _store: &Store, node: NodeId) {
        self.nodes.push(node);
    }
}

/// Counts matches without retaining them.
#[derive(Debug, Default)]
pub struct CountSink {
    count: usize,
}

impl CountSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of matches delivered so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl ResultSink for CountSink {
    fn push(&mut self, _store: &Store, _node: NodeId) {
        self.count += 1;
    }
}

/// Serializes each match's subtree to a writer, one match per line, without
/// materializing the result sequence (one reused buffer across matches).
#[derive(Debug)]
pub struct SerializeSink<W: Write> {
    out: W,
    buf: String,
    count: usize,
}

impl<W: Write> SerializeSink<W> {
    /// Creates a sink writing XML lines to `out`.
    pub fn new(out: W) -> Self {
        SerializeSink {
            out,
            buf: String::new(),
            count: 0,
        }
    }

    /// Number of matches written so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Finishes, flushing and returning the writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> ResultSink for SerializeSink<W> {
    fn push(&mut self, store: &Store, node: NodeId) {
        self.buf.clear();
        serialize_node_into(store, node, &mut self.buf);
        self.buf.push('\n');
        self.out
            .write_all(self.buf.as_bytes())
            .expect("sink writer failed");
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn sample() -> crate::Tree {
        TreeBuilder::elem("doc")
            .child(TreeBuilder::elem("a").text("1"))
            .child(TreeBuilder::elem("a").text("2"))
            .build()
    }

    #[test]
    fn collect_sink_preserves_delivery_order() {
        let t = sample();
        let mut sink = CollectSink::new();
        for c in t.store.children_iter(t.root) {
            sink.push(&t.store, c);
        }
        assert_eq!(sink.nodes().len(), 2);
        assert_eq!(sink.into_nodes(), t.store.children(t.root));
    }

    #[test]
    fn count_sink_counts_without_retaining() {
        let t = sample();
        let mut sink = CountSink::new();
        for c in t.store.children_iter(t.root) {
            sink.push(&t.store, c);
        }
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn serialize_sink_writes_one_line_per_match() {
        let t = sample();
        let mut sink = SerializeSink::new(Vec::new());
        for c in t.store.children_iter(t.root) {
            sink.push(&t.store, c);
        }
        assert_eq!(sink.count(), 2);
        let out = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert_eq!(out, "<a>1</a>\n<a>2</a>\n");
    }
}
