//! Trees `t = (σ, l_t)`: a store plus a distinguished root location.

use crate::node::NodeId;
use crate::store::Store;

/// A tree `t = (σ, l_t)` — a store together with a root location.
#[derive(Clone, Debug)]
pub struct Tree {
    /// The underlying store `σ`.
    pub store: Store,
    /// The root location `l_t`.
    pub root: NodeId,
}

impl Tree {
    /// Wraps a store and a root location into a tree.
    pub fn new(store: Store, root: NodeId) -> Self {
        Tree { store, root }
    }

    /// Builds a single-element tree `<tag/>`.
    pub fn leaf(tag: impl AsRef<str>) -> Self {
        let mut store = Store::new();
        let root = store.new_element(tag, vec![]);
        Tree { store, root }
    }

    /// Number of nodes reachable from the root.
    pub fn size(&self) -> usize {
        self.store.subtree_size(self.root)
    }

    /// The tag of the root element.
    pub fn root_tag(&self) -> Option<&str> {
        self.store.tag(self.root)
    }

    /// All locations reachable from the root, in document order.
    pub fn reachable(&self) -> Vec<NodeId> {
        self.store.descendants_or_self(self.root)
    }

    /// Serializes the tree to an XML string.
    pub fn to_xml(&self) -> String {
        crate::serializer::serialize_tree(self)
    }

    /// Returns `true` if the two trees are value equivalent (isomorphic up to
    /// locations), i.e. `(σ, l_t) ≅ (σ', l_t')`.
    pub fn value_equiv(&self, other: &Tree) -> bool {
        crate::equiv::value_equiv(&self.store, self.root, &other.store, other.root)
    }

    /// Freezes the underlying store into an immutable shared base so
    /// [`snapshot`](Self::snapshot) is O(1) (see [`Store::freeze`]).
    pub fn freeze(&mut self) {
        self.store.freeze();
    }

    /// A copy-on-write snapshot of this tree: observationally identical to a
    /// clone, sharing the frozen base store (see [`Store::snapshot`]).
    pub fn snapshot(&self) -> Tree {
        Tree {
            store: self.store.snapshot(),
            root: self.root,
        }
    }
}

/// A convenient builder for hand-constructing small trees in tests and
/// examples.
///
/// ```
/// use qui_xmlstore::TreeBuilder;
/// let t = TreeBuilder::elem("doc")
///     .child(TreeBuilder::elem("a").child(TreeBuilder::elem("c")))
///     .child(TreeBuilder::elem("b").text("hello"))
///     .build();
/// assert_eq!(t.size(), 5);
/// assert_eq!(t.root_tag(), Some("doc"));
/// ```
#[derive(Clone, Debug)]
pub struct TreeBuilder {
    kind: BuilderKind,
}

#[derive(Clone, Debug)]
enum BuilderKind {
    Element {
        tag: String,
        children: Vec<TreeBuilder>,
    },
    Text(String),
}

impl TreeBuilder {
    /// Starts an element node.
    pub fn elem(tag: impl Into<String>) -> Self {
        TreeBuilder {
            kind: BuilderKind::Element {
                tag: tag.into(),
                children: Vec::new(),
            },
        }
    }

    /// Creates a standalone text node.
    pub fn text_node(value: impl Into<String>) -> Self {
        TreeBuilder {
            kind: BuilderKind::Text(value.into()),
        }
    }

    /// Appends a child builder.
    pub fn child(mut self, c: TreeBuilder) -> Self {
        if let BuilderKind::Element { children, .. } = &mut self.kind {
            children.push(c);
        }
        self
    }

    /// Appends a text child.
    pub fn text(self, value: impl Into<String>) -> Self {
        self.child(TreeBuilder::text_node(value))
    }

    /// Materializes the builder into a [`Tree`].
    pub fn build(self) -> Tree {
        let mut store = Store::new();
        let root = self.build_into(&mut store);
        Tree { store, root }
    }

    /// Materializes the builder into an existing store, returning the root.
    pub fn build_into(self, store: &mut Store) -> NodeId {
        match self.kind {
            BuilderKind::Text(s) => store.new_text(s),
            BuilderKind::Element { tag, children } => {
                let kids: Vec<NodeId> = children.into_iter().map(|c| c.build_into(store)).collect();
                store.new_element(tag, kids)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_expected_shape() {
        let t = TreeBuilder::elem("doc")
            .child(TreeBuilder::elem("a").child(TreeBuilder::elem("c")))
            .child(TreeBuilder::elem("b").text("hi"))
            .build();
        assert_eq!(t.root_tag(), Some("doc"));
        assert_eq!(t.size(), 5);
        let kids = t.store.children(t.root);
        assert_eq!(t.store.tag(kids[0]), Some("a"));
        assert_eq!(t.store.tag(kids[1]), Some("b"));
    }

    #[test]
    fn leaf_tree() {
        let t = Tree::leaf("x");
        assert_eq!(t.size(), 1);
        assert_eq!(t.root_tag(), Some("x"));
    }

    #[test]
    fn value_equiv_of_builders() {
        let t1 = TreeBuilder::elem("a").text("x").build();
        let t2 = TreeBuilder::elem("a").text("x").build();
        let t3 = TreeBuilder::elem("a").text("y").build();
        assert!(t1.value_equiv(&t2));
        assert!(!t1.value_equiv(&t3));
    }
}
