//! Decoding helpers shared by the in-memory parser ([`crate::parser`]) and
//! the streaming parser ([`crate::streaming`]).
//!
//! Both parsers accept the same XML subset and must agree byte-for-byte on
//! how character data and attributes are interpreted, so the entity decoding
//! and the `@name`-children attribute encoding live here in one place instead
//! of being duplicated per parser.

use crate::node::NodeId;
use crate::store::Store;

/// Decodes the five predefined XML entities.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Returns `true` for the bytes allowed in element and attribute names by
/// both parsers (a pragmatic subset of the XML name production).
pub fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

/// Converts parsed `(name, value)` attribute pairs into leading `@name`
/// children in `store`, the element-only encoding of the §7 attribute
/// extension: each attribute becomes an element tagged `@name` whose content
/// is the attribute value as a text node (empty values produce an empty
/// `@name` element). Values are expected to be entity-decoded already.
///
/// Returns an empty list when `keep_attributes` is off, so parsers can call
/// it unconditionally.
pub fn attribute_children(
    store: &mut Store,
    attrs: Vec<(String, String)>,
    keep_attributes: bool,
) -> Vec<NodeId> {
    if !keep_attributes {
        return Vec::new();
    }
    attrs
        .into_iter()
        .map(|(name, value)| {
            let content = if value.is_empty() {
                vec![]
            } else {
                vec![store.new_text(value)]
            };
            store.new_element(format!("@{name}"), content)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_all_five_entities() {
        assert_eq!(
            decode_entities("&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;"),
            "<a> & \"b\" 'c'"
        );
        assert_eq!(decode_entities("plain"), "plain");
    }

    #[test]
    fn name_bytes_accept_xmlish_names() {
        for b in *b"aZ09_-.:" {
            assert!(is_name_byte(b), "{}", b as char);
        }
        for b in *b" <>=\"'/&" {
            assert!(!is_name_byte(b), "{}", b as char);
        }
    }

    #[test]
    fn attribute_children_encode_and_respect_the_flag() {
        let mut s = Store::new();
        let attrs = vec![
            ("id".to_string(), "7".to_string()),
            ("flag".to_string(), String::new()),
        ];
        assert!(attribute_children(&mut s, attrs.clone(), false).is_empty());
        let kids = attribute_children(&mut s, attrs, true);
        assert_eq!(kids.len(), 2);
        assert_eq!(s.tag(kids[0]), Some("@id"));
        assert_eq!(s.text_value(s.children(kids[0])[0]), Some("7"));
        assert_eq!(s.tag(kids[1]), Some("@flag"));
        assert!(s.children(kids[1]).is_empty());
    }
}
