//! Streaming (pull) XML parsing from any [`std::io::Read`] source.
//!
//! The in-memory parser of [`crate::parser`] needs the whole document as a
//! `&str` before it starts, which caps the document sizes the Fig. 3.c
//! experiment can reach. This module parses the same XML subset *incremen-
//! tally*: bytes are pulled from the reader in fixed-size chunks into a small
//! sliding window, tokens are consumed as they complete, and the [`Tree`] is
//! built element by element with an explicit stack — the input text is never
//! materialized and memory stays `O(tree + chunk)`.
//!
//! On top of plain parsing, the streaming path supports **streamed
//! projection** (paper §3.4): a [`PathSpec`] describes, as root-to-node label
//! paths, which regions of the document a query may need; subtrees outside
//! the spec are recognized *during* the parse and dropped before a single
//! node is allocated for them. This turns projection savings into *peak
//! memory* savings, not just node-count savings — the pruned subtrees never
//! exist. [`project_paths`] applies the identical top-down semantics to an
//! already-parsed tree and is the reference the property tests compare
//! against; `qui-core`'s `ChainProjector::path_spec` converts its
//! chain-based `ProjectionSpec` into a [`PathSpec`].
//!
//! Both parsers accept the same documents, produce value-equivalent trees,
//! and reject malformed input with the same error message at the same byte
//! offset; the shared decoding helpers live in [`crate::decode`].

use crate::decode::{attribute_children, decode_entities, is_name_byte};
use crate::node::NodeId;
use crate::parser::ParseError;
use crate::sink::ResultSink;
use crate::store::Store;
use crate::symbols::Sym;
use crate::tree::Tree;
use std::collections::{BTreeSet, HashSet};
use std::io::Read;

/// The label under which text nodes participate in path specs (mirrors
/// `qui-schema`'s `TEXT_NAME`, which this crate cannot depend on).
pub const TEXT_LABEL: &str = "#text";

/// Default refill granularity of the sliding input window.
pub const DEFAULT_CHUNK_SIZE: usize = 8 * 1024;

// ---------------------------------------------------------------------------
// Path specs — label-path projections
// ---------------------------------------------------------------------------

/// A projection described by root-to-node **label paths**.
///
/// A node at label path `p` (the tags from the root down to the node, text
/// nodes contributing [`TEXT_LABEL`]) is kept iff
///
/// * `p` is a prefix of some chain in `keep_paths ∪ keep_subtrees` (the node
///   lies *on the way* to needed nodes), or
/// * some chain in `keep_subtrees` is a prefix of `p` (the node lies *inside*
///   a region that is kept whole), or
/// * its own label is not in `known_labels` (the schema says nothing about
///   it, so it is kept conservatively, together with its whole subtree).
///
/// Everything else is pruned with its entire subtree. The prefix conditions
/// are monotone along root-to-leaf paths, which is exactly what lets a
/// streaming parser decide *keep / descend / drop whole subtree* the moment
/// it sees a start tag. Unknown labels nested strictly inside pruned regions
/// are pruned with them (the stream never looks inside a dropped subtree);
/// valid documents have no unknown labels, so this only matters for
/// documents that do not conform to the schema the spec came from.
#[derive(Clone, Debug, Default)]
pub struct PathSpec {
    /// Chains whose prefixes must be kept (paths leading to needed nodes).
    pub keep_paths: BTreeSet<Vec<String>>,
    /// Chains whose entire subtrees must be kept.
    pub keep_subtrees: BTreeSet<Vec<String>>,
    /// The labels the schema knows; anything else is kept conservatively.
    /// [`TEXT_LABEL`] is always treated as known.
    pub known_labels: HashSet<String>,
}

fn is_prefix(a: &[String], b: &[String]) -> bool {
    a.len() <= b.len() && b[..a.len()] == *a
}

impl PathSpec {
    /// Returns `true` when `path` is a prefix of some kept chain, i.e. the
    /// node may lead to needed nodes and the stream must descend into it.
    pub fn on_path(&self, path: &[String]) -> bool {
        self.keep_paths
            .iter()
            .chain(self.keep_subtrees.iter())
            .any(|c| is_prefix(path, c))
    }

    /// Returns `true` when `path` lies inside a subtree that is kept whole.
    pub fn in_subtree(&self, path: &[String]) -> bool {
        self.keep_subtrees.iter().any(|c| is_prefix(c, path))
    }

    /// Returns `true` when the label is known to the schema the spec was
    /// derived from.
    pub fn is_known(&self, label: &str) -> bool {
        label == TEXT_LABEL || self.known_labels.contains(label)
    }

    /// Returns `true` when a text child of an element at `parent_path` is
    /// kept — equivalent to checking `parent_path + [TEXT_LABEL]` with
    /// [`Self::in_subtree`]`/`[`Self::on_path`], but without materializing
    /// the extended path (this runs once per text run of a streaming parse).
    pub fn keeps_text_child(&self, parent_path: &[String]) -> bool {
        self.in_subtree(parent_path)
            || self
                .keep_paths
                .iter()
                .chain(self.keep_subtrees.iter())
                .any(|c| {
                    c.len() > parent_path.len()
                        && c[..parent_path.len()] == *parent_path
                        && c[parent_path.len()] == TEXT_LABEL
                })
    }

    /// Total number of chains (size indicator for reports).
    pub fn len(&self) -> usize {
        self.keep_paths.len() + self.keep_subtrees.len()
    }

    /// Returns `true` when the spec keeps nothing beyond the root.
    pub fn is_empty(&self) -> bool {
        self.keep_paths.is_empty() && self.keep_subtrees.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Path automata — implicit label-path projections
// ---------------------------------------------------------------------------

/// A projection whose kept label paths are described *implicitly* by a small
/// automaton instead of an enumerated [`PathSpec`].
///
/// On recursive schemas the set of kept root-to-node paths can be huge or
/// infinite (a descendant-axis view over a recursive clique keeps `a.b.a.b…`
/// to any depth), so enumerating chains is hopeless — but the *decision*
/// "may this path lead to a needed node?" only needs the automaton:
/// `qui-core` compiles its chain-DAGs (one state per reachable (type, depth)
/// pair, transitions labeled with the child's label) into this type. The
/// keep semantics mirror [`PathSpec`] exactly:
///
/// * a path is *on-path* when the automaton can still reach an end state
///   after consuming it (the node may lead to needed nodes — descend),
/// * a path is *in-subtree* once any consumed prefix lands on a state
///   flagged subtree-keep (returned elements embody their descendants),
/// * labels outside `known_labels` are kept conservatively, as in
///   [`PathSpec`].
///
/// Both properties are monotone along root-to-leaf paths, so the streaming
/// parser can make the same keep / descend / drop decision at a start tag as
/// it does for an explicit spec.
#[derive(Clone, Debug, Default)]
pub struct PathAutomaton {
    /// Start states with their labels: the document element's label must
    /// match one of them (pairs of label and state).
    pub starts: Vec<(String, u32)>,
    /// Per-state outgoing transitions: (child label, target state).
    pub transitions: Vec<Vec<(String, u32)>>,
    /// Per-state: an end state is reachable from here (including itself) —
    /// the *on-path* flag.
    pub reaches_end: Vec<bool>,
    /// Per-state: chains ending here keep their whole subtree.
    pub subtree: Vec<bool>,
    /// The labels the schema knows; anything else is kept conservatively.
    /// [`TEXT_LABEL`] is always treated as known.
    pub known_labels: HashSet<String>,
}

impl PathAutomaton {
    /// Runs the automaton over `path`, returning `(on_path, in_subtree)` in
    /// a single simulation — the streaming hot path uses this so each start
    /// tag pays one pass, not one per flag.
    pub fn classify_path(&self, path: &[String]) -> (bool, bool) {
        self.classify(path, None)
    }

    /// Runs the automaton over `path` (plus an optional extra trailing
    /// label), returning `(on_path, in_subtree)` for the extended path.
    fn classify(&self, path: &[String], extra: Option<&str>) -> (bool, bool) {
        let mut states: Vec<u32> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        let mut in_subtree = false;
        let labels = path.iter().map(String::as_str).chain(extra).enumerate();
        for (i, label) in labels {
            next.clear();
            if i == 0 {
                for (l, st) in &self.starts {
                    if l == label && !next.contains(st) {
                        next.push(*st);
                    }
                }
            } else {
                for &st in &states {
                    for (l, t) in &self.transitions[st as usize] {
                        if l == label && !next.contains(t) {
                            next.push(*t);
                        }
                    }
                }
            }
            std::mem::swap(&mut states, &mut next);
            if states.is_empty() {
                return (false, in_subtree);
            }
            if !in_subtree && states.iter().any(|&s| self.subtree[s as usize]) {
                in_subtree = true;
            }
        }
        (
            in_subtree || states.iter().any(|&s| self.reaches_end[s as usize]),
            in_subtree,
        )
    }

    /// Returns `true` when the automaton can still reach an end after
    /// consuming `path` — the node may lead to needed nodes.
    pub fn on_path(&self, path: &[String]) -> bool {
        self.classify(path, None).0
    }

    /// Returns `true` when `path` lies inside a subtree that is kept whole.
    pub fn in_subtree(&self, path: &[String]) -> bool {
        self.classify(path, None).1
    }

    /// Returns `true` when the label is known to the schema the automaton
    /// was compiled from.
    pub fn is_known(&self, label: &str) -> bool {
        label == TEXT_LABEL || self.known_labels.contains(label)
    }

    /// Returns `true` when a text child of an element at `parent_path` is
    /// kept.
    pub fn keeps_text_child(&self, parent_path: &[String]) -> bool {
        let (on_path, in_subtree) = self.classify(parent_path, Some(TEXT_LABEL));
        on_path || in_subtree
    }

    /// Number of automaton states (size indicator for reports).
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` when the automaton keeps nothing beyond the root.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
            || !self
                .reaches_end
                .iter()
                .chain(self.subtree.iter())
                .any(|&b| b)
    }
}

/// Incremental simulation of a [`PathAutomaton`] along a root-to-node path.
///
/// [`PathAutomaton::classify_path`] re-simulates the whole path from the
/// root — `O(depth · states)` per call, which the streaming parser used to
/// pay at *every* start tag. The cursor instead keeps one state-set frame
/// per open element: [`push`](Self::push) steps the top frame's states over
/// one label (`O(states · transitions-per-label)`, amortized `O(states)`)
/// and [`pop`](Self::pop) restores the parent frame when the element
/// closes. The flags it reports are exactly those of a full re-simulation
/// of the current path (`tests/streaming_xmark.rs` asserts the equivalence
/// on random walks).
#[derive(Clone, Debug, Default)]
pub struct AutomatonCursor {
    frames: Vec<CursorFrame>,
}

/// One open element's simulation state.
#[derive(Clone, Debug)]
struct CursorFrame {
    /// The automaton states reachable by the path down to this element
    /// (empty once the automaton has died on the path — deeper pushes stay
    /// dead, mirroring `classify`'s early return).
    states: Vec<u32>,
    /// Whether any consumed prefix landed on a subtree-keep state
    /// (monotone along the path).
    in_subtree: bool,
}

impl AutomatonCursor {
    /// A cursor at the document root (empty path).
    pub fn new() -> Self {
        AutomatonCursor::default()
    }

    /// Number of labels currently on the path.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Steps the cursor down into a child with the given label and returns
    /// the `(on_path, in_subtree)` flags of the extended path — identical
    /// to [`PathAutomaton::classify_path`] on the full path.
    pub fn push(&mut self, auto: &PathAutomaton, label: &str) -> (bool, bool) {
        let (parent_states, parent_in): (&[u32], bool) = match self.frames.last() {
            Some(f) => (&f.states, f.in_subtree),
            None => (&[], false),
        };
        let mut states: Vec<u32> = Vec::new();
        if self.frames.is_empty() {
            for (l, st) in &auto.starts {
                if l == label && !states.contains(st) {
                    states.push(*st);
                }
            }
        } else {
            for &st in parent_states {
                for (l, t) in &auto.transitions[st as usize] {
                    if l == label && !states.contains(t) {
                        states.push(*t);
                    }
                }
            }
        }
        if states.is_empty() {
            self.frames.push(CursorFrame {
                states,
                in_subtree: parent_in,
            });
            return (false, parent_in);
        }
        let in_subtree = parent_in || states.iter().any(|&s| auto.subtree[s as usize]);
        let on_path = in_subtree || states.iter().any(|&s| auto.reaches_end[s as usize]);
        self.frames.push(CursorFrame { states, in_subtree });
        (on_path, in_subtree)
    }

    /// Pushes a frame without simulating — used inside regions whose keep
    /// decision is already final (`Keep::All` / `Keep::Skip` subtrees, and
    /// below schema-unknown labels), where the flags are never consulted;
    /// the frame only keeps the stack aligned with the element depth.
    fn push_dead(&mut self) {
        let in_subtree = self.frames.last().map(|f| f.in_subtree).unwrap_or(false);
        self.frames.push(CursorFrame {
            states: Vec::new(),
            in_subtree,
        });
    }

    /// Steps back up out of the current element.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// The `(on_path, in_subtree)` flags of the current path — identical to
    /// [`PathAutomaton::classify_path`] on the labels pushed so far.
    pub fn flags(&self, auto: &PathAutomaton) -> (bool, bool) {
        match self.frames.last() {
            None => (false, false),
            Some(f) if f.states.is_empty() => (false, f.in_subtree),
            Some(f) => (
                f.in_subtree || f.states.iter().any(|&s| auto.reaches_end[s as usize]),
                f.in_subtree,
            ),
        }
    }

    /// Whether a text child of the current element is kept — identical to
    /// [`PathAutomaton::keeps_text_child`] on the current path, but `O(states)`
    /// instead of a full re-simulation.
    pub fn text_child_kept(&self, auto: &PathAutomaton) -> bool {
        let Some(top) = self.frames.last() else {
            return false;
        };
        if top.in_subtree {
            return true;
        }
        let mut any = false;
        let mut in_subtree = false;
        let mut reaches = false;
        for &st in &top.states {
            for (l, t) in &auto.transitions[st as usize] {
                if l == TEXT_LABEL {
                    any = true;
                    in_subtree |= auto.subtree[*t as usize];
                    reaches |= auto.reaches_end[*t as usize];
                }
            }
        }
        any && (in_subtree || reaches)
    }
}

/// Either way of describing a streamed projection: explicit label paths
/// (materialized chain sets) or the compact automaton (chain-DAGs over
/// recursive schemas, where enumeration would overflow any budget). The
/// streaming parser and [`project_spec`] treat both uniformly.
#[derive(Clone, Debug)]
pub enum Projection {
    /// Enumerated label paths.
    Paths(PathSpec),
    /// Automaton-described label paths.
    Automaton(PathAutomaton),
}

impl From<PathSpec> for Projection {
    fn from(spec: PathSpec) -> Projection {
        Projection::Paths(spec)
    }
}

impl From<PathAutomaton> for Projection {
    fn from(auto: PathAutomaton) -> Projection {
        Projection::Automaton(auto)
    }
}

impl Projection {
    /// See [`PathSpec::on_path`] / [`PathAutomaton::on_path`].
    pub fn on_path(&self, path: &[String]) -> bool {
        match self {
            Projection::Paths(s) => s.on_path(path),
            Projection::Automaton(a) => a.on_path(path),
        }
    }

    /// See [`PathSpec::in_subtree`] / [`PathAutomaton::in_subtree`].
    pub fn in_subtree(&self, path: &[String]) -> bool {
        match self {
            Projection::Paths(s) => s.in_subtree(path),
            Projection::Automaton(a) => a.in_subtree(path),
        }
    }

    /// Both keep flags — `(on_path, in_subtree)` — in one pass; for the
    /// automaton this runs a single simulation instead of one per flag.
    pub fn classify(&self, path: &[String]) -> (bool, bool) {
        match self {
            Projection::Paths(s) => (s.on_path(path), s.in_subtree(path)),
            Projection::Automaton(a) => a.classify_path(path),
        }
    }

    /// See [`PathSpec::is_known`] / [`PathAutomaton::is_known`].
    pub fn is_known(&self, label: &str) -> bool {
        match self {
            Projection::Paths(s) => s.is_known(label),
            Projection::Automaton(a) => a.is_known(label),
        }
    }

    /// See [`PathSpec::keeps_text_child`] /
    /// [`PathAutomaton::keeps_text_child`].
    pub fn keeps_text_child(&self, parent_path: &[String]) -> bool {
        match self {
            Projection::Paths(s) => s.keeps_text_child(parent_path),
            Projection::Automaton(a) => a.keeps_text_child(parent_path),
        }
    }

    /// Size indicator for reports (chains or automaton states).
    pub fn len(&self) -> usize {
        match self {
            Projection::Paths(s) => s.len(),
            Projection::Automaton(a) => a.len(),
        }
    }

    /// Returns `true` when the projection keeps nothing beyond the root.
    pub fn is_empty(&self) -> bool {
        match self {
            Projection::Paths(s) => s.is_empty(),
            Projection::Automaton(a) => a.is_empty(),
        }
    }
}

/// The keep decision for one element and, implicitly, its subtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Keep {
    /// Keep the node and everything below without further checks.
    All,
    /// Keep the node; decide per child.
    Filter,
    /// Drop the node and everything below (still parsed and validated).
    Skip,
}

/// Decides the keep state of an element with label `tag` at `path` (its own
/// label included), given its parent's state.
fn decide(spec: &Projection, parent: Keep, path: &[String], tag: &str) -> Keep {
    match parent {
        Keep::All => Keep::All,
        Keep::Skip => Keep::Skip,
        Keep::Filter => {
            if !spec.is_known(tag) {
                return Keep::All;
            }
            let (on_path, in_subtree) = spec.classify(path);
            if in_subtree {
                Keep::All
            } else if on_path {
                Keep::Filter
            } else {
                Keep::Skip
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration, stats, outcome
// ---------------------------------------------------------------------------

/// Configuration of a streaming parse.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Encode attributes as leading `@name` children (the §7 extension), as
    /// [`crate::parser::parse_xml_keep_attributes`] does. Off by default.
    pub keep_attributes: bool,
    /// When set, subtrees outside the projection are dropped during the
    /// parse.
    pub projection: Option<Projection>,
    /// Refill granularity of the sliding input window.
    pub chunk_size: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            keep_attributes: false,
            projection: None,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl StreamConfig {
    /// A config that projects the stream onto an explicit path spec while
    /// parsing.
    pub fn with_projection(spec: PathSpec) -> Self {
        StreamConfig {
            projection: Some(Projection::Paths(spec)),
            ..Default::default()
        }
    }

    /// A config that projects the stream onto any [`Projection`] (explicit
    /// paths or a compiled automaton) while parsing.
    pub fn with_projection_spec(spec: Projection) -> Self {
        StreamConfig {
            projection: Some(spec),
            ..Default::default()
        }
    }
}

/// Counters describing what a streaming parse did — in particular how much
/// memory it needed relative to the input size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total bytes pulled from the reader.
    pub bytes_read: usize,
    /// Largest size the sliding input window ever reached (the parser's own
    /// working memory; stays `O(chunk)` regardless of document size).
    pub peak_buffer_bytes: usize,
    /// Element nodes encountered in the input (kept or pruned).
    pub elements_parsed: usize,
    /// Significant text runs (and CDATA sections) encountered in the input.
    pub texts_parsed: usize,
    /// Element and text nodes actually materialized in the store
    /// (attribute-encoding `@name` nodes not counted).
    pub nodes_kept: usize,
    /// Nodes parsed but dropped by the projection.
    pub nodes_pruned: usize,
}

/// A parsed tree plus the stats of the parse that produced it.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// The (possibly projected) document.
    pub tree: Tree,
    /// What the parse did.
    pub stats: StreamStats,
}

// ---------------------------------------------------------------------------
// The sliding byte window
// ---------------------------------------------------------------------------

struct ByteStream<R: Read> {
    reader: R,
    buf: Vec<u8>,
    /// Index into `buf` of the next unconsumed byte.
    pos: usize,
    /// Absolute offset of `buf[0]` in the input.
    base: usize,
    eof: bool,
    chunk: usize,
    bytes_read: usize,
    peak_buffer: usize,
}

impl<R: Read> ByteStream<R> {
    fn new(reader: R, chunk: usize) -> Self {
        ByteStream {
            reader,
            buf: Vec::new(),
            pos: 0,
            base: 0,
            eof: false,
            chunk: chunk.max(16),
            bytes_read: 0,
            peak_buffer: 0,
        }
    }

    /// Absolute byte offset of the next unconsumed byte (for errors).
    fn abs(&self) -> usize {
        self.base + self.pos
    }

    fn io_error(&self, e: std::io::Error) -> ParseError {
        ParseError {
            message: format!("read error: {e}"),
            position: self.abs(),
        }
    }

    /// Makes at least `n` bytes available past `pos`, unless the input ends
    /// first. Returns the number of available bytes.
    fn ensure(&mut self, n: usize) -> Result<usize, ParseError> {
        while self.buf.len() - self.pos < n && !self.eof {
            // Compact the consumed prefix before growing the window.
            if self.pos > 0 {
                self.buf.drain(..self.pos);
                self.base += self.pos;
                self.pos = 0;
            }
            let old_len = self.buf.len();
            self.buf.resize(old_len + self.chunk, 0);
            match self.reader.read(&mut self.buf[old_len..]) {
                Ok(0) => {
                    self.buf.truncate(old_len);
                    self.eof = true;
                }
                Ok(k) => {
                    self.buf.truncate(old_len + k);
                    self.bytes_read += k;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.buf.truncate(old_len);
                }
                Err(e) => {
                    self.buf.truncate(old_len);
                    return Err(self.io_error(e));
                }
            }
            self.peak_buffer = self.peak_buffer.max(self.buf.len());
        }
        Ok(self.buf.len() - self.pos)
    }

    fn peek(&mut self) -> Result<Option<u8>, ParseError> {
        self.ensure(1)?;
        Ok(self.buf.get(self.pos).copied())
    }

    fn bump(&mut self) -> Result<Option<u8>, ParseError> {
        let b = self.peek()?;
        if b.is_some() {
            self.pos += 1;
        }
        Ok(b)
    }

    /// Returns `true` when the unconsumed input starts with `s` (without
    /// consuming it).
    fn starts_with(&mut self, s: &str) -> Result<bool, ParseError> {
        let n = s.len();
        if self.ensure(n)? < n {
            return Ok(false);
        }
        Ok(&self.buf[self.pos..self.pos + n] == s.as_bytes())
    }

    /// Consumes `s` if the input starts with it.
    fn eat(&mut self, s: &str) -> Result<bool, ParseError> {
        if self.starts_with(s)? {
            self.pos += s.len();
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Consumes input up to and including `end`; consumes everything when
    /// `end` never occurs (mirroring the in-memory parser). When `collect` is
    /// given, the bytes before `end` are appended to it.
    fn consume_until(
        &mut self,
        end: &str,
        mut collect: Option<&mut Vec<u8>>,
    ) -> Result<(), ParseError> {
        loop {
            if self.eat(end)? {
                return Ok(());
            }
            match self.bump()? {
                None => return Ok(()),
                Some(b) => {
                    if let Some(out) = collect.as_deref_mut() {
                        out.push(b);
                    }
                }
            }
        }
    }

    fn skip_ws(&mut self) -> Result<(), ParseError> {
        while matches!(self.peek()?, Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The streaming parser
// ---------------------------------------------------------------------------

/// One open element on the parse stack. Tag names live as interned symbols
/// — no per-element `String` on the hot path.
struct Frame {
    sym: Sym,
    children: Vec<NodeId>,
    keep: Keep,
    /// This element is a *match root*: the projection switched from
    /// filtering to keeping the whole subtree at this node, so it is one of
    /// the nodes the projection was asked for (delivered to the sink when
    /// the element closes).
    match_root: bool,
}

struct StreamParser<'s, R: Read> {
    bs: ByteStream<R>,
    store: Store,
    keep_attributes: bool,
    projection: Option<Projection>,
    /// Root-to-current label path; maintained only for explicit
    /// [`Projection::Paths`] specs.
    path: Vec<String>,
    /// Incremental automaton state-set stack; maintained only for
    /// [`Projection::Automaton`] specs, so each start tag costs `O(states)`
    /// instead of re-simulating the whole root-to-node path.
    cursor: AutomatonCursor,
    stack: Vec<Frame>,
    stats: StreamStats,
    /// Reused buffer for the name token under the cursor (tag or attribute
    /// name); never allocated per token.
    scratch: Vec<u8>,
    /// Receives match roots (subtree-keep elements and matched text nodes)
    /// as they complete.
    sink: Option<&'s mut dyn ResultSink>,
}

/// Parses an XML document from a reader into a [`Tree`], ignoring attributes
/// — the streaming equivalent of [`crate::parser::parse_xml`].
pub fn parse_xml_reader<R: Read>(reader: R) -> Result<Tree, ParseError> {
    Ok(parse_xml_stream(reader, &StreamConfig::default())?.tree)
}

/// Parses an XML document from a reader with full control over attribute
/// keeping, projection and buffering.
pub fn parse_xml_stream<R: Read>(
    reader: R,
    config: &StreamConfig,
) -> Result<StreamOutcome, ParseError> {
    stream_impl(reader, config, None)
}

/// Like [`parse_xml_stream`], additionally delivering every *match root* to
/// `sink` the moment it completes: elements where the projection switched to
/// keeping the whole subtree (the nodes the projection was asked for) and
/// text nodes kept by an explicit text-path. With a counting or serializing
/// sink this answers projection queries without ever materializing the
/// result sequence.
pub fn parse_xml_stream_sink<R: Read>(
    reader: R,
    config: &StreamConfig,
    sink: &mut dyn ResultSink,
) -> Result<StreamOutcome, ParseError> {
    stream_impl(reader, config, Some(sink))
}

fn stream_impl<R: Read>(
    reader: R,
    config: &StreamConfig,
    sink: Option<&mut dyn ResultSink>,
) -> Result<StreamOutcome, ParseError> {
    let mut parser = StreamParser {
        bs: ByteStream::new(reader, config.chunk_size),
        store: Store::new(),
        keep_attributes: config.keep_attributes,
        projection: config.projection.clone(),
        path: Vec::new(),
        cursor: AutomatonCursor::new(),
        stack: Vec::new(),
        stats: StreamStats::default(),
        scratch: Vec::new(),
        sink,
    };
    parser.skip_prolog()?;
    let root = parser.parse_document_element()?;
    parser.skip_misc()?;
    if parser.bs.peek()?.is_some() {
        return Err(parser.error("trailing content after document element"));
    }
    parser.stats.bytes_read = parser.bs.bytes_read;
    parser.stats.peak_buffer_bytes = parser.bs.peak_buffer;
    parser.store.compact();
    Ok(StreamOutcome {
        tree: Tree::new(parser.store, root),
        stats: parser.stats,
    })
}

impl<R: Read> StreamParser<'_, R> {
    fn error(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            position: self.bs.abs(),
        }
    }

    /// Skips the XML declaration, doctype, comments and whitespace before
    /// the document element.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.bs.skip_ws()?;
            if self.bs.eat("<?")? {
                self.bs.consume_until("?>", None)?;
            } else if self.bs.eat("<!--")? {
                self.bs.consume_until("-->", None)?;
            } else if self.bs.eat("<!DOCTYPE")? || self.bs.eat("<!doctype")? {
                // Skip a possibly bracketed internal subset.
                let mut depth = 0usize;
                while let Some(b) = self.bs.bump()? {
                    match b {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => break,
                        _ => {}
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments, processing instructions and whitespace after the
    /// document element.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.bs.skip_ws()?;
            if self.bs.eat("<!--")? {
                self.bs.consume_until("-->", None)?;
            } else if self.bs.eat("<?")? {
                self.bs.consume_until("?>", None)?;
            } else {
                return Ok(());
            }
        }
    }

    /// Reads the name token under the cursor into the reused scratch buffer
    /// — no allocation per token.
    fn parse_name_scratch(&mut self) -> Result<(), ParseError> {
        self.scratch.clear();
        while let Some(b) = self.bs.peek()? {
            if is_name_byte(b) {
                self.scratch.push(b);
                self.bs.pos += 1;
            } else {
                break;
            }
        }
        if self.scratch.is_empty() {
            return Err(self.error("expected a name"));
        }
        Ok(())
    }

    /// The scratch buffer as a name string (name bytes are always ASCII).
    fn scratch_str(&self) -> &str {
        std::str::from_utf8(&self.scratch).expect("name bytes are ASCII")
    }

    /// Consumes attributes up to (but not including) `>` or `/>`. The pairs
    /// are collected only when `wanted` (i.e. the element is kept and
    /// attribute keeping is on); otherwise they are validated and discarded.
    fn parse_attributes(&mut self, wanted: bool) -> Result<Vec<(String, String)>, ParseError> {
        let mut attrs = Vec::new();
        loop {
            self.bs.skip_ws()?;
            match self.bs.peek()? {
                Some(b'>') | Some(b'/') | None => return Ok(attrs),
                _ => {
                    self.parse_name_scratch()?;
                    let name = wanted.then(|| self.scratch_str().to_string());
                    self.bs.skip_ws()?;
                    let mut value = Vec::new();
                    if self.bs.peek()? == Some(b'=') {
                        self.bs.pos += 1;
                        self.bs.skip_ws()?;
                        match self.bs.peek()? {
                            Some(q @ (b'"' | b'\'')) => {
                                self.bs.pos += 1;
                                while let Some(b) = self.bs.bump()? {
                                    if b == q {
                                        break;
                                    }
                                    value.push(b);
                                }
                            }
                            _ => return Err(self.error("expected quoted attribute value")),
                        }
                    }
                    if let Some(name) = name {
                        let value = String::from_utf8_lossy(&value).into_owned();
                        attrs.push((name, decode_entities(&value)));
                    }
                }
            }
        }
    }

    /// The keep state of the enclosing element ([`Keep::Filter`] at the
    /// document root so the root is always kept, as in [`crate::project`]).
    fn parent_keep(&self) -> Keep {
        self.stack.last().map(|f| f.keep).unwrap_or(Keep::Filter)
    }

    /// Pushes the tag in the scratch buffer onto the projection tracking
    /// state and decides the keep state of the element about to start.
    /// Explicit path specs re-classify the materialized label path; the
    /// automaton steps its incremental state-set stack one label
    /// (`O(states)` instead of re-simulating the whole root-to-node path).
    /// The document element is never skipped.
    fn enter_element(&mut self) -> Keep {
        let parent = self.parent_keep();
        let keep = match &self.projection {
            None => Keep::Filter,
            Some(spec @ Projection::Paths(_)) => {
                self.path.push(
                    std::str::from_utf8(&self.scratch)
                        .expect("ASCII")
                        .to_string(),
                );
                let tag = self.path.last().expect("just pushed");
                decide(spec, parent, &self.path, tag)
            }
            Some(Projection::Automaton(auto)) => match parent {
                Keep::All | Keep::Skip => {
                    self.cursor.push_dead();
                    parent
                }
                Keep::Filter => {
                    let tag = std::str::from_utf8(&self.scratch).expect("ASCII");
                    if !auto.is_known(tag) {
                        self.cursor.push_dead();
                        Keep::All
                    } else {
                        let (on_path, in_subtree) = self.cursor.push(auto, tag);
                        if in_subtree {
                            Keep::All
                        } else if on_path {
                            Keep::Filter
                        } else {
                            Keep::Skip
                        }
                    }
                }
            },
        };
        if self.stack.is_empty() && keep == Keep::Skip {
            Keep::Filter
        } else {
            keep
        }
    }

    /// Pops the projection tracking state when an element closes.
    fn exit_element(&mut self) {
        match &self.projection {
            None => {}
            Some(Projection::Paths(_)) => {
                self.path.pop();
            }
            Some(Projection::Automaton(_)) => self.cursor.pop(),
        }
    }

    /// Parses one element start tag (the leading `<` not yet consumed).
    /// Returns the completed node for self-closing elements, `None` when a
    /// frame was pushed (or the element is being skipped).
    fn parse_open_tag(&mut self) -> Result<Option<Option<NodeId>>, ParseError> {
        self.bs.pos += 1; // consume '<'
        self.parse_name_scratch()?;
        self.stats.elements_parsed += 1;
        let parent = self.parent_keep();
        let keep = self.enter_element();
        // The projection switched from filtering to whole-subtree keeping
        // here: this element is one of the nodes the projection asked for.
        let match_root = keep == Keep::All && parent == Keep::Filter;
        let sym = {
            let name = std::str::from_utf8(&self.scratch).expect("name bytes are ASCII");
            self.store.intern(name)
        };
        let wanted = keep != Keep::Skip;
        let attrs = self.parse_attributes(wanted && self.keep_attributes)?;
        match self.bs.peek()? {
            Some(b'/') => {
                self.bs.pos += 1;
                if self.bs.peek()? != Some(b'>') {
                    return Err(self.error("expected '>' after '/'"));
                }
                self.bs.pos += 1;
                self.exit_element();
                if wanted {
                    let children = attribute_children(&mut self.store, attrs, self.keep_attributes);
                    self.stats.nodes_kept += 1;
                    let node = self.store.new_element_sym(sym, children);
                    if match_root {
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.push(&self.store, node);
                        }
                    }
                    Ok(Some(Some(node)))
                } else {
                    self.stats.nodes_pruned += 1;
                    Ok(Some(None))
                }
            }
            Some(b'>') => {
                self.bs.pos += 1;
                let children = if wanted {
                    attribute_children(&mut self.store, attrs, self.keep_attributes)
                } else {
                    Vec::new()
                };
                self.stack.push(Frame {
                    sym,
                    children,
                    keep,
                    match_root,
                });
                Ok(None)
            }
            _ => Err(self.error("expected '>' or '/>'")),
        }
    }

    /// Parses one closing tag (the leading `</` already consumed), pops the
    /// frame and returns the completed node (`None` when skipped).
    fn parse_close_tag(&mut self) -> Result<Option<NodeId>, ParseError> {
        self.parse_name_scratch()?;
        let frame = self.stack.pop().expect("close tag outside any element");
        // The open tag interned its name, so a matching close tag must
        // already be in the table — symbol comparison, no allocation.
        if self.store.symbols().lookup(self.scratch_str()) != Some(frame.sym) {
            return Err(self.error(&format!(
                "mismatched closing tag: expected </{}>, found </{}>",
                self.store.symbols().name(frame.sym),
                self.scratch_str()
            )));
        }
        self.bs.skip_ws()?;
        if self.bs.peek()? != Some(b'>') {
            return Err(self.error("expected '>' in closing tag"));
        }
        self.bs.pos += 1;
        self.exit_element();
        if frame.keep == Keep::Skip {
            self.stats.nodes_pruned += 1;
            Ok(None)
        } else {
            self.stats.nodes_kept += 1;
            let node = self.store.new_element_sym(frame.sym, frame.children);
            if frame.match_root {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.push(&self.store, node);
                }
            }
            Ok(Some(node))
        }
    }

    /// Attaches a completed child node to the innermost open element.
    fn attach(&mut self, node: Option<NodeId>) {
        if let (Some(node), Some(frame)) = (node, self.stack.last_mut()) {
            if frame.keep != Keep::Skip {
                frame.children.push(node);
            }
        }
    }

    /// Whether a text node in the current position would be kept.
    fn text_wanted(&self) -> bool {
        match self.parent_keep() {
            Keep::All => true,
            Keep::Skip => false,
            Keep::Filter => match &self.projection {
                None => true,
                Some(spec @ Projection::Paths(_)) => spec.keeps_text_child(&self.path),
                Some(Projection::Automaton(auto)) => self.cursor.text_child_kept(auto),
            },
        }
    }

    /// Parses the document element (and everything inside it), returning its
    /// node.
    fn parse_document_element(&mut self) -> Result<NodeId, ParseError> {
        self.bs.skip_ws()?;
        if self.bs.peek()? != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        if let Some(done) = self.parse_open_tag()? {
            // A self-closing document element; the root is never skipped.
            return Ok(done.expect("document element is always kept"));
        }
        loop {
            if self.bs.eat("</")? {
                let node = self.parse_close_tag()?;
                if self.stack.is_empty() {
                    return Ok(node.expect("document element is always kept"));
                }
                self.attach(node);
            } else if self.bs.eat("<!--")? {
                self.bs.consume_until("-->", None)?;
            } else if self.bs.eat("<?")? {
                self.bs.consume_until("?>", None)?;
            } else if self.bs.eat("<![CDATA[")? {
                let wanted = self.text_wanted();
                self.stats.texts_parsed += 1;
                let mut raw = Vec::new();
                self.bs.consume_until("]]>", wanted.then_some(&mut raw))?;
                if wanted {
                    let text = String::from_utf8_lossy(&raw).into_owned();
                    self.emit_text(&text);
                } else {
                    self.stats.nodes_pruned += 1;
                }
            } else if self.bs.peek()? == Some(b'<') {
                let completed = self.parse_open_tag()?;
                if let Some(node) = completed {
                    self.attach(node);
                }
            } else if self.bs.peek()?.is_none() {
                let tag = self
                    .stack
                    .last()
                    .map(|f| self.store.symbols().name(f.sym))
                    .unwrap_or_default();
                return Err(self.error(&format!("unexpected end of input inside <{tag}>")));
            } else {
                self.parse_text_run()?;
            }
        }
    }

    /// Parses a run of character data up to the next `<` (or EOF).
    /// Whitespace-only runs are ignored, as in the in-memory parser.
    fn parse_text_run(&mut self) -> Result<(), ParseError> {
        let wanted = self.text_wanted();
        let mut raw = Vec::new();
        while let Some(b) = self.bs.peek()? {
            if b == b'<' {
                break;
            }
            raw.push(b);
            self.bs.pos += 1;
        }
        let text = String::from_utf8_lossy(&raw).into_owned();
        if text.trim().is_empty() {
            return Ok(());
        }
        self.stats.texts_parsed += 1;
        if wanted {
            self.emit_text(&decode_entities(&text));
        } else {
            self.stats.nodes_pruned += 1;
        }
        Ok(())
    }

    /// Materializes a kept text node, delivers it to the sink when it is a
    /// direct projection match (an explicit text-path under a filtering
    /// parent — not text inside an already-matched subtree), and attaches it.
    fn emit_text(&mut self, text: &str) {
        self.stats.nodes_kept += 1;
        let node = self.store.new_text(text);
        if self.projection.is_some() && self.parent_keep() == Keep::Filter {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.push(&self.store, node);
            }
        }
        self.attach(Some(node));
    }
}

// ---------------------------------------------------------------------------
// The in-memory reference for streamed projection
// ---------------------------------------------------------------------------

/// Applies a [`PathSpec`] to an already-parsed tree with exactly the
/// top-down semantics of the streaming parser — the reference the
/// streamed-projection property tests compare against.
pub fn project_paths(tree: &Tree, spec: &PathSpec) -> Tree {
    project_spec(tree, &Projection::Paths(spec.clone()))
}

/// Applies any [`Projection`] (explicit paths or a compiled automaton) to an
/// already-parsed tree with exactly the top-down semantics of the streaming
/// parser.
pub fn project_spec(tree: &Tree, spec: &Projection) -> Tree {
    let mut store = Store::new();
    let mut path: Vec<String> = Vec::new();
    let root = copy_filtered(
        tree,
        tree.root,
        spec,
        Keep::Filter,
        true,
        &mut path,
        &mut store,
    )
    .expect("the root is always kept");
    Tree::new(store, root)
}

fn copy_filtered(
    tree: &Tree,
    node: NodeId,
    spec: &Projection,
    parent: Keep,
    is_root: bool,
    path: &mut Vec<String>,
    dst: &mut Store,
) -> Option<NodeId> {
    match tree.store.tag(node) {
        None => {
            // A text node.
            let keep = match parent {
                Keep::All => true,
                Keep::Skip => false,
                Keep::Filter => spec.keeps_text_child(path),
            };
            keep.then(|| dst.new_text(tree.store.text_cow(node).unwrap_or_default()))
        }
        Some(tag) => {
            let tag = tag.to_string();
            path.push(tag.clone());
            let mut keep = decide(spec, parent, path, &tag);
            if is_root && keep == Keep::Skip {
                keep = Keep::Filter;
            }
            let out = if keep == Keep::Skip {
                None
            } else {
                let children: Vec<NodeId> = tree
                    .store
                    .children_iter(node)
                    .filter_map(|c| copy_filtered(tree, c, spec, keep, false, path, dst))
                    .collect();
                Some(dst.new_element(tag, children))
            };
            path.pop();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_xml, parse_xml_keep_attributes};
    use std::io::Cursor;

    fn stream(input: &str) -> Result<Tree, ParseError> {
        parse_xml_reader(Cursor::new(input.as_bytes().to_vec()))
    }

    /// A reader that hands out one byte at a time, exercising every
    /// token-across-chunk boundary.
    struct TrickleReader<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl Read for TrickleReader<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn agrees_with_in_memory_parser_on_basics() {
        for input in [
            "<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>",
            "<a>hello &amp; &lt;world&gt;</a>",
            "<a><![CDATA[1 < 2]]></a>",
            "<a/>",
            r#"<?xml version="1.0"?><!DOCTYPE doc [ <!ELEMENT doc (a)> ]>
               <!-- c --><doc id="1"><a x='2'/><!-- inner --></doc>"#,
            "<r><x>1 &amp; 2</x><y/></r><!-- trailing -->",
        ] {
            let expected = parse_xml(input).unwrap();
            let got = stream(input).unwrap();
            assert!(expected.value_equiv(&got), "{input}");
        }
    }

    #[test]
    fn rejects_what_the_in_memory_parser_rejects_at_the_same_position() {
        for input in [
            "<a></b>",
            "<a/><b/>",
            "<a>",
            "plain",
            "<a =></a>",
            "<a x=nope/>",
            "<a><b></a></b>",
        ] {
            let expected = parse_xml(input).expect_err(input);
            let got = stream(input).expect_err(input);
            assert_eq!(expected.message, got.message, "{input}");
            assert_eq!(expected.position, got.position, "{input}");
        }
    }

    #[test]
    fn one_byte_reads_still_parse() {
        let input = "<doc><a attr=\"v\"><c/></a><b>text &amp; more</b></doc>";
        let expected = parse_xml(input).unwrap();
        let outcome = parse_xml_stream(
            TrickleReader {
                data: input.as_bytes(),
                pos: 0,
            },
            &StreamConfig {
                chunk_size: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(expected.value_equiv(&outcome.tree));
        assert_eq!(outcome.stats.bytes_read, input.len());
    }

    #[test]
    fn keep_attributes_matches_in_memory_encoding() {
        let input = r#"<item id="7" lang='en'><name>x &amp; y</name><edge from="a"/></item>"#;
        let expected = parse_xml_keep_attributes(input).unwrap();
        let got = parse_xml_stream(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig {
                keep_attributes: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(expected.value_equiv(&got.tree));
    }

    #[test]
    fn peak_buffer_stays_small_on_large_inputs() {
        // ~200 KiB of flat elements parsed through a 1 KiB window.
        let mut input = String::from("<doc>");
        for i in 0..10_000 {
            input.push_str(&format!("<item>v{i}</item>"));
        }
        input.push_str("</doc>");
        let outcome = parse_xml_stream(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig {
                chunk_size: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.tree.size(), 20_001);
        assert!(
            outcome.stats.peak_buffer_bytes <= 4 * 1024,
            "window grew to {}",
            outcome.stats.peak_buffer_bytes
        );
        assert_eq!(outcome.stats.bytes_read, input.len());
    }

    fn spec(paths: &[&[&str]], subtrees: &[&[&str]], known: &[&str]) -> PathSpec {
        let to_chain = |c: &&[&str]| c.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        PathSpec {
            keep_paths: paths.iter().map(to_chain).collect(),
            keep_subtrees: subtrees.iter().map(to_chain).collect(),
            known_labels: known.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn streamed_projection_drops_pruned_subtrees() {
        let input =
            "<bib><book><title>t1</title><price>9</price></book><junk><x/><x/></junk></bib>";
        let s = spec(
            &[&["bib", "book", "title", "#text"]],
            &[],
            &["bib", "book", "title", "price", "junk", "x"],
        );
        let outcome = parse_xml_stream(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig::with_projection(s.clone()),
        )
        .unwrap();
        let expected = project_paths(&parse_xml(input).unwrap(), &s);
        assert!(outcome.tree.value_equiv(&expected));
        let xml = outcome.tree.to_xml();
        assert!(xml.contains("<title>t1</title>"), "{xml}");
        assert!(!xml.contains("junk") && !xml.contains("price"), "{xml}");
        assert!(outcome.stats.nodes_pruned > 0);
        assert_eq!(
            outcome.stats.nodes_kept + outcome.stats.nodes_pruned,
            outcome.stats.elements_parsed + outcome.stats.texts_parsed
        );
    }

    #[test]
    fn streamed_projection_keeps_subtrees_whole_and_unknown_labels() {
        let input =
            "<bib><book><title>t</title><price>9</price></book><extra><blob>x</blob></extra></bib>";
        let s = spec(
            &[&["bib", "book"]],
            &[&["bib", "book"]],
            &["bib", "book", "title", "price"],
        );
        let outcome = parse_xml_stream(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig::with_projection(s.clone()),
        )
        .unwrap();
        let expected = project_paths(&parse_xml(input).unwrap(), &s);
        assert!(outcome.tree.value_equiv(&expected));
        let xml = outcome.tree.to_xml();
        // The whole book subtree survives, and the unknown extra region is
        // kept conservatively.
        assert!(xml.contains("<price>9</price>"), "{xml}");
        assert!(xml.contains("<blob>x</blob>"), "{xml}");
    }

    #[test]
    fn empty_spec_projects_to_the_root_only() {
        let input = "<doc><a><c/></a><b/></doc>";
        let s = spec(&[], &[], &["doc", "a", "b", "c"]);
        let outcome = parse_xml_stream(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig::with_projection(s.clone()),
        )
        .unwrap();
        assert_eq!(outcome.tree.size(), 1);
        assert_eq!(outcome.tree.root_tag(), Some("doc"));
        assert!(outcome
            .tree
            .value_equiv(&project_paths(&parse_xml(input).unwrap(), &s)));
    }

    /// A tiny automaton equivalent to the spec
    /// `keep_paths = {bib.book.title.#text}, keep_subtrees = {bib.extra}`:
    /// states 0=bib, 1=book, 2=title, 3=#text-end, 4=extra (subtree).
    fn small_automaton() -> PathAutomaton {
        PathAutomaton {
            starts: vec![("bib".to_string(), 0)],
            transitions: vec![
                vec![("book".to_string(), 1), ("extra".to_string(), 4)],
                vec![("title".to_string(), 2)],
                vec![(TEXT_LABEL.to_string(), 3)],
                vec![],
                vec![],
            ],
            reaches_end: vec![true, true, true, true, true],
            subtree: vec![false, false, false, false, true],
            known_labels: ["bib", "book", "title", "price", "extra"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    #[test]
    fn automaton_classification_mirrors_spec_semantics() {
        let a = small_automaton();
        let p = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(a.on_path(&p(&["bib"])));
        assert!(a.on_path(&p(&["bib", "book", "title"])));
        assert!(!a.on_path(&p(&["bib", "book", "price"])), "dead branch");
        assert!(!a.on_path(&p(&["book"])), "wrong root label");
        assert!(a.in_subtree(&p(&["bib", "extra"])));
        assert!(a.in_subtree(&p(&["bib", "extra", "anything"])));
        assert!(!a.in_subtree(&p(&["bib", "book"])));
        assert!(a.keeps_text_child(&p(&["bib", "book", "title"])));
        assert!(!a.keeps_text_child(&p(&["bib", "book"])));
        assert!(a.keeps_text_child(&p(&["bib", "extra", "x"])), "in subtree");
        assert!(a.is_known("price") && !a.is_known("junk"));
        assert!(!a.is_empty());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn streamed_automaton_projection_matches_reference_and_spec() {
        let input = "<bib><book><title>t1</title><price>9</price></book>\
                     <extra><blob>x</blob></extra><book><title>t2</title></book></bib>";
        let auto = small_automaton();
        let equivalent_spec = spec(
            &[&["bib", "book", "title", "#text"]],
            &[&["bib", "extra"]],
            &["bib", "book", "title", "price", "extra"],
        );
        let outcome = parse_xml_stream(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig::with_projection_spec(Projection::Automaton(auto.clone())),
        )
        .unwrap();
        let tree = parse_xml(input).unwrap();
        // Streaming ≡ in-memory reference for the automaton...
        let reference = project_spec(&tree, &Projection::Automaton(auto));
        assert!(outcome.tree.value_equiv(&reference));
        // ... and the automaton ≡ the enumerated spec it encodes. The blob
        // label is unknown to both, kept conservatively inside the subtree.
        let via_spec = project_paths(&tree, &equivalent_spec);
        assert!(outcome.tree.value_equiv(&via_spec));
        let xml = outcome.tree.to_xml();
        assert!(xml.contains("<title>t1</title>"), "{xml}");
        assert!(xml.contains("<blob>x</blob>"), "{xml}");
        assert!(!xml.contains("price"), "{xml}");
        assert!(outcome.stats.nodes_pruned > 0);
    }

    #[test]
    fn recursive_automaton_keeps_unbounded_paths() {
        // keep a.b.a.b… — impossible to enumerate as a PathSpec.
        let auto = PathAutomaton {
            starts: vec![("a".to_string(), 0)],
            transitions: vec![vec![("b".to_string(), 1)], vec![("a".to_string(), 0)]],
            reaches_end: vec![true, true],
            subtree: vec![false, false],
            known_labels: ["a", "b", "c"].iter().map(|s| s.to_string()).collect(),
        };
        let input = "<a><b><a><b><a/></b></a></b><c/></a>";
        let outcome = parse_xml_stream(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig::with_projection_spec(Projection::Automaton(auto)),
        )
        .unwrap();
        let xml = outcome.tree.to_xml();
        assert_eq!(xml, "<a><b><a><b><a/></b></a></b></a>");
        assert_eq!(outcome.stats.nodes_pruned, 1, "only <c/> is dropped");
    }

    #[test]
    fn sink_receives_match_roots_and_matched_text() {
        use crate::sink::{CollectSink, CountSink, ResultSink, SerializeSink};
        let input = "<bib><book><title>t1</title><price>9</price></book>\
                     <extra><blob>x</blob></extra><book><title>t2</title></book></bib>";
        let config = StreamConfig::with_projection_spec(Projection::Automaton(small_automaton()));
        // The automaton keeps bib.book.title.#text (matched text) and the
        // bib.extra subtree (match root).
        let mut collect = CollectSink::new();
        let outcome = parse_xml_stream_sink(
            Cursor::new(input.as_bytes().to_vec()),
            &config,
            &mut collect,
        )
        .unwrap();
        let store = &outcome.tree.store;
        let matches = collect.into_nodes();
        assert_eq!(matches.len(), 3, "t1, extra subtree, t2");
        assert_eq!(store.text_value(matches[0]), Some("t1"));
        assert_eq!(store.tag(matches[1]), Some("extra"));
        assert_eq!(store.text_value(matches[2]), Some("t2"));
        // Counting and serializing sinks see the same delivery sequence
        // without retaining node ids.
        let mut count = CountSink::new();
        parse_xml_stream_sink(Cursor::new(input.as_bytes().to_vec()), &config, &mut count).unwrap();
        assert_eq!(count.count(), 3);
        let mut ser = SerializeSink::new(Vec::new());
        parse_xml_stream_sink(Cursor::new(input.as_bytes().to_vec()), &config, &mut ser).unwrap();
        let lines = String::from_utf8(ser.into_inner().unwrap()).unwrap();
        assert_eq!(lines, "t1\n<extra><blob>x</blob></extra>\nt2\n");
        // The plain (sink-free) entry point parses identically.
        let plain = parse_xml_stream(Cursor::new(input.as_bytes().to_vec()), &config).unwrap();
        assert!(plain.tree.value_equiv(&outcome.tree));
        // Without a projection nothing is delivered: there is no match
        // notion to stream.
        let mut none = CollectSink::new();
        parse_xml_stream_sink(
            Cursor::new(input.as_bytes().to_vec()),
            &StreamConfig::default(),
            &mut none,
        )
        .unwrap();
        assert!(none.nodes().is_empty());
        // Exercise the trait-object path explicitly.
        let sink: &mut dyn ResultSink = &mut CountSink::new();
        parse_xml_stream_sink(Cursor::new(input.as_bytes().to_vec()), &config, sink).unwrap();
    }

    #[test]
    fn path_spec_prefix_logic() {
        let s = spec(
            &[&["a", "b", "c"]],
            &[&["a", "d"]],
            &["a", "b", "c", "d", "e"],
        );
        let p = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(s.on_path(&p(&["a"])));
        assert!(s.on_path(&p(&["a", "b"])));
        assert!(s.on_path(&p(&["a", "d"])));
        assert!(!s.on_path(&p(&["a", "e"])));
        assert!(s.in_subtree(&p(&["a", "d", "e"])));
        assert!(!s.in_subtree(&p(&["a", "b", "c"])));
        assert!(s.is_known("#text") && !s.is_known("zzz"));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
