//! A small hand-rolled XML parser.
//!
//! The workspace never depends on an external XML library; this parser covers
//! exactly the subset of XML needed by the paper's data model (§2): nested
//! elements and text nodes. Attributes are accepted and ignored (the paper's
//! core model has no attributes; §7 notes the extension is routine),
//! comments and processing instructions are skipped, and a handful of
//! standard entities are decoded.

use crate::decode::{attribute_children, is_name_byte};
use crate::store::Store;
use crate::tree::Tree;
use std::fmt;

pub use crate::decode::decode_entities;

/// An error produced while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input at which the problem was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an XML document into a [`Tree`], ignoring attributes (the paper's
/// core data model has no attributes).
pub fn parse_xml(input: &str) -> Result<Tree, ParseError> {
    parse_with(input, false)
}

/// Parses an XML document into a [`Tree`], keeping attributes.
///
/// Attributes are encoded in the paper's element-only data model as leading
/// children tagged `@name` whose content is the attribute value as a text
/// node (empty values produce an empty `@name` element). This is the
/// encoding the §7 attribute extension relies on: the `attribute` axis then
/// behaves exactly like a `child::@name` step, and chain inference needs no
/// new rules. [`crate::serializer::serialize_tree_with_attributes`] undoes
/// the encoding.
pub fn parse_xml_keep_attributes(input: &str) -> Result<Tree, ParseError> {
    parse_with(input, true)
}

fn parse_with(input: &str, keep_attributes: bool) -> Result<Tree, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        store: Store::new(),
        keep_attributes,
    };
    parser.skip_prolog();
    let root = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing content after document element"));
    }
    parser.store.compact();
    Ok(Tree::new(parser.store, root))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    store: Store,
    keep_attributes: bool,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) {
        if let Some(i) = find(&self.bytes[self.pos..], end.as_bytes()) {
            self.pos += i + end.len();
        } else {
            self.pos = self.bytes.len();
        }
    }

    /// Skips the XML declaration, doctype, comments and whitespace before the
    /// document element.
    fn skip_prolog(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                // Skip a possibly bracketed internal subset.
                let mut depth = 0usize;
                while let Some(b) = self.peek() {
                    self.pos += 1;
                    match b {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => break,
                        _ => {}
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Skips comments and whitespace after the document element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<?") {
                self.skip_until("?>");
            } else {
                break;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_name_byte(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// Consumes attributes up to (but not including) `>` or `/>`, returning
    /// the name/value pairs in document order.
    fn parse_attributes(&mut self) -> Result<Vec<(String, String)>, ParseError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(attrs),
                _ => {
                    // name = "value" | name = 'value'
                    let name = self.parse_name()?;
                    self.skip_ws();
                    let mut value = String::new();
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.skip_ws();
                        match self.peek() {
                            Some(q @ (b'"' | b'\'')) => {
                                self.pos += 1;
                                let start = self.pos;
                                while let Some(b) = self.peek() {
                                    self.pos += 1;
                                    if b == q {
                                        break;
                                    }
                                }
                                let end = self.pos.saturating_sub(1).max(start);
                                value =
                                    String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
                            }
                            _ => return Err(self.error("expected quoted attribute value")),
                        }
                    }
                    attrs.push((name, decode_entities(&value)));
                }
            }
        }
    }

    fn parse_element(&mut self) -> Result<crate::NodeId, ParseError> {
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        self.pos += 1;
        let tag = self.parse_name()?;
        let attrs = self.parse_attributes()?;
        match self.peek() {
            Some(b'/') => {
                // self-closing
                self.pos += 1;
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' after '/'"));
                }
                self.pos += 1;
                let children = attribute_children(&mut self.store, attrs, self.keep_attributes);
                Ok(self.store.new_element(tag, children))
            }
            Some(b'>') => {
                self.pos += 1;
                let mut children = attribute_children(&mut self.store, attrs, self.keep_attributes);
                loop {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != tag {
                            return Err(self.error(&format!(
                                "mismatched closing tag: expected </{tag}>, found </{close}>"
                            )));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.error("expected '>' in closing tag"));
                        }
                        self.pos += 1;
                        break;
                    } else if self.starts_with("<!--") {
                        self.skip_until("-->");
                    } else if self.starts_with("<?") {
                        self.skip_until("?>");
                    } else if self.starts_with("<![CDATA[") {
                        self.pos += "<![CDATA[".len();
                        let start = self.pos;
                        self.skip_until("]]>");
                        let end = self.pos.saturating_sub(3).max(start);
                        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
                        children.push(self.store.new_text(text));
                    } else if self.peek() == Some(b'<') {
                        children.push(self.parse_element()?);
                    } else if self.peek().is_none() {
                        return Err(self.error(&format!("unexpected end of input inside <{tag}>")));
                    } else {
                        let text = self.parse_text();
                        // Whitespace-only text between elements is ignored, as
                        // is conventional for document-oriented XML with a DTD.
                        if !text.trim().is_empty() {
                            children.push(self.store.new_text(decode_entities(&text)));
                        }
                    }
                }
                Ok(self.store.new_element(tag, children))
            }
            _ => Err(self.error("expected '>' or '/>'")),
        }
    }

    fn parse_text(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_1_document() {
        let t = parse_xml("<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>").unwrap();
        assert_eq!(t.root_tag(), Some("doc"));
        assert_eq!(t.store.children(t.root).len(), 4);
        assert_eq!(t.size(), 9);
    }

    #[test]
    fn parses_text_and_entities() {
        let t = parse_xml("<a>hello &amp; &lt;world&gt;</a>").unwrap();
        let kids = t.store.children(t.root);
        assert_eq!(kids.len(), 1);
        assert_eq!(t.store.text_value(kids[0]), Some("hello & <world>"));
    }

    #[test]
    fn skips_prolog_doctype_comments_and_attributes() {
        let input = r#"<?xml version="1.0"?>
            <!DOCTYPE doc [ <!ELEMENT doc (a)> ]>
            <!-- a comment -->
            <doc id="1"><a x='2'/><!-- inner --></doc>"#;
        let t = parse_xml(input).unwrap();
        assert_eq!(t.root_tag(), Some("doc"));
        assert_eq!(t.store.children(t.root).len(), 1);
    }

    #[test]
    fn cdata_becomes_text() {
        let t = parse_xml("<a><![CDATA[1 < 2]]></a>").unwrap();
        let kids = t.store.children(t.root);
        assert_eq!(t.store.text_value(kids[0]), Some("1 < 2"));
    }

    #[test]
    fn rejects_mismatched_tags_and_trailing_garbage() {
        assert!(parse_xml("<a></b>").is_err());
        assert!(parse_xml("<a/><b/>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("plain").is_err());
    }

    #[test]
    fn roundtrip_with_serializer() {
        let xml = "<doc><a><c/></a><b>hi</b></doc>";
        let t = parse_xml(xml).unwrap();
        let back = crate::serializer::serialize_tree(&t);
        let t2 = parse_xml(&back).unwrap();
        assert!(t.value_equiv(&t2));
    }

    #[test]
    fn keep_attributes_encodes_them_as_at_children() {
        let t =
            parse_xml_keep_attributes(r#"<item id="7" lang='en'><name>x</name></item>"#).unwrap();
        let kids = t.store.children(t.root).to_vec();
        assert_eq!(kids.len(), 3);
        assert_eq!(t.store.tag(kids[0]), Some("@id"));
        assert_eq!(t.store.tag(kids[1]), Some("@lang"));
        assert_eq!(t.store.tag(kids[2]), Some("name"));
        let id_kids = t.store.children(kids[0]).to_vec();
        assert_eq!(t.store.text_value(id_kids[0]), Some("7"));
    }

    #[test]
    fn keep_attributes_on_self_closing_element() {
        let t = parse_xml_keep_attributes(r#"<edge from="a" to="b"/>"#).unwrap();
        let kids = t.store.children(t.root).to_vec();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.store.tag(kids[0]), Some("@from"));
        assert_eq!(t.store.tag(kids[1]), Some("@to"));
    }

    #[test]
    fn keep_attributes_decodes_entities_and_empty_values() {
        let t = parse_xml_keep_attributes(r#"<a title="x &amp; y" flag=""/>"#).unwrap();
        let kids = t.store.children(t.root).to_vec();
        let title_kids = t.store.children(kids[0]).to_vec();
        assert_eq!(t.store.text_value(title_kids[0]), Some("x & y"));
        assert!(t.store.children(kids[1]).is_empty());
    }

    #[test]
    fn default_parse_still_ignores_attributes() {
        let t = parse_xml(r#"<item id="7"><name>x</name></item>"#).unwrap();
        assert_eq!(t.store.children(t.root).len(), 1);
    }
}
