//! # qui-xmlstore — the XML data model of the paper (§2)
//!
//! The paper models an XML instance as a *store* `σ`: an environment mapping
//! each node location `l` to either an element node `a[L]` (tag `a`, ordered
//! list of children locations `L`) or a text node `s`. A *tree* is a pair
//! `(σ, l_t)` of a store and a root location.
//!
//! This crate provides:
//!
//! * [`Store`] / [`NodeId`] / [`NodeRef`] — a columnar (structure-of-arrays)
//!   store: five parallel `u32` columns (label / parent / first-child /
//!   next-sibling / text-offset) over an interned [`SymbolTable`] and an
//!   out-of-line text arena, supporting the primitive mutations needed by
//!   the XQuery Update Facility semantics (insert, delete, rename, replace)
//!   plus O(1) copy-on-write [`Store::freeze`]/[`Store::snapshot`] sharing.
//!   With the `cold-text` feature, frozen text payloads can spill to a
//!   file-backed cold tier.
//! * [`sink`] — the [`ResultSink`] delivery trait (collect / count /
//!   serialize) that query evaluation and streamed projection write matches
//!   into instead of materializing result sequences.
//! * [`Tree`] — a store plus a distinguished root location.
//! * value equivalence `(σ, l) ≅ (σ', l')` ([`value_equiv`],
//!   [`sequence_equiv`]) used by Definition 2.4 (independence).
//! * a small hand-rolled XML [`parser`] and [`serializer`] (no external XML
//!   library is used anywhere in the workspace).
//! * [`streaming`] — a pull parser over any [`std::io::Read`] source that
//!   builds the tree incrementally without materializing the input, plus
//!   streamed label-path projection ([`PathSpec`]) that drops pruned
//!   subtrees during the parse (peak-memory savings, not just node counts).
//! * [`projection`] — XML projections `t|_L` used in the soundness statements
//!   of §3.4 and in the projection-based tests.
//! * [`generator`] — generic random-tree generation used by property tests
//!   (schema-driven generation lives in `qui-schema`).

pub mod decode;
pub mod equiv;
pub mod generator;
pub mod node;
pub mod parser;
pub mod projection;
pub mod serializer;
pub mod sink;
pub mod store;
pub mod streaming;
pub mod symbols;
pub mod tree;

pub use decode::decode_entities;
pub use equiv::{sequence_equiv, value_equiv};
pub use node::NodeId;
pub use parser::{parse_xml, parse_xml_keep_attributes, ParseError};
pub use projection::{project, upward_closure};
pub use serializer::{
    serialize_node, serialize_node_into, serialize_node_with_attributes, serialize_tree,
    serialize_tree_with_attributes,
};
pub use sink::{CollectSink, CountSink, ResultSink, SerializeSink};
pub use store::{ChildIds, NodeRef, Store, StoreBytes};
pub use streaming::{
    parse_xml_reader, parse_xml_stream, parse_xml_stream_sink, project_paths, project_spec,
    AutomatonCursor, PathAutomaton, PathSpec, Projection, StreamConfig, StreamOutcome, StreamStats,
};
pub use symbols::{Sym, SymbolTable, TEXT_NAME, TEXT_SYM};
pub use tree::{Tree, TreeBuilder};
