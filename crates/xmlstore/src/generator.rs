//! Generic random-tree generation used by property tests.
//!
//! Schema-driven (valid-by-construction) generation lives in `qui-schema`;
//! the generator here just produces arbitrary trees over a given tag
//! alphabet, which is useful for exercising the data model, the parser and
//! the serializer independently of any DTD.

use crate::store::Store;
use crate::tree::Tree;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`random_tree`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Tags to draw element names from.
    pub tags: Vec<String>,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Maximum number of children per element.
    pub max_children: usize,
    /// Probability that a leaf position becomes a text node.
    pub text_probability: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            tags: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            max_depth: 4,
            max_children: 4,
            text_probability: 0.3,
        }
    }
}

/// Generates a pseudo-random tree from `config`, deterministically from
/// `seed`.
pub fn random_tree(config: &GenConfig, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = Store::new();
    let root = gen_element(&mut store, config, &mut rng, 0);
    Tree::new(store, root)
}

fn gen_element(
    store: &mut Store,
    config: &GenConfig,
    rng: &mut StdRng,
    depth: usize,
) -> crate::NodeId {
    let tag = &config.tags[rng.random_range(0..config.tags.len())];
    let n_children = if depth >= config.max_depth {
        0
    } else {
        rng.random_range(0..=config.max_children)
    };
    let mut children = Vec::with_capacity(n_children);
    let mut last_was_text = false;
    for _ in 0..n_children {
        // Never generate two adjacent text nodes: they would coalesce when
        // the tree is serialized and re-parsed, which would needlessly break
        // XML round-trip properties.
        if !last_was_text && rng.random_bool(config.text_probability) {
            let v: u32 = rng.random_range(0..1000);
            children.push(store.new_text(format!("t{v}")));
            last_was_text = true;
        } else {
            children.push(gen_element(store, config, rng, depth + 1));
            last_was_text = false;
        }
    }
    store.new_element(tag, children)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let t1 = random_tree(&cfg, 7);
        let t2 = random_tree(&cfg, 7);
        let t3 = random_tree(&cfg, 8);
        assert!(t1.value_equiv(&t2));
        // Not a hard guarantee, but with this config different seeds should
        // essentially always differ.
        assert!(!t1.value_equiv(&t3) || t1.size() == t3.size());
    }

    #[test]
    fn depth_limit_is_respected() {
        let cfg = GenConfig {
            max_depth: 2,
            ..GenConfig::default()
        };
        let t = random_tree(&cfg, 42);
        // depth <= 2 means no node is more than 2 edges below the root,
        // plus possibly one level of text nodes.
        for l in t.reachable() {
            assert!(t.store.ancestors(l).len() <= 3);
        }
    }

    #[test]
    fn generated_trees_roundtrip_through_xml() {
        let cfg = GenConfig::default();
        for seed in 0..10 {
            let t = random_tree(&cfg, seed);
            let xml = t.to_xml();
            let back = crate::parse_xml(&xml).unwrap();
            assert!(t.value_equiv(&back), "seed {seed} failed roundtrip");
        }
    }
}
