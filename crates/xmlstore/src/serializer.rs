//! Serialization of stores and trees back to XML text.

use crate::node::NodeId;
use crate::store::Store;
use crate::tree::Tree;

/// Serializes the subtree rooted at `node` to an XML string.
pub fn serialize_node(store: &Store, node: NodeId) -> String {
    let mut out = String::new();
    write_node(store, node, &mut out, false);
    out
}

/// Serializes the subtree rooted at `node` into an existing buffer (the
/// allocation-reusing form behind [`crate::sink::SerializeSink`]).
pub fn serialize_node_into(store: &Store, node: NodeId, out: &mut String) {
    write_node(store, node, out, false);
}

/// Serializes a whole tree to an XML string.
pub fn serialize_tree(tree: &Tree) -> String {
    serialize_node(&tree.store, tree.root)
}

/// Serializes the subtree rooted at `node`, writing children tagged `@name`
/// back as XML attributes (the inverse of
/// [`crate::parser::parse_xml_keep_attributes`]).
pub fn serialize_node_with_attributes(store: &Store, node: NodeId) -> String {
    let mut out = String::new();
    write_node(store, node, &mut out, true);
    out
}

/// Serializes a whole tree, writing `@name` children back as attributes.
pub fn serialize_tree_with_attributes(tree: &Tree) -> String {
    serialize_node_with_attributes(&tree.store, tree.root)
}

fn write_node(store: &Store, node: NodeId, out: &mut String, attrs: bool) {
    if let Some(text) = store.text_cow(node) {
        out.push_str(&escape_text(&text));
        return;
    }
    let tag = store.tag(node).expect("non-text nodes are elements");
    let (attr_children, content_children): (Vec<NodeId>, Vec<NodeId>) = if attrs {
        store
            .children_iter(node)
            .partition(|&c| store.tag(c).is_some_and(|t| t.starts_with('@')))
    } else {
        (Vec::new(), store.children(node))
    };
    out.push('<');
    out.push_str(tag);
    for a in attr_children {
        let name = store.tag(a).expect("attribute children are elements");
        let value: String = store
            .children_iter(a)
            .filter_map(|c| store.text_cow(c).map(|s| s.into_owned()))
            .collect();
        out.push(' ');
        out.push_str(name.trim_start_matches('@'));
        out.push_str("=\"");
        out.push_str(&escape_attr(&value));
        out.push('"');
    }
    if content_children.is_empty() {
        out.push_str("/>");
    } else {
        out.push('>');
        for c in content_children {
            write_node(store, c, out, attrs);
        }
        out.push_str("</");
        out.push_str(tag);
        out.push('>');
    }
}

/// Escapes the characters that must be escaped in a double-quoted attribute
/// value.
pub fn escape_attr(s: &str) -> String {
    if !s.contains(['&', '<', '"']) {
        return s.to_string();
    }
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
}

/// Escapes the characters that must be escaped in XML character data.
pub fn escape_text(s: &str) -> String {
    if !s.contains(['&', '<', '>']) {
        return s.to_string();
    }
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn serializes_nested_elements() {
        let t = TreeBuilder::elem("doc")
            .child(TreeBuilder::elem("a").child(TreeBuilder::elem("c")))
            .child(TreeBuilder::elem("b").text("hi"))
            .build();
        assert_eq!(serialize_tree(&t), "<doc><a><c/></a><b>hi</b></doc>");
    }

    #[test]
    fn escapes_special_characters() {
        let t = TreeBuilder::elem("a").text("x < y & z").build();
        assert_eq!(serialize_tree(&t), "<a>x &lt; y &amp; z</a>");
    }

    #[test]
    fn roundtrips_through_parser() {
        let t = TreeBuilder::elem("r")
            .child(TreeBuilder::elem("x").text("1 & 2"))
            .child(TreeBuilder::elem("y"))
            .build();
        let xml = serialize_tree(&t);
        let t2 = crate::parse_xml(&xml).unwrap();
        assert!(t.value_equiv(&t2));
    }

    #[test]
    fn serialize_into_reuses_the_buffer() {
        let t = TreeBuilder::elem("a").text("x").build();
        let mut buf = String::with_capacity(64);
        serialize_node_into(&t.store, t.root, &mut buf);
        assert_eq!(buf, "<a>x</a>");
        buf.clear();
        serialize_node_into(&t.store, t.root, &mut buf);
        assert_eq!(buf, "<a>x</a>");
    }

    #[test]
    fn at_children_are_written_back_as_attributes() {
        let xml = r#"<item id="7" lang="en"><name>x</name></item>"#;
        let t = crate::parser::parse_xml_keep_attributes(xml).unwrap();
        assert_eq!(serialize_tree_with_attributes(&t), xml);
        // The plain serializer keeps the element encoding instead.
        assert!(serialize_tree(&t).starts_with("<item><@id>"));
    }

    #[test]
    fn attribute_values_are_escaped() {
        let xml = r#"<a title="x &amp; &quot;y&quot;"/>"#;
        let t = crate::parser::parse_xml_keep_attributes(xml).unwrap();
        let back = serialize_tree_with_attributes(&t);
        let t2 = crate::parser::parse_xml_keep_attributes(&back).unwrap();
        assert!(t.value_equiv(&t2));
    }

    #[test]
    fn empty_attribute_roundtrips() {
        let xml = r#"<a flag=""/>"#;
        let t = crate::parser::parse_xml_keep_attributes(xml).unwrap();
        assert_eq!(serialize_tree_with_attributes(&t), xml);
    }
}
