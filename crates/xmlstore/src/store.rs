//! The store `σ`: a structure-of-arrays arena of nodes with the primitive
//! mutations required by the XQuery Update Facility semantics (paper §2),
//! with snapshot-isolated copy-on-write sharing for the maintenance
//! simulation.
//!
//! ## Layout
//!
//! Nodes are held as five parallel `u32` columns instead of boxed tree
//! nodes (see the README storage section for the diagram):
//!
//! * `label` — the interned tag symbol ([`Sym`]); text nodes carry
//!   [`TEXT_SYM`].
//! * `parent` — parent location, `NIL` for roots and detached nodes.
//! * `first_child` / `next_sibling` — the child list as an intrusive
//!   singly-linked chain (children of a node are `first_child` followed by
//!   its `next_sibling` chain, in document order).
//! * `text` — index of the node's span in the text arena, `NIL` for
//!   elements. Element-vs-text is decided by this column, so a hypothetical
//!   element named `#text` cannot be confused with a text node.
//!
//! Text payloads live out-of-line in an append-only arena (a span table
//! plus one byte blob). Text is immutable once written, so copies share
//! spans and snapshots share the whole arena. With the `cold-text` feature
//! the frozen base's blob can be spilled to an unlinked temp file
//! (`Store::spill_cold_text`) and paged back per read through
//! [`Store::text_cow`].
//!
//! Tag names are interned into the store's [`SymbolTable`]; `tag()` resolves
//! labels back to names, and the table is shared copy-on-write across
//! snapshots (`Arc` + make_mut).

use crate::node::NodeId;
use crate::symbols::{Sym, SymbolTable, TEXT_SYM};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

const WORD_BITS: usize = 64;

/// Column sentinel: "no node" / "no span".
const NIL: u32 = u32::MAX;

#[inline]
fn opt(raw: u32) -> Option<NodeId> {
    (raw != NIL).then_some(NodeId(raw))
}

/// One node's cells across the five columns (the unit of copy-on-write
/// materialization).
#[derive(Clone, Copy, Debug)]
struct Cells {
    label: u32,
    parent: u32,
    first_child: u32,
    next_sibling: u32,
    text: u32,
}

/// The parallel node columns; one entry per location.
#[derive(Clone, Debug, Default)]
struct Columns {
    label: Vec<u32>,
    parent: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    text: Vec<u32>,
}

impl Columns {
    fn with_capacity(cap: usize) -> Self {
        Columns {
            label: Vec::with_capacity(cap),
            parent: Vec::with_capacity(cap),
            first_child: Vec::with_capacity(cap),
            next_sibling: Vec::with_capacity(cap),
            text: Vec::with_capacity(cap),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.label.len()
    }

    #[inline]
    fn get(&self, i: usize) -> Cells {
        Cells {
            label: self.label[i],
            parent: self.parent[i],
            first_child: self.first_child[i],
            next_sibling: self.next_sibling[i],
            text: self.text[i],
        }
    }

    #[inline]
    fn set(&mut self, i: usize, c: Cells) {
        self.label[i] = c.label;
        self.parent[i] = c.parent;
        self.first_child[i] = c.first_child;
        self.next_sibling[i] = c.next_sibling;
        self.text[i] = c.text;
    }

    #[inline]
    fn push(&mut self, c: Cells) {
        self.label.push(c.label);
        self.parent.push(c.parent);
        self.first_child.push(c.first_child);
        self.next_sibling.push(c.next_sibling);
        self.text.push(c.text);
    }

    /// Moves all of `other`'s rows onto the end of `self`.
    fn append(&mut self, other: &mut Columns) {
        self.label.append(&mut other.label);
        self.parent.append(&mut other.parent);
        self.first_child.append(&mut other.first_child);
        self.next_sibling.append(&mut other.next_sibling);
        self.text.append(&mut other.text);
    }

    fn shrink_to_fit(&mut self) {
        self.label.shrink_to_fit();
        self.parent.shrink_to_fit();
        self.first_child.shrink_to_fit();
        self.next_sibling.shrink_to_fit();
        self.text.shrink_to_fit();
    }
}

/// Text payload arena: a span table over one append-only byte blob.
#[derive(Clone, Debug, Default)]
struct TextArena {
    spans: Vec<(u32, u32)>,
    bytes: Vec<u8>,
}

impl TextArena {
    /// Appends `s`, returning its local span index.
    fn push(&mut self, s: &str) -> u32 {
        let off = u32::try_from(self.bytes.len()).expect("text arena overflow (4 GiB)");
        self.bytes.extend_from_slice(s.as_bytes());
        self.spans.push((off, s.len() as u32));
        (self.spans.len() - 1) as u32
    }

    /// The text of a local span index (hot bytes only).
    fn get(&self, idx: u32) -> &str {
        let (off, len) = self.spans[idx as usize];
        std::str::from_utf8(&self.bytes[off as usize..(off + len) as usize])
            .expect("text arena holds UTF-8")
    }

    fn shrink_to_fit(&mut self) {
        self.spans.shrink_to_fit();
        self.bytes.shrink_to_fit();
    }
}

/// The frozen snapshot base: immutable columns plus text arena, optionally
/// with its blob spilled to the cold file tier.
#[derive(Debug)]
struct Base {
    cols: Columns,
    text: TextArena,
    #[cfg(feature = "cold-text")]
    cold: Option<cold::ColdText>,
}

impl Base {
    fn new(cols: Columns, text: TextArena) -> Self {
        Base {
            cols,
            text,
            #[cfg(feature = "cold-text")]
            cold: None,
        }
    }

    /// Hot text bytes, reading the cold tier back in if spilled.
    fn hot_text(&self) -> TextArena {
        #[cfg(feature = "cold-text")]
        if let Some(cold) = &self.cold {
            return TextArena {
                spans: self.text.spans.clone(),
                bytes: cold.read_all().expect("cold tier read"),
            };
        }
        self.text.clone()
    }

    /// Consumes the base into hot columns + hot text.
    fn into_parts(self) -> (Columns, TextArena) {
        #[cfg(feature = "cold-text")]
        if let Some(cold) = self.cold {
            return (
                self.cols,
                TextArena {
                    spans: self.text.spans,
                    bytes: cold.read_all().expect("cold tier read"),
                },
            );
        }
        (self.cols, self.text)
    }
}

#[cfg(feature = "cold-text")]
mod cold {
    //! The feature-gated cold tier: the frozen base's text blob lives in an
    //! unlinked temp file (the fd keeps the bytes alive; the path is gone,
    //! so nothing leaks past process exit) and is paged in per read with
    //! positioned reads — no `mmap` crate required.

    use std::fs::File;
    use std::io::Write;
    use std::os::unix::fs::FileExt;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A file-backed text blob.
    #[derive(Debug)]
    pub(super) struct ColdText {
        file: File,
        len: u64,
    }

    impl ColdText {
        /// Writes `bytes` to a fresh unlinked temp file.
        pub fn write(bytes: &[u8]) -> std::io::Result<ColdText> {
            let path = std::env::temp_dir().join(format!(
                "qui-cold-{}-{}.bin",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed),
            ));
            let mut file = std::fs::OpenOptions::new()
                .create_new(true)
                .read(true)
                .write(true)
                .open(&path)?;
            let _ = std::fs::remove_file(&path);
            file.write_all(bytes)?;
            Ok(ColdText {
                file,
                len: bytes.len() as u64,
            })
        }

        /// Reads one span back.
        pub fn read(&self, off: u32, len: u32) -> std::io::Result<Vec<u8>> {
            let mut buf = vec![0u8; len as usize];
            self.file.read_exact_at(&mut buf, off as u64)?;
            Ok(buf)
        }

        /// Reads the whole blob back (rehydration on re-freeze).
        pub fn read_all(&self) -> std::io::Result<Vec<u8>> {
            let mut buf = vec![0u8; self.len as usize];
            self.file.read_exact_at(&mut buf, 0)?;
            Ok(buf)
        }

        /// Bytes held on disk.
        pub fn len(&self) -> usize {
            self.len as usize
        }
    }
}

/// Exact per-column heap accounting for a [`Store`] (see
/// [`Store::column_bytes`]). All figures are resident bytes by capacity;
/// [`cold_text`](StoreBytes::cold_text) counts bytes spilled to disk and is
/// *excluded* from [`total`](StoreBytes::total).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreBytes {
    /// The `label` column (base + tail).
    pub label: usize,
    /// The `parent` column.
    pub parent: usize,
    /// The `first_child` column.
    pub first_child: usize,
    /// The `next_sibling` column.
    pub next_sibling: usize,
    /// The `text` offset column.
    pub text_offset: usize,
    /// The text arena span table.
    pub text_spans: usize,
    /// The resident text blob bytes.
    pub text_bytes: usize,
    /// Text blob bytes spilled to the cold file tier (not resident).
    pub cold_text: usize,
    /// Copy-on-write bookkeeping (overlay map + dirty bitmap).
    pub overlay: usize,
    /// The symbol interner.
    pub symbols: usize,
}

impl StoreBytes {
    /// Total resident heap bytes (excludes [`cold_text`](Self::cold_text)).
    pub fn total(&self) -> usize {
        self.label
            + self.parent
            + self.first_child
            + self.next_sibling
            + self.text_offset
            + self.text_spans
            + self.text_bytes
            + self.overlay
            + self.symbols
    }
}

/// An XML store `σ` — a columnar arena associating node locations with
/// nodes.
///
/// The store supports both pure navigation (children, parent, axes helpers)
/// and the primitive mutations used when applying an update pending list:
/// insertion of children, detaching (deletion), renaming and replacement.
///
/// Locations are never reused; applying an update only ever *adds* locations
/// (`dom(σ) ⊆ dom(σ_w) ⊆ dom(σ_u)` in the paper) and detaches those removed
/// from the accessible tree.
///
/// ## Snapshots
///
/// A store can be [frozen](Self::freeze) into an immutable shared *base*;
/// [`snapshot`](Self::snapshot) then hands out lightweight copy-on-write
/// stores sharing that base behind an [`Arc`]: reads go straight to the base
/// columns, the first mutation of a base node materializes just that node's
/// five cells in a private overlay, and freshly allocated nodes live in
/// private tail columns that continue the base's location sequence. A
/// snapshot is observationally identical to a deep clone — same locations,
/// same navigation, same mutation semantics — without paying O(document)
/// per worker.
#[derive(Clone, Debug, Default)]
pub struct Store {
    /// The shared immutable snapshot base, if any.
    base: Option<Arc<Base>>,
    /// Base cells modified by this store (copy-on-write), by location.
    overlay: HashMap<u32, Cells>,
    /// One bit per base location: set = the cells live in `overlay`.
    dirty: Vec<u64>,
    /// Columns for nodes allocated after the snapshot; location
    /// `base_len + i`.
    tail: Columns,
    /// Text spans for tail nodes; span index `base_spans + i`.
    tail_text: TextArena,
    /// The tag interner, shared copy-on-write across snapshots.
    symbols: Arc<SymbolTable>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Creates an empty store with pre-allocated capacity for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        Store {
            tail: Columns::with_capacity(cap),
            ..Store::default()
        }
    }

    #[inline]
    fn base_len(&self) -> usize {
        self.base.as_ref().map(|b| b.cols.len()).unwrap_or(0)
    }

    #[inline]
    fn base_spans(&self) -> u32 {
        self.base
            .as_ref()
            .map(|b| b.text.spans.len() as u32)
            .unwrap_or(0)
    }

    /// Number of locations in the store (`|dom(σ)|`).
    pub fn len(&self) -> usize {
        self.base_len() + self.tail.len()
    }

    /// Returns `true` if the store contains no locations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all locations in the store, in allocation order.
    pub fn locations(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    // ----- cell access (base / overlay / tail routing) -----

    #[inline]
    fn is_dirty(&self, idx: usize) -> bool {
        self.dirty
            .get(idx / WORD_BITS)
            .is_some_and(|&w| w & (1u64 << (idx % WORD_BITS)) != 0)
    }

    #[inline]
    fn cells(&self, idx: usize) -> Cells {
        let base_len = self.base_len();
        if idx < base_len {
            if self.is_dirty(idx) {
                self.overlay[&(idx as u32)]
            } else {
                self.base.as_ref().expect("base present").cols.get(idx)
            }
        } else {
            self.tail.get(idx - base_len)
        }
    }

    /// Applies `f` to the node's cells, materializing base cells into the
    /// overlay on first write.
    #[inline]
    fn update_cells(&mut self, idx: usize, f: impl FnOnce(&mut Cells)) {
        let base_len = self.base_len();
        if idx < base_len {
            if !self.is_dirty(idx) {
                let w = idx / WORD_BITS;
                if self.dirty.len() <= w {
                    self.dirty.resize(base_len.div_ceil(WORD_BITS), 0);
                }
                self.dirty[w] |= 1u64 << (idx % WORD_BITS);
                let cells = self.base.as_ref().expect("base present").cols.get(idx);
                self.overlay.insert(idx as u32, cells);
            }
            f(self.overlay.get_mut(&(idx as u32)).expect("materialized"))
        } else {
            let i = idx - base_len;
            let mut c = self.tail.get(i);
            f(&mut c);
            self.tail.set(i, c);
        }
    }

    /// Sets the parent cell, skipping the write (and the copy-on-write
    /// materialization) when the value is unchanged.
    #[inline]
    fn set_parent_raw(&mut self, idx: usize, v: u32) {
        if self.cells(idx).parent != v {
            self.update_cells(idx, |c| c.parent = v);
        }
    }

    #[inline]
    fn set_next_sibling_raw(&mut self, idx: usize, v: u32) {
        if self.cells(idx).next_sibling != v {
            self.update_cells(idx, |c| c.next_sibling = v);
        }
    }

    #[inline]
    fn set_first_child_raw(&mut self, idx: usize, v: u32) {
        if self.cells(idx).first_child != v {
            self.update_cells(idx, |c| c.first_child = v);
        }
    }

    // ----- byte accounting -----

    /// Exact per-column heap accounting: every column, the text arena, the
    /// copy-on-write bookkeeping and the symbol interner, by capacity.
    /// Shared base columns are counted as if owned (matching the previous
    /// estimator's convention so reports stay comparable).
    pub fn column_bytes(&self) -> StoreBytes {
        let u32s = std::mem::size_of::<u32>();
        let col = |base: Option<&Vec<u32>>, tail: &Vec<u32>| {
            (base.map_or(0, |v| v.capacity()) + tail.capacity()) * u32s
        };
        let b = self.base.as_deref();
        let span_size = std::mem::size_of::<(u32, u32)>();
        #[cfg(feature = "cold-text")]
        let cold_text = b.and_then(|b| b.cold.as_ref()).map_or(0, |c| c.len());
        #[cfg(not(feature = "cold-text"))]
        let cold_text = 0;
        StoreBytes {
            label: col(b.map(|b| &b.cols.label), &self.tail.label),
            parent: col(b.map(|b| &b.cols.parent), &self.tail.parent),
            first_child: col(b.map(|b| &b.cols.first_child), &self.tail.first_child),
            next_sibling: col(b.map(|b| &b.cols.next_sibling), &self.tail.next_sibling),
            text_offset: col(b.map(|b| &b.cols.text), &self.tail.text),
            text_spans: (b.map_or(0, |b| b.text.spans.capacity())
                + self.tail_text.spans.capacity())
                * span_size,
            text_bytes: b.map_or(0, |b| b.text.bytes.capacity()) + self.tail_text.bytes.capacity(),
            cold_text,
            overlay: self.overlay.capacity()
                * (std::mem::size_of::<(u32, Cells)>() + std::mem::size_of::<u64>())
                + self.dirty.capacity() * std::mem::size_of::<u64>(),
            symbols: self.symbols.heap_bytes(),
        }
    }

    /// Total resident heap bytes of the store (see [`Self::column_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.column_bytes().total()
    }

    /// Returns excess column capacity to the allocator. Push-doubling
    /// growth can strand almost a full column's worth of slack right after
    /// a large parse (measured up to +86% bytes/node on a 2M-node
    /// document), so the parsers call this once the document is complete;
    /// it is a cheap no-op when capacities are already tight.
    pub fn compact(&mut self) {
        self.tail.shrink_to_fit();
        self.tail_text.shrink_to_fit();
        self.overlay.shrink_to_fit();
        self.dirty.shrink_to_fit();
    }

    // ----- symbols -----

    /// Interns `name` in this store's symbol table.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(s) = self.symbols.lookup(name) {
            return s;
        }
        Arc::make_mut(&mut self.symbols).intern(name)
    }

    /// This store's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    // ----- node access -----

    /// A lightweight accessor view of the node at `id`.
    #[inline]
    pub fn node_ref(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef { store: self, id }
    }

    /// Allocates a new element node `tag[children]`, fixing the children's
    /// parent pointers and sibling links, and returns its location.
    pub fn new_element(&mut self, tag: impl AsRef<str>, children: Vec<NodeId>) -> NodeId {
        let sym = self.intern(tag.as_ref());
        self.new_element_sym(sym, children)
    }

    /// Allocates a new element node from an already-interned symbol (the
    /// parser hot path — no name allocation or hashing).
    pub fn new_element_sym(&mut self, sym: Sym, children: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.len() as u32);
        for &c in &children {
            self.set_parent_raw(c.index(), id.0);
        }
        for pair in children.windows(2) {
            self.set_next_sibling_raw(pair[0].index(), pair[1].0);
        }
        if let Some(&last) = children.last() {
            self.set_next_sibling_raw(last.index(), NIL);
        }
        self.tail.push(Cells {
            label: sym.0 as u32,
            parent: NIL,
            first_child: children.first().map_or(NIL, |c| c.0),
            next_sibling: NIL,
            text: NIL,
        });
        id
    }

    /// Allocates a new text node and returns its location.
    pub fn new_text(&mut self, value: impl AsRef<str>) -> NodeId {
        let id = NodeId(self.len() as u32);
        let span = self.base_spans() + self.tail_text.push(value.as_ref());
        self.tail.push(Cells {
            label: TEXT_SYM.0 as u32,
            parent: NIL,
            first_child: NIL,
            next_sibling: NIL,
            text: span,
        });
        id
    }

    /// Allocates a new text node sharing an existing span of this store
    /// (O(1), no byte copy — text is immutable so sharing is safe).
    fn new_text_span(&mut self, span: u32) -> NodeId {
        let id = NodeId(self.len() as u32);
        self.tail.push(Cells {
            label: TEXT_SYM.0 as u32,
            parent: NIL,
            first_child: NIL,
            next_sibling: NIL,
            text: span,
        });
        id
    }

    /// The span text for a global span index.
    fn span_text(&self, span: u32) -> Cow<'_, str> {
        let base_spans = self.base_spans();
        if span < base_spans {
            let b = self.base.as_deref().expect("base present");
            #[cfg(feature = "cold-text")]
            if let Some(cold) = &b.cold {
                let (off, len) = b.text.spans[span as usize];
                let bytes = cold.read(off, len).expect("cold tier read");
                return Cow::Owned(String::from_utf8(bytes).expect("cold tier holds UTF-8"));
            }
            Cow::Borrowed(b.text.get(span))
        } else {
            Cow::Borrowed(self.tail_text.get(span - base_spans))
        }
    }

    /// The tag of `id` if it is an element node.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        let c = self.cells(id.index());
        (c.text == NIL).then(|| self.symbols.name(Sym(c.label as u16)))
    }

    /// The interned tag symbol of `id` if it is an element node.
    pub fn sym(&self, id: NodeId) -> Option<Sym> {
        let c = self.cells(id.index());
        (c.text == NIL).then_some(Sym(c.label as u16))
    }

    /// The text value of `id` if it is a text node whose bytes are resident.
    ///
    /// When the `cold-text` tier has spilled the frozen base's blob this
    /// returns `None` for base spans — use [`text_cow`](Self::text_cow),
    /// which pages spilled bytes back in.
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        let c = self.cells(id.index());
        if c.text == NIL {
            return None;
        }
        match self.span_text(c.text) {
            Cow::Borrowed(s) => Some(s),
            Cow::Owned(_) => None,
        }
    }

    /// The text value of `id` if it is a text node, paging in cold bytes if
    /// the store's base blob was spilled.
    pub fn text_cow(&self, id: NodeId) -> Option<Cow<'_, str>> {
        let c = self.cells(id.index());
        (c.text != NIL).then(|| self.span_text(c.text))
    }

    /// Returns `true` if `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        self.cells(id.index()).text == NIL
    }

    /// Returns `true` if `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        self.cells(id.index()).text != NIL
    }

    /// The first child of `id`, if any.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        opt(self.cells(id.index()).first_child)
    }

    /// The next sibling of `id`, if any.
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        opt(self.cells(id.index()).next_sibling)
    }

    /// Iterates over the ordered children of `id` without allocating.
    #[inline]
    pub fn children_iter(&self, id: NodeId) -> ChildIds<'_> {
        ChildIds {
            store: self,
            cur: self.first_child(id),
        }
    }

    /// The ordered children of `id` (empty for text nodes), collected.
    /// Prefer [`children_iter`](Self::children_iter) on hot paths.
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.children_iter(id).collect()
    }

    /// The parent location of `id`, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        opt(self.cells(id.index()).parent)
    }

    /// All ancestors of `id`, nearest first (excluding `id` itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// All descendants of `id` in document (pre) order, excluding `id`.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = self.descendants_or_self(id);
        out.remove(0);
        out
    }

    /// `id` followed by all its descendants in document (pre) order.
    ///
    /// A sibling-chain walk: O(subtree) time, O(1) scratch space.
    pub fn descendants_or_self(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = root;
        loop {
            out.push(cur);
            if let Some(c) = self.first_child(cur) {
                cur = c;
                continue;
            }
            // Climb until a next sibling exists, stopping at the subtree
            // root (whose own siblings are outside the subtree).
            let mut n = cur;
            loop {
                if n == root {
                    return out;
                }
                if let Some(s) = self.next_sibling(n) {
                    cur = s;
                    break;
                }
                n = self.parent(n).expect("chain stays inside the subtree");
            }
        }
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants_or_self(id).len()
    }

    /// The following siblings of `id`, in document order.
    pub fn following_siblings(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.next_sibling(id);
        while let Some(s) = cur {
            out.push(s);
            cur = self.next_sibling(s);
        }
        out
    }

    /// The preceding siblings of `id`, in document order.
    pub fn preceding_siblings(&self, id: NodeId) -> Vec<NodeId> {
        match self.parent(id) {
            None => Vec::new(),
            Some(p) => self.children_iter(p).take_while(|&c| c != id).collect(),
        }
    }

    /// Deep-copies the subtree rooted at `src` (which may live in another
    /// store) into `self`, returning the location of the copied root.
    ///
    /// This is the "copy semantics" of XQuery element construction and of the
    /// insert/replace source lists: inserted trees are fresh copies.
    pub fn deep_copy_from(&mut self, src_store: &Store, src: NodeId) -> NodeId {
        if let Some(text) = src_store.text_cow(src) {
            return self.new_text(text.as_ref());
        }
        let copied: Vec<NodeId> = src_store
            .children_iter(src)
            .map(|c| self.deep_copy_from(src_store, c))
            .collect();
        let sym = self.intern(src_store.tag(src).expect("element"));
        self.new_element_sym(sym, copied)
    }

    /// Deep-copies a subtree within this store. Text nodes share their
    /// source span (no byte copy); elements share their interned label.
    pub fn deep_copy(&mut self, src: NodeId) -> NodeId {
        // Plan the subtree first (ids shift as we allocate), then allocate
        // children-before-parents exactly like the recursive builder so the
        // id sequence matches the pointer-tree layout bit for bit.
        enum Plan {
            Text(u32),
            Element(u32, Vec<usize>),
        }
        fn walk(store: &Store, id: NodeId, plans: &mut Vec<Plan>) -> usize {
            let c = store.cells(id.index());
            if c.text != NIL {
                plans.push(Plan::Text(c.text));
            } else {
                let idxs: Vec<usize> = store
                    .children_iter(id)
                    .map(|k| walk(store, k, plans))
                    .collect();
                plans.push(Plan::Element(c.label, idxs));
            }
            plans.len() - 1
        }
        let mut plans: Vec<Plan> = Vec::new();
        let root_plan = walk(self, src, &mut plans);
        let mut ids: Vec<Option<NodeId>> = vec![None; plans.len()];
        for (i, plan) in plans.iter().enumerate() {
            let id = match plan {
                Plan::Text(span) => self.new_text_span(*span),
                Plan::Element(label, kids) => {
                    let kid_ids: Vec<NodeId> =
                        kids.iter().map(|&k| ids[k].expect("post-order")).collect();
                    self.new_element_sym(Sym(*label as u16), kid_ids)
                }
            };
            ids[i] = Some(id);
        }
        ids[root_plan].expect("root planned")
    }

    // ----- primitive mutations (application of update pending lists) -----

    /// Rebuilds `parent`'s child chain to be exactly `kids`, in order.
    /// Unchanged links are not rewritten (keeping the copy-on-write overlay
    /// minimal).
    fn relink_children(&mut self, parent: NodeId, kids: &[NodeId]) {
        self.set_first_child_raw(parent.index(), kids.first().map_or(NIL, |k| k.0));
        for pair in kids.windows(2) {
            self.set_next_sibling_raw(pair[0].index(), pair[1].0);
        }
        if let Some(&last) = kids.last() {
            self.set_next_sibling_raw(last.index(), NIL);
        }
    }

    /// Detaches `id` from its parent's child list (the `del(l)` command).
    ///
    /// The node and its subtree stay in the store but become unreachable from
    /// the tree root, matching `σ_u @ l_t` discarding disconnected locations.
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.parent(id) {
            let mut kids = self.children(p);
            kids.retain(|&c| c != id);
            self.relink_children(p, &kids);
            self.set_parent_raw(id.index(), NIL);
            self.set_next_sibling_raw(id.index(), NIL);
        }
    }

    /// Inserts `new_children` into `parent`'s child list at position `pos`
    /// (clamped to the list length), fixing parent pointers.
    pub fn insert_children_at(&mut self, parent: NodeId, pos: usize, new_children: &[NodeId]) {
        for &c in new_children {
            self.set_parent_raw(c.index(), parent.0);
        }
        if self.is_element(parent) {
            let mut kids = self.children(parent);
            let pos = pos.min(kids.len());
            for (i, &c) in new_children.iter().enumerate() {
                kids.insert(pos + i, c);
            }
            self.relink_children(parent, &kids);
        }
    }

    /// Appends `new_children` to `parent`'s child list.
    pub fn append_children(&mut self, parent: NodeId, new_children: &[NodeId]) {
        let len = self.children_iter(parent).count();
        self.insert_children_at(parent, len, new_children);
    }

    /// Inserts `new_siblings` immediately before `target` in its parent's
    /// child list. Returns `false` if `target` has no parent.
    pub fn insert_before(&mut self, target: NodeId, new_siblings: &[NodeId]) -> bool {
        match self.parent(target) {
            None => false,
            Some(p) => {
                let pos = self.children_iter(p).position(|c| c == target).unwrap_or(0);
                self.insert_children_at(p, pos, new_siblings);
                true
            }
        }
    }

    /// Inserts `new_siblings` immediately after `target` in its parent's
    /// child list. Returns `false` if `target` has no parent.
    pub fn insert_after(&mut self, target: NodeId, new_siblings: &[NodeId]) -> bool {
        match self.parent(target) {
            None => false,
            Some(p) => {
                let pos = self
                    .children_iter(p)
                    .position(|c| c == target)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| self.children_iter(p).count());
                self.insert_children_at(p, pos, new_siblings);
                true
            }
        }
    }

    /// Replaces `target` with `replacement` in its parent's child list (the
    /// `repl(l, L)` command). Returns `false` if `target` has no parent.
    pub fn replace(&mut self, target: NodeId, replacement: &[NodeId]) -> bool {
        match self.parent(target) {
            None => false,
            Some(p) => {
                let pos = self.children_iter(p).position(|c| c == target).unwrap_or(0);
                self.detach(target);
                self.insert_children_at(p, pos, replacement);
                true
            }
        }
    }

    /// Renames element `target` to `new_tag` (the `ren(l, a)` command).
    /// Text nodes are left untouched.
    pub fn rename(&mut self, target: NodeId, new_tag: &str) {
        if self.is_element(target) {
            let sym = self.intern(new_tag);
            self.update_cells(target.index(), |c| c.label = sym.0 as u32);
        }
    }

    /// Splices a fresh deep copy of `src_root`'s subtree (read from `src`,
    /// which may be a different store — typically the live document a
    /// materialized view was built from) in place of `target`: the copy is
    /// allocated on this store's copy-on-write tail, takes `target`'s
    /// position among its siblings, and `target`'s old subtree is detached.
    /// Returns the location of the new subtree root.
    ///
    /// This is the splice primitive of the delta view-maintenance path:
    /// after an update that only touches the *interior* of some result
    /// subtrees, a materialized view is repaired by re-copying exactly those
    /// subtrees instead of re-evaluating the view.
    ///
    /// # Panics
    /// Panics if `target` has no parent (a view's synthetic root cannot be
    /// patched in place — rebuild the view instead).
    pub fn patch_subtree(&mut self, target: NodeId, src: &Store, src_root: NodeId) -> NodeId {
        let fresh = self.deep_copy_from(src, src_root);
        let spliced = self.replace(target, &[fresh]);
        assert!(spliced, "patch_subtree target must be attached");
        fresh
    }

    // ----- freeze / snapshot -----

    /// Flattens this store into an immutable shared base, after which
    /// [`snapshot`](Self::snapshot) is O(1). A no-op when the store is
    /// already a clean frozen base. If the base's text blob had been spilled
    /// to the cold tier it is read back (re-freezing implies new hot data to
    /// merge).
    pub fn freeze(&mut self) {
        if self.base.is_some() && self.overlay.is_empty() && self.tail.len() == 0 {
            return;
        }
        let (mut cols, mut text) = match self.base.take() {
            None => (
                std::mem::take(&mut self.tail),
                std::mem::take(&mut self.tail_text),
            ),
            Some(b) => {
                let (mut cols, mut text) = match Arc::try_unwrap(b) {
                    Ok(b) => b.into_parts(),
                    Err(b) => (b.cols.clone(), b.hot_text()),
                };
                for (idx, cells) in self.overlay.drain() {
                    cols.set(idx as usize, cells);
                }
                // Tail span indices already continue the base numbering;
                // only their byte offsets shift on merge.
                let shift = u32::try_from(text.bytes.len()).expect("text arena overflow");
                for &(off, len) in &self.tail_text.spans {
                    text.spans.push((off + shift, len));
                }
                text.bytes.append(&mut self.tail_text.bytes);
                self.tail_text = TextArena::default();
                cols.append(&mut self.tail);
                (cols, text)
            }
        };
        cols.shrink_to_fit();
        text.shrink_to_fit();
        self.overlay.clear();
        self.dirty.clear();
        self.tail = Columns::default();
        self.tail_text = TextArena::default();
        self.base = Some(Arc::new(Base::new(cols, text)));
    }

    /// Spills the frozen base's text blob to the cold file tier (an unlinked
    /// temp file), freezing first if needed. Returns the number of bytes
    /// moved out of resident memory (0 if there was nothing to spill or the
    /// blob is already cold). Reads go through [`text_cow`](Self::text_cow)
    /// afterwards; [`text_value`](Self::text_value) reports `None` for
    /// spilled spans.
    #[cfg(feature = "cold-text")]
    pub fn spill_cold_text(&mut self) -> std::io::Result<usize> {
        self.freeze();
        let Some(base) = self.base.take() else {
            return Ok(0);
        };
        if base.cold.is_some() {
            self.base = Some(base);
            return Ok(0);
        }
        let base = Arc::try_unwrap(base).unwrap_or_else(|b| Base {
            cols: b.cols.clone(),
            text: b.text.clone(),
            cold: None,
        });
        let spilled = base.text.bytes.len();
        let cold = cold::ColdText::write(&base.text.bytes)?;
        self.base = Some(Arc::new(Base {
            cols: base.cols,
            text: TextArena {
                spans: base.text.spans,
                bytes: Vec::new(),
            },
            cold: Some(cold),
        }));
        Ok(spilled)
    }

    /// A copy-on-write snapshot of this store: observationally identical to
    /// `self.clone()`, but sharing the frozen base columns instead of copying
    /// them. O(1) when the store is a clean frozen base (see
    /// [`freeze`](Self::freeze)); falls back to a deep clone otherwise.
    pub fn snapshot(&self) -> Store {
        if self.overlay.is_empty() && self.tail.len() == 0 {
            Store {
                base: self.base.clone(),
                overlay: HashMap::new(),
                dirty: Vec::new(),
                tail: Columns::default(),
                tail_text: TextArena::default(),
                symbols: Arc::clone(&self.symbols),
            }
        } else {
            self.clone()
        }
    }

    // ----- document order -----

    /// Computes a map from location to document-order rank for the tree
    /// rooted at `root`. Locations not reachable from `root` are absent.
    pub fn doc_order(&self, root: NodeId) -> std::collections::HashMap<NodeId, usize> {
        let mut map = std::collections::HashMap::new();
        for (i, n) in self.descendants_or_self(root).into_iter().enumerate() {
            map.insert(n, i);
        }
        map
    }

    /// Sorts `nodes` into document order (relative to `root`) and removes
    /// duplicates, as required by XPath step semantics.
    pub fn sort_doc_order_dedup(&self, root: NodeId, nodes: &mut Vec<NodeId>) {
        let order = self.doc_order(root);
        nodes.sort_by_key(|n| order.get(n).copied().unwrap_or(usize::MAX));
        nodes.dedup();
    }
}

/// A non-allocating iterator over a node's child locations (the
/// `first_child` / `next_sibling` chain).
pub struct ChildIds<'s> {
    store: &'s Store,
    cur: Option<NodeId>,
}

impl Iterator for ChildIds<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = self.store.next_sibling(id);
        Some(id)
    }
}

/// A lightweight accessor view of one node: the unified way for call sites
/// outside `qui-xmlstore` to read node contents without touching columns
/// directly.
#[derive(Clone, Copy)]
pub struct NodeRef<'s> {
    store: &'s Store,
    id: NodeId,
}

impl<'s> NodeRef<'s> {
    /// The node's location.
    #[inline]
    pub fn id(self) -> NodeId {
        self.id
    }

    /// The store this view reads from.
    #[inline]
    pub fn store(self) -> &'s Store {
        self.store
    }

    /// Returns `true` for element nodes.
    #[inline]
    pub fn is_element(self) -> bool {
        self.store.is_element(self.id)
    }

    /// Returns `true` for text nodes.
    #[inline]
    pub fn is_text(self) -> bool {
        self.store.is_text(self.id)
    }

    /// The tag if this is an element node.
    #[inline]
    pub fn tag(self) -> Option<&'s str> {
        self.store.tag(self.id)
    }

    /// The interned tag symbol if this is an element node.
    #[inline]
    pub fn sym(self) -> Option<Sym> {
        self.store.sym(self.id)
    }

    /// The text value if this is a text node (pages in cold bytes).
    #[inline]
    pub fn text(self) -> Option<Cow<'s, str>> {
        self.store.text_cow(self.id)
    }

    /// The parent location, if any.
    #[inline]
    pub fn parent_id(self) -> Option<NodeId> {
        self.store.parent(self.id)
    }

    /// The parent view, if any.
    #[inline]
    pub fn parent(self) -> Option<NodeRef<'s>> {
        self.parent_id().map(|id| self.store.node_ref(id))
    }

    /// The first child view, if any.
    #[inline]
    pub fn first_child(self) -> Option<NodeRef<'s>> {
        self.store
            .first_child(self.id)
            .map(|id| self.store.node_ref(id))
    }

    /// The next sibling view, if any.
    #[inline]
    pub fn next_sibling(self) -> Option<NodeRef<'s>> {
        self.store
            .next_sibling(self.id)
            .map(|id| self.store.node_ref(id))
    }

    /// Iterates over the ordered child locations without allocating.
    #[inline]
    pub fn child_ids(self) -> ChildIds<'s> {
        self.store.children_iter(self.id)
    }

    /// Iterates over the ordered child views without allocating.
    #[inline]
    pub fn children(self) -> impl Iterator<Item = NodeRef<'s>> {
        let store = self.store;
        self.child_ids().map(move |id| store.node_ref(id))
    }
}

impl std::fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.tag() {
            Some(tag) => write!(f, "{}:<{tag}>", self.id),
            None => write!(f, "{}:text", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Store, NodeId, NodeId, NodeId, NodeId) {
        // <doc><a><c/></a><b>text</b></doc>
        let mut s = Store::new();
        let c = s.new_element("c", vec![]);
        let a = s.new_element("a", vec![c]);
        let t = s.new_text("text");
        let b = s.new_element("b", vec![t]);
        let doc = s.new_element("doc", vec![a, b]);
        (s, doc, a, b, c)
    }

    #[test]
    fn navigation_basics() {
        let (s, doc, a, b, c) = sample();
        assert_eq!(s.children(doc), &[a, b]);
        assert_eq!(s.parent(a), Some(doc));
        assert_eq!(s.parent(doc), None);
        assert_eq!(s.ancestors(c), vec![a, doc]);
        assert_eq!(s.descendants(doc).len(), 4);
        assert_eq!(s.descendants_or_self(doc)[0], doc);
        assert_eq!(s.subtree_size(doc), 5);
        assert_eq!(s.tag(a), Some("a"));
        assert!(s.text_value(a).is_none());
    }

    #[test]
    fn sibling_navigation() {
        let (s, _doc, a, b, _c) = sample();
        assert_eq!(s.following_siblings(a), vec![b]);
        assert_eq!(s.preceding_siblings(b), vec![a]);
        assert!(s.following_siblings(b).is_empty());
        assert!(s.preceding_siblings(a).is_empty());
    }

    #[test]
    fn node_ref_view_reads_the_columns() {
        let (s, doc, a, _b, _c) = sample();
        let root = s.node_ref(doc);
        assert_eq!(root.tag(), Some("doc"));
        assert!(root.is_element() && !root.is_text());
        assert_eq!(root.parent_id(), None);
        let kids: Vec<NodeId> = root.child_ids().collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(root.first_child().unwrap().id(), a);
        assert_eq!(
            root.first_child().unwrap().next_sibling().unwrap().tag(),
            Some("b")
        );
        let texts: Vec<String> = root
            .children()
            .flat_map(|c| c.children())
            .filter_map(|c| c.text().map(|t| t.into_owned()))
            .collect();
        assert_eq!(texts, vec!["text".to_string()]);
        assert_eq!(root.sym(), s.symbols().lookup("doc"));
    }

    #[test]
    fn symbols_are_interned_per_store() {
        let (mut s, _doc, a, b, _c) = sample();
        assert_eq!(s.sym(a), s.symbols().lookup("a"));
        let before = s.symbols().len();
        let a2 = s.new_element("a", vec![]);
        assert_eq!(s.symbols().len(), before, "re-interning allocates nothing");
        assert_eq!(s.sym(a2), s.sym(a));
        assert_ne!(s.sym(a), s.sym(b));
    }

    #[test]
    fn detach_removes_from_parent() {
        let (mut s, doc, a, b, _c) = sample();
        s.detach(a);
        assert_eq!(s.children(doc), &[b]);
        assert_eq!(s.parent(a), None);
        assert!(s.following_siblings(a).is_empty());
        // Store itself keeps the location (domains only grow).
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn insert_before_after_and_append() {
        let (mut s, doc, a, b, _c) = sample();
        let x = s.new_element("x", vec![]);
        let y = s.new_element("y", vec![]);
        let z = s.new_element("z", vec![]);
        assert!(s.insert_before(b, &[x]));
        assert!(s.insert_after(a, &[y]));
        s.append_children(doc, &[z]);
        assert_eq!(s.children(doc), &[a, y, x, b, z]);
        assert_eq!(s.parent(x), Some(doc));
    }

    #[test]
    fn replace_and_rename() {
        let (mut s, doc, a, b, _c) = sample();
        let x = s.new_element("x", vec![]);
        assert!(s.replace(a, &[x]));
        assert_eq!(s.children(doc), &[x, b]);
        s.rename(b, "renamed");
        assert_eq!(s.tag(b), Some("renamed"));
    }

    #[test]
    fn replace_root_fails() {
        let (mut s, doc, ..) = sample();
        let x = s.new_element("x", vec![]);
        assert!(!s.replace(doc, &[x]));
        assert!(!s.insert_before(doc, &[x]));
        assert!(!s.insert_after(doc, &[x]));
    }

    #[test]
    fn deep_copy_is_isomorphic_but_fresh() {
        let (mut s, doc, ..) = sample();
        let copy = s.deep_copy(doc);
        assert_ne!(copy, doc);
        assert!(crate::value_equiv(&s, doc, &s, copy));
    }

    #[test]
    fn deep_copy_shares_text_spans() {
        let (mut s, doc, ..) = sample();
        let text_bytes = s.column_bytes().text_bytes;
        let copy = s.deep_copy(doc);
        assert!(crate::value_equiv(&s, doc, &s, copy));
        // The copy added no text bytes: spans are shared.
        assert_eq!(s.column_bytes().text_bytes, text_bytes);
    }

    #[test]
    fn deep_copy_from_other_store() {
        let (s1, doc, ..) = sample();
        let mut s2 = Store::new();
        let copy = s2.deep_copy_from(&s1, doc);
        assert!(crate::value_equiv(&s1, doc, &s2, copy));
    }

    #[test]
    fn snapshot_matches_clone_under_mutation() {
        let (mut s, doc, a, b, c) = sample();
        s.freeze();
        let clone = s.clone();
        let mut snap = s.snapshot();
        assert_eq!(snap.len(), clone.len());
        // Same locations, same navigation.
        assert_eq!(snap.children(doc), clone.children(doc));
        assert_eq!(snap.ancestors(c), clone.ancestors(c));
        // Mutations on the snapshot allocate the same ids a clone would and
        // leave the frozen base (and sibling snapshots) untouched.
        let x = snap.new_element("x", vec![]);
        assert_eq!(x.index(), s.len());
        snap.detach(a);
        assert!(snap.insert_before(b, &[x]));
        snap.rename(b, "renamed");
        assert_eq!(snap.children(doc), vec![x, b]);
        assert_eq!(snap.tag(b), Some("renamed"));
        assert_eq!(s.children(doc), &[a, b], "base store is isolated");
        assert_eq!(s.tag(b), Some("b"));
        let other = s.snapshot();
        assert_eq!(other.children(doc), &[a, b], "snapshots are isolated");
        assert_eq!(other.len(), s.len());
    }

    #[test]
    fn freeze_flattens_overlay_and_tail() {
        let (mut s, doc, a, _b, _c) = sample();
        s.freeze();
        let mut snap = s.snapshot();
        let x = snap.new_element("x", vec![]);
        snap.replace(a, &[x]);
        let before: Vec<_> = snap.descendants_or_self(doc);
        // Re-freezing the mutated snapshot folds overlay + tail into a new
        // base; second-generation snapshots see the merged document.
        snap.freeze();
        let second = snap.snapshot();
        assert_eq!(second.descendants_or_self(doc), before);
        assert_eq!(second.len(), snap.len());
        assert_eq!(second.tag(x), Some("x"));
    }

    #[test]
    fn freeze_preserves_text_spans_across_generations() {
        let (mut s, _doc, _a, b, _c) = sample();
        s.freeze();
        let mut snap = s.snapshot();
        let t2 = snap.new_text("tail text");
        snap.append_children(b, &[t2]);
        assert_eq!(snap.text_value(t2), Some("tail text"));
        snap.freeze();
        let kids = snap.children(b);
        assert_eq!(snap.text_value(kids[0]), Some("text"));
        assert_eq!(snap.text_value(t2), Some("tail text"));
    }

    #[test]
    fn unfrozen_snapshot_falls_back_to_deep_clone() {
        let (mut s, doc, a, _b, _c) = sample();
        // Not frozen: snapshot must still be a faithful independent copy.
        let mut snap = s.snapshot();
        snap.detach(a);
        assert_eq!(s.children(doc).len(), 2);
        assert_eq!(snap.children(doc).len(), 1);
        s.freeze();
        // Frozen but then mutated: snapshot again falls back to a clone.
        let mut dirty = s.snapshot();
        dirty.rename(a, "z");
        let copy = dirty.snapshot();
        assert_eq!(copy.tag(a), Some("z"));
    }

    #[test]
    fn snapshots_intern_new_tags_in_isolation() {
        let (mut s, _doc, a, _b, _c) = sample();
        s.freeze();
        let mut snap1 = s.snapshot();
        let mut snap2 = s.snapshot();
        snap1.rename(a, "only-in-snap1");
        assert_eq!(snap1.tag(a), Some("only-in-snap1"));
        assert_eq!(snap2.tag(a), Some("a"));
        assert!(snap2.symbols().lookup("only-in-snap1").is_none());
        snap2.rename(a, "only-in-snap2");
        assert_eq!(snap2.tag(a), Some("only-in-snap2"));
        assert!(s.symbols().lookup("only-in-snap1").is_none());
    }

    #[test]
    fn doc_order_sorting() {
        let (s, doc, a, b, c) = sample();
        let mut v = vec![b, c, a, b];
        s.sort_doc_order_dedup(doc, &mut v);
        assert_eq!(v, vec![a, c, b]);
    }

    #[test]
    fn column_bytes_accounts_every_column() {
        let (mut s, ..) = sample();
        let bytes = s.column_bytes();
        let per_col = 5 * std::mem::size_of::<u32>();
        assert!(
            bytes.label + bytes.parent + bytes.first_child + bytes.next_sibling + bytes.text_offset
                >= s.len() * per_col
        );
        assert!(bytes.text_bytes >= "text".len());
        assert!(bytes.symbols > 0);
        assert_eq!(bytes.total(), s.heap_bytes());
        // Freezing shrinks capacity to length; accounting follows.
        s.freeze();
        let frozen = s.column_bytes();
        assert_eq!(frozen.label, s.len() * std::mem::size_of::<u32>());
        assert_eq!(frozen.overlay, 0);
    }

    #[test]
    fn node_ref_reads_the_columnar_view() {
        let (s, doc, a, b, _c) = sample();
        let node = s.node_ref(doc);
        assert_eq!(node.tag(), Some("doc"));
        assert!(node.parent().is_none());
        assert_eq!(s.children(doc), vec![a, b]);
        assert!(node.is_element());
    }

    #[cfg(feature = "cold-text")]
    #[test]
    fn cold_spill_pages_text_back_in() {
        let (mut s, doc, _a, b, _c) = sample();
        let spilled = s.spill_cold_text().expect("spill");
        assert_eq!(spilled, "text".len());
        assert_eq!(s.column_bytes().text_bytes, 0);
        assert_eq!(s.column_bytes().cold_text, spilled);
        let t = s.children(b)[0];
        // Hot borrow is gone; the cow pages it back in.
        assert_eq!(s.text_value(t), None);
        assert_eq!(s.text_cow(t).as_deref(), Some("text"));
        // Snapshots share the cold file; new text in the tail stays hot.
        let mut snap = s.snapshot();
        let fresh = snap.new_text("hot tail");
        snap.append_children(b, &[fresh]);
        assert_eq!(snap.text_cow(t).as_deref(), Some("text"));
        assert_eq!(snap.text_value(fresh), Some("hot tail"));
        // Re-freezing rehydrates the blob.
        snap.freeze();
        assert_eq!(snap.text_value(t), Some("text"));
        assert!(crate::value_equiv(&snap, doc, &snap, doc));
    }
}
