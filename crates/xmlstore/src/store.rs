//! The store `σ`: an arena of nodes with the primitive mutations required by
//! the XQuery Update Facility semantics (paper §2), with snapshot-isolated
//! copy-on-write sharing for the maintenance simulation.

use crate::node::{Node, NodeId, NodeKind};
use std::collections::HashMap;
use std::sync::Arc;

const WORD_BITS: usize = 64;

/// An XML store `σ` — an arena associating node locations with nodes.
///
/// The store supports both pure navigation (children, parent, axes helpers)
/// and the primitive mutations used when applying an update pending list:
/// insertion of children, detaching (deletion), renaming and replacement.
///
/// Locations are never reused; applying an update only ever *adds* locations
/// (`dom(σ) ⊆ dom(σ_w) ⊆ dom(σ_u)` in the paper) and detaches those removed
/// from the accessible tree.
///
/// ## Snapshots
///
/// A store can be [frozen](Self::freeze) into an immutable shared *base*;
/// [`snapshot`](Self::snapshot) then hands out lightweight copy-on-write
/// stores sharing that base behind an [`Arc`]: reads go straight to the base
/// arena, the first mutation of a base node materializes just that node in a
/// private overlay, and freshly allocated nodes live in a private tail that
/// continues the base's location sequence. A snapshot is observationally
/// identical to a deep clone — same locations, same navigation, same
/// mutation semantics — without paying O(document) per worker.
#[derive(Clone, Debug, Default)]
pub struct Store {
    /// The shared immutable snapshot base, if any.
    base: Option<Arc<Vec<Node>>>,
    /// Base nodes modified by this store (copy-on-write), by location.
    overlay: HashMap<u32, Node>,
    /// One bit per base location: set = the node lives in `overlay`.
    dirty: Vec<u64>,
    /// Nodes allocated after the snapshot; location `base_len + i`.
    tail: Vec<Node>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Creates an empty store with pre-allocated capacity for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        Store {
            tail: Vec::with_capacity(cap),
            ..Store::default()
        }
    }

    #[inline]
    fn base_len(&self) -> usize {
        self.base.as_ref().map(|b| b.len()).unwrap_or(0)
    }

    /// Number of locations in the store (`|dom(σ)|`).
    pub fn len(&self) -> usize {
        self.base_len() + self.tail.len()
    }

    /// Returns `true` if the store contains no locations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all locations in the store, in allocation order.
    pub fn locations(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// A deterministic estimate of the heap bytes this store's nodes occupy
    /// (arena slots plus tag/text/child-list payloads, by length rather than
    /// capacity), counting shared base nodes as if owned. Used by the
    /// streaming-ingest reports to compare resident tree size against input
    /// size.
    pub fn approx_heap_bytes(&self) -> usize {
        let slot = std::mem::size_of::<Node>();
        self.locations()
            .map(|id| {
                slot + match &self.node(id).kind {
                    NodeKind::Element { tag, children } => {
                        tag.len() + children.len() * std::mem::size_of::<NodeId>()
                    }
                    NodeKind::Text(s) => s.len(),
                }
            })
            .sum()
    }

    /// Returns a reference to the node at `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a location of this store.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        let idx = id.index();
        let base_len = self.base_len();
        if idx < base_len {
            if self
                .dirty
                .get(idx / WORD_BITS)
                .is_some_and(|&w| w & (1u64 << (idx % WORD_BITS)) != 0)
            {
                &self.overlay[&id.0]
            } else {
                &self.base.as_ref().expect("base present")[idx]
            }
        } else {
            &self.tail[idx - base_len]
        }
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let idx = id.index();
        let base_len = self.base_len();
        if idx < base_len {
            let w = idx / WORD_BITS;
            let m = 1u64 << (idx % WORD_BITS);
            if self.dirty.get(w).is_none_or(|&word| word & m == 0) {
                if self.dirty.len() <= w {
                    self.dirty.resize(base_len.div_ceil(WORD_BITS), 0);
                }
                self.dirty[w] |= m;
                let node = self.base.as_ref().expect("base present")[idx].clone();
                self.overlay.insert(id.0, node);
            }
            self.overlay.get_mut(&id.0).expect("just materialized")
        } else {
            &mut self.tail[idx - base_len]
        }
    }

    /// Flattens this store into an immutable shared base, after which
    /// [`snapshot`](Self::snapshot) is O(1). A no-op when the store is
    /// already a clean frozen base.
    pub fn freeze(&mut self) {
        if self.base.is_some() && self.overlay.is_empty() && self.tail.is_empty() {
            return;
        }
        let mut nodes = match self.base.take() {
            None => std::mem::take(&mut self.tail),
            Some(b) => {
                let mut v = Arc::try_unwrap(b).unwrap_or_else(|b| b.as_ref().clone());
                for (idx, node) in self.overlay.drain() {
                    v[idx as usize] = node;
                }
                v.append(&mut self.tail);
                v
            }
        };
        nodes.shrink_to_fit();
        self.overlay.clear();
        self.dirty.clear();
        self.base = Some(Arc::new(nodes));
    }

    /// A copy-on-write snapshot of this store: observationally identical to
    /// `self.clone()`, but sharing the frozen base arena instead of copying
    /// it. O(1) when the store is a clean frozen base (see
    /// [`freeze`](Self::freeze)); falls back to a deep clone otherwise.
    pub fn snapshot(&self) -> Store {
        if self.overlay.is_empty() && self.tail.is_empty() {
            Store {
                base: self.base.clone(),
                overlay: HashMap::new(),
                dirty: Vec::new(),
                tail: Vec::new(),
            }
        } else {
            self.clone()
        }
    }

    /// Allocates a new element node `tag[children]`, fixing the children's
    /// parent pointers, and returns its location.
    pub fn new_element(&mut self, tag: impl Into<String>, children: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.len() as u32);
        for &c in &children {
            self.node_mut(c).parent = Some(id);
        }
        self.tail.push(Node::element(tag, children));
        id
    }

    /// Allocates a new text node and returns its location.
    pub fn new_text(&mut self, value: impl Into<String>) -> NodeId {
        let id = NodeId(self.len() as u32);
        self.tail.push(Node::text(value));
        id
    }

    /// The tag of `id` if it is an element node.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        self.node(id).kind.tag()
    }

    /// The text value of `id` if it is a text node.
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Text(s) => Some(s),
            NodeKind::Element { .. } => None,
        }
    }

    /// Returns `true` if `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        self.node(id).kind.is_element()
    }

    /// Returns `true` if `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        self.node(id).kind.is_text()
    }

    /// The ordered children of `id` (empty for text nodes).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match &self.node(id).kind {
            NodeKind::Element { children, .. } => children,
            NodeKind::Text(_) => &[],
        }
    }

    /// The parent location of `id`, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// All ancestors of `id`, nearest first (excluding `id` itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// All descendants of `id` in document (pre) order, excluding `id`.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// `id` followed by all its descendants in document (pre) order.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        out.extend(self.descendants(id));
        out
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        1 + self.descendants(id).len()
    }

    /// The following siblings of `id`, in document order.
    pub fn following_siblings(&self, id: NodeId) -> Vec<NodeId> {
        match self.parent(id) {
            None => Vec::new(),
            Some(p) => {
                let kids = self.children(p);
                match kids.iter().position(|&k| k == id) {
                    Some(pos) => kids[pos + 1..].to_vec(),
                    None => Vec::new(),
                }
            }
        }
    }

    /// The preceding siblings of `id`, in document order.
    pub fn preceding_siblings(&self, id: NodeId) -> Vec<NodeId> {
        match self.parent(id) {
            None => Vec::new(),
            Some(p) => {
                let kids = self.children(p);
                match kids.iter().position(|&k| k == id) {
                    Some(pos) => kids[..pos].to_vec(),
                    None => Vec::new(),
                }
            }
        }
    }

    /// Deep-copies the subtree rooted at `src` (which may live in another
    /// store) into `self`, returning the location of the copied root.
    ///
    /// This is the "copy semantics" of XQuery element construction and of the
    /// insert/replace source lists: inserted trees are fresh copies.
    pub fn deep_copy_from(&mut self, src_store: &Store, src: NodeId) -> NodeId {
        match &src_store.node(src).kind {
            NodeKind::Text(s) => self.new_text(s.clone()),
            NodeKind::Element { tag, children } => {
                let tag = tag.clone();
                let copied: Vec<NodeId> = children
                    .iter()
                    .map(|&c| self.deep_copy_from(src_store, c))
                    .collect();
                self.new_element(tag, copied)
            }
        }
    }

    /// Deep-copies a subtree within this store.
    pub fn deep_copy(&mut self, src: NodeId) -> NodeId {
        // Collect the structure first to satisfy the borrow checker without
        // cloning the whole store.
        enum Plan {
            Text(String),
            Element(String, Vec<usize>),
        }
        // Post-order linearization of the source subtree.
        let mut plans: Vec<Plan> = Vec::new();
        fn walk(store: &Store, id: NodeId, plans: &mut Vec<Plan>) -> usize {
            match &store.node(id).kind {
                NodeKind::Text(s) => {
                    plans.push(Plan::Text(s.clone()));
                    plans.len() - 1
                }
                NodeKind::Element { tag, children } => {
                    let idxs: Vec<usize> =
                        children.iter().map(|&c| walk(store, c, plans)).collect();
                    plans.push(Plan::Element(tag.clone(), idxs));
                    plans.len() - 1
                }
            }
        }
        let root_plan = walk(self, src, &mut plans);
        let mut ids: Vec<Option<NodeId>> = vec![None; plans.len()];
        for (i, plan) in plans.iter().enumerate() {
            let id = match plan {
                Plan::Text(s) => self.new_text(s.clone()),
                Plan::Element(tag, kids) => {
                    let kid_ids: Vec<NodeId> =
                        kids.iter().map(|&k| ids[k].expect("post-order")).collect();
                    self.new_element(tag.clone(), kid_ids)
                }
            };
            ids[i] = Some(id);
        }
        ids[root_plan].expect("root planned")
    }

    // ----- primitive mutations (application of update pending lists) -----

    /// Detaches `id` from its parent's child list (the `del(l)` command).
    ///
    /// The node and its subtree stay in the store but become unreachable from
    /// the tree root, matching `σ_u @ l_t` discarding disconnected locations.
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.parent(id) {
            if let NodeKind::Element { children, .. } = &mut self.node_mut(p).kind {
                children.retain(|&c| c != id);
            }
            self.node_mut(id).parent = None;
        }
    }

    /// Inserts `new_children` into `parent`'s child list at position `pos`
    /// (clamped to the list length), fixing parent pointers.
    pub fn insert_children_at(&mut self, parent: NodeId, pos: usize, new_children: &[NodeId]) {
        for &c in new_children {
            self.node_mut(c).parent = Some(parent);
        }
        if let NodeKind::Element { children, .. } = &mut self.node_mut(parent).kind {
            let pos = pos.min(children.len());
            for (i, &c) in new_children.iter().enumerate() {
                children.insert(pos + i, c);
            }
        }
    }

    /// Appends `new_children` to `parent`'s child list.
    pub fn append_children(&mut self, parent: NodeId, new_children: &[NodeId]) {
        let len = self.children(parent).len();
        self.insert_children_at(parent, len, new_children);
    }

    /// Inserts `new_siblings` immediately before `target` in its parent's
    /// child list. Returns `false` if `target` has no parent.
    pub fn insert_before(&mut self, target: NodeId, new_siblings: &[NodeId]) -> bool {
        match self.parent(target) {
            None => false,
            Some(p) => {
                let pos = self
                    .children(p)
                    .iter()
                    .position(|&c| c == target)
                    .unwrap_or(0);
                self.insert_children_at(p, pos, new_siblings);
                true
            }
        }
    }

    /// Inserts `new_siblings` immediately after `target` in its parent's
    /// child list. Returns `false` if `target` has no parent.
    pub fn insert_after(&mut self, target: NodeId, new_siblings: &[NodeId]) -> bool {
        match self.parent(target) {
            None => false,
            Some(p) => {
                let pos = self
                    .children(p)
                    .iter()
                    .position(|&c| c == target)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| self.children(p).len());
                self.insert_children_at(p, pos, new_siblings);
                true
            }
        }
    }

    /// Replaces `target` with `replacement` in its parent's child list (the
    /// `repl(l, L)` command). Returns `false` if `target` has no parent.
    pub fn replace(&mut self, target: NodeId, replacement: &[NodeId]) -> bool {
        match self.parent(target) {
            None => false,
            Some(p) => {
                let pos = self
                    .children(p)
                    .iter()
                    .position(|&c| c == target)
                    .unwrap_or(0);
                self.detach(target);
                self.insert_children_at(p, pos, replacement);
                true
            }
        }
    }

    /// Renames element `target` to `new_tag` (the `ren(l, a)` command).
    /// Text nodes are left untouched.
    pub fn rename(&mut self, target: NodeId, new_tag: &str) {
        if let NodeKind::Element { tag, .. } = &mut self.node_mut(target).kind {
            *tag = new_tag.to_string();
        }
    }

    /// Computes a map from location to document-order rank for the tree
    /// rooted at `root`. Locations not reachable from `root` are absent.
    pub fn doc_order(&self, root: NodeId) -> std::collections::HashMap<NodeId, usize> {
        let mut map = std::collections::HashMap::new();
        for (i, n) in self.descendants_or_self(root).into_iter().enumerate() {
            map.insert(n, i);
        }
        map
    }

    /// Sorts `nodes` into document order (relative to `root`) and removes
    /// duplicates, as required by XPath step semantics.
    pub fn sort_doc_order_dedup(&self, root: NodeId, nodes: &mut Vec<NodeId>) {
        let order = self.doc_order(root);
        nodes.sort_by_key(|n| order.get(n).copied().unwrap_or(usize::MAX));
        nodes.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Store, NodeId, NodeId, NodeId, NodeId) {
        // <doc><a><c/></a><b>text</b></doc>
        let mut s = Store::new();
        let c = s.new_element("c", vec![]);
        let a = s.new_element("a", vec![c]);
        let t = s.new_text("text");
        let b = s.new_element("b", vec![t]);
        let doc = s.new_element("doc", vec![a, b]);
        (s, doc, a, b, c)
    }

    #[test]
    fn navigation_basics() {
        let (s, doc, a, b, c) = sample();
        assert_eq!(s.children(doc), &[a, b]);
        assert_eq!(s.parent(a), Some(doc));
        assert_eq!(s.parent(doc), None);
        assert_eq!(s.ancestors(c), vec![a, doc]);
        assert_eq!(s.descendants(doc).len(), 4);
        assert_eq!(s.descendants_or_self(doc)[0], doc);
        assert_eq!(s.subtree_size(doc), 5);
        assert_eq!(s.tag(a), Some("a"));
        assert!(s.text_value(a).is_none());
    }

    #[test]
    fn sibling_navigation() {
        let (s, _doc, a, b, _c) = sample();
        assert_eq!(s.following_siblings(a), vec![b]);
        assert_eq!(s.preceding_siblings(b), vec![a]);
        assert!(s.following_siblings(b).is_empty());
        assert!(s.preceding_siblings(a).is_empty());
    }

    #[test]
    fn detach_removes_from_parent() {
        let (mut s, doc, a, b, _c) = sample();
        s.detach(a);
        assert_eq!(s.children(doc), &[b]);
        assert_eq!(s.parent(a), None);
        // Store itself keeps the location (domains only grow).
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn insert_before_after_and_append() {
        let (mut s, doc, a, b, _c) = sample();
        let x = s.new_element("x", vec![]);
        let y = s.new_element("y", vec![]);
        let z = s.new_element("z", vec![]);
        assert!(s.insert_before(b, &[x]));
        assert!(s.insert_after(a, &[y]));
        s.append_children(doc, &[z]);
        assert_eq!(s.children(doc), &[a, y, x, b, z]);
        assert_eq!(s.parent(x), Some(doc));
    }

    #[test]
    fn replace_and_rename() {
        let (mut s, doc, a, b, _c) = sample();
        let x = s.new_element("x", vec![]);
        assert!(s.replace(a, &[x]));
        assert_eq!(s.children(doc), &[x, b]);
        s.rename(b, "renamed");
        assert_eq!(s.tag(b), Some("renamed"));
    }

    #[test]
    fn replace_root_fails() {
        let (mut s, doc, ..) = sample();
        let x = s.new_element("x", vec![]);
        assert!(!s.replace(doc, &[x]));
        assert!(!s.insert_before(doc, &[x]));
        assert!(!s.insert_after(doc, &[x]));
    }

    #[test]
    fn deep_copy_is_isomorphic_but_fresh() {
        let (mut s, doc, ..) = sample();
        let copy = s.deep_copy(doc);
        assert_ne!(copy, doc);
        assert!(crate::value_equiv(&s, doc, &s, copy));
    }

    #[test]
    fn deep_copy_from_other_store() {
        let (s1, doc, ..) = sample();
        let mut s2 = Store::new();
        let copy = s2.deep_copy_from(&s1, doc);
        assert!(crate::value_equiv(&s1, doc, &s2, copy));
    }

    #[test]
    fn snapshot_matches_clone_under_mutation() {
        let (mut s, doc, a, b, c) = sample();
        s.freeze();
        let clone = s.clone();
        let mut snap = s.snapshot();
        assert_eq!(snap.len(), clone.len());
        // Same locations, same navigation.
        assert_eq!(snap.children(doc), clone.children(doc));
        assert_eq!(snap.ancestors(c), clone.ancestors(c));
        // Mutations on the snapshot allocate the same ids a clone would and
        // leave the frozen base (and sibling snapshots) untouched.
        let x = snap.new_element("x", vec![]);
        assert_eq!(x.index(), s.len());
        snap.detach(a);
        assert!(snap.insert_before(b, &[x]));
        snap.rename(b, "renamed");
        assert_eq!(snap.children(doc), vec![x, b]);
        assert_eq!(snap.tag(b), Some("renamed"));
        assert_eq!(s.children(doc), &[a, b], "base store is isolated");
        assert_eq!(s.tag(b), Some("b"));
        let other = s.snapshot();
        assert_eq!(other.children(doc), &[a, b], "snapshots are isolated");
        assert_eq!(other.len(), s.len());
    }

    #[test]
    fn freeze_flattens_overlay_and_tail() {
        let (mut s, doc, a, _b, _c) = sample();
        s.freeze();
        let mut snap = s.snapshot();
        let x = snap.new_element("x", vec![]);
        snap.replace(a, &[x]);
        let before: Vec<_> = snap.descendants_or_self(doc);
        // Re-freezing the mutated snapshot folds overlay + tail into a new
        // base; second-generation snapshots see the merged document.
        snap.freeze();
        let second = snap.snapshot();
        assert_eq!(second.descendants_or_self(doc), before);
        assert_eq!(second.len(), snap.len());
        assert_eq!(second.tag(x), Some("x"));
    }

    #[test]
    fn unfrozen_snapshot_falls_back_to_deep_clone() {
        let (mut s, doc, a, _b, _c) = sample();
        // Not frozen: snapshot must still be a faithful independent copy.
        let mut snap = s.snapshot();
        snap.detach(a);
        assert_eq!(s.children(doc).len(), 2);
        assert_eq!(snap.children(doc).len(), 1);
        s.freeze();
        // Frozen but then mutated: snapshot again falls back to a clone.
        let mut dirty = s.snapshot();
        dirty.rename(a, "z");
        let copy = dirty.snapshot();
        assert_eq!(copy.tag(a), Some("z"));
    }

    #[test]
    fn doc_order_sorting() {
        let (s, doc, a, b, c) = sample();
        let mut v = vec![b, c, a, b];
        s.sort_doc_order_dedup(doc, &mut v);
        assert_eq!(v, vec![a, c, b]);
    }
}
