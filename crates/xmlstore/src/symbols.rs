//! Interned symbols shared by the columnar store and the schema layer.
//!
//! Tag names are interned into small integers ([`Sym`]) so that the store's
//! label column is a dense `u32` vector, and so that chains, content models
//! and CDAG nodes (in `qui-schema` / `qui-core`, which re-export these
//! types) can be compared and hashed cheaply. The reserved symbol
//! [`TEXT_SYM`] plays the role of the paper's string type `S` and doubles as
//! the label of text nodes in the store.

use std::collections::HashMap;
use std::fmt;

/// An interned symbol (an element tag, or the text type `S`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u16);

/// The reserved symbol standing for the paper's string type `S` (text nodes).
pub const TEXT_SYM: Sym = Sym(0);

/// The display name used for [`TEXT_SYM`].
pub const TEXT_NAME: &str = "#text";

impl Sym {
    /// Index usable for dense per-symbol tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the text type `S`.
    #[inline]
    pub fn is_text(self) -> bool {
        self == TEXT_SYM
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A symbol interner. Index 0 is always the text type `S`.
#[derive(Clone, Debug)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolTable {
    /// Creates a table containing only the reserved text symbol.
    pub fn new() -> Self {
        let mut t = SymbolTable {
            names: Vec::new(),
            map: HashMap::new(),
        };
        let s = t.intern(TEXT_NAME);
        debug_assert_eq!(s, TEXT_SYM);
        t
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(u16::try_from(self.names.len()).expect("symbol table overflow (max 65535)"));
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The name of `sym`.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols (including the text symbol).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if only the text symbol is interned.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates over all symbols, including [`TEXT_SYM`].
    pub fn all(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.names.len() as u16).map(Sym)
    }

    /// Iterates over all element symbols (excluding [`TEXT_SYM`]).
    pub fn elements(&self) -> impl Iterator<Item = Sym> + '_ {
        (1..self.names.len() as u16).map(Sym)
    }

    /// Heap bytes held by the interner (name strings plus map storage, by
    /// capacity). Part of the store's exact byte accounting.
    pub fn heap_bytes(&self) -> usize {
        let names: usize = self
            .names
            .iter()
            .map(|n| n.capacity() + std::mem::size_of::<String>())
            .sum();
        let keys: usize = self.map.keys().map(|k| k.capacity()).sum();
        names + keys + self.map.capacity() * (std::mem::size_of::<(String, Sym)>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_symbol_is_reserved() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup(TEXT_NAME), Some(TEXT_SYM));
        assert!(TEXT_SYM.is_text());
        assert_eq!(t.name(TEXT_SYM), TEXT_NAME);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a1 = t.intern("a");
        let a2 = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(t.len(), 3);
        assert!(!a1.is_text());
    }

    #[test]
    fn element_iterator_skips_text() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let elems: Vec<_> = t.elements().collect();
        assert_eq!(elems.len(), 2);
        assert!(!elems.contains(&TEXT_SYM));
        assert_eq!(t.all().count(), 3);
    }

    #[test]
    fn heap_bytes_is_nonzero_and_grows() {
        let mut t = SymbolTable::new();
        let before = t.heap_bytes();
        t.intern("some-longer-tag-name");
        assert!(t.heap_bytes() > before);
    }
}
