//! XML projections `t|_L` (paper §3.4).
//!
//! A projection of a tree `t` is obtained by discarding some subtrees. Given
//! a non-empty, upward-closed set of locations `L`, the projection `t|_L`
//! keeps exactly the nodes of `L` (and preserves their relative order). The
//! paper uses projections to state soundness of query chain inference: the
//! projection induced by the used/return chains contains every minimal
//! `q`-projection, i.e. evaluating `q` on the projection yields the same
//! (value-equivalent) result as evaluating it on `t`.

use crate::node::NodeId;
use crate::store::Store;
use crate::tree::Tree;
use std::collections::HashSet;

/// Closes `set` upward with respect to the parent relation of `store`,
/// i.e. adds all ancestors of every location in the set.
pub fn upward_closure(store: &Store, set: &HashSet<NodeId>) -> HashSet<NodeId> {
    let mut out = set.clone();
    for &l in set {
        let mut cur = store.parent(l);
        while let Some(p) = cur {
            if !out.insert(p) {
                break;
            }
            cur = store.parent(p);
        }
    }
    out
}

/// Computes the projection `t|_L` of `tree` onto the location set `keep`.
///
/// The root is always kept (the paper requires `L` to be non-empty and
/// upward closed; we close the set upward and add the root defensively).
/// The projected tree is built in a fresh store; the returned map is not
/// exposed since the analysis only needs value-level comparisons.
pub fn project(tree: &Tree, keep: &HashSet<NodeId>) -> Tree {
    let keep = {
        let mut k = upward_closure(&tree.store, keep);
        k.insert(tree.root);
        k
    };
    let mut store = Store::new();
    let root = copy_projected(&tree.store, tree.root, &keep, &mut store);
    Tree::new(store, root)
}

fn copy_projected(src: &Store, node: NodeId, keep: &HashSet<NodeId>, dst: &mut Store) -> NodeId {
    if let Some(text) = src.text_cow(node) {
        return dst.new_text(text.as_ref());
    }
    let kids: Vec<NodeId> = src
        .children_iter(node)
        .filter(|c| keep.contains(c))
        .map(|c| copy_projected(src, c, keep, dst))
        .collect();
    let sym = dst.intern(src.tag(node).expect("non-text nodes are elements"));
    dst.new_element_sym(sym, kids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn sample() -> Tree {
        TreeBuilder::elem("doc")
            .child(TreeBuilder::elem("a").child(TreeBuilder::elem("c").text("1")))
            .child(TreeBuilder::elem("b").child(TreeBuilder::elem("c").text("2")))
            .build()
    }

    #[test]
    fn upward_closure_adds_ancestors() {
        let t = sample();
        let a = t.store.children(t.root)[0];
        let c = t.store.children(a)[0];
        let mut set = HashSet::new();
        set.insert(c);
        let closed = upward_closure(&t.store, &set);
        assert!(closed.contains(&c));
        assert!(closed.contains(&a));
        assert!(closed.contains(&t.root));
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn projection_keeps_only_selected_branches() {
        let t = sample();
        let a = t.store.children(t.root)[0];
        let c_under_a = t.store.children(a)[0];
        let mut keep: HashSet<NodeId> = HashSet::new();
        keep.insert(c_under_a);
        keep.extend(t.store.descendants_or_self(c_under_a));
        let p = project(&t, &keep);
        // The b branch disappears, the a branch survives fully.
        let expected = TreeBuilder::elem("doc")
            .child(TreeBuilder::elem("a").child(TreeBuilder::elem("c").text("1")))
            .build();
        assert!(p.value_equiv(&expected));
    }

    #[test]
    fn empty_keep_set_projects_to_root_only() {
        let t = sample();
        let p = project(&t, &HashSet::new());
        assert_eq!(p.size(), 1);
        assert_eq!(p.root_tag(), Some("doc"));
    }

    #[test]
    fn full_keep_set_is_identity_up_to_value_equivalence() {
        let t = sample();
        let all: HashSet<NodeId> = t.reachable().into_iter().collect();
        let p = project(&t, &all);
        assert!(p.value_equiv(&t));
    }
}
