//! Human-readable reports for independence verdicts.
//!
//! The analyzer's [`Verdict`] is deliberately small; this
//! module turns it — together with the inferred chain sets — into the kind of
//! report a view-maintenance operator or a test failure wants to show:
//! which chains were inferred for the query and the update, which `k` the
//! finite analysis used and why, and (for dependent pairs) the witness pair
//! of conflicting chains.
//!
//! Everything here is presentation only: the reports are produced from the
//! same inference the analyzer runs, and producing a report never changes a
//! verdict.

use crate::analyzer::{AnalyzerConfig, IndependenceAnalyzer, Verdict};
use crate::conflict::ConflictKind;
use crate::parallel::Jobs;
use crate::session::SessionBuilder;
use crate::types::{ChainItem, QueryChains, UpdateChains};
use qui_schema::{Chain, SchemaLike};
use qui_xquery::{Query, Update};
use std::fmt::Write as _;

/// Renders a chain with the schema's type labels (`bib.book.title`).
pub fn show_chain<S: SchemaLike>(schema: &S, chain: &Chain) -> String {
    if chain.is_empty() {
        return "ε".to_string();
    }
    chain
        .symbols()
        .iter()
        .map(|&s| schema.type_label(s).to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Renders a chain item, marking extensible items (those standing for a chain
/// and all its descendant extensions) with a trailing `…`.
pub fn show_item<S: SchemaLike>(schema: &S, item: &ChainItem) -> String {
    let mut s = show_chain(schema, &item.chain);
    if item.extensible {
        s.push('…');
    }
    s
}

/// Options controlling how much detail a report includes.
#[derive(Clone, Copy, Debug)]
pub struct ExplainOptions {
    /// Maximum number of chains listed per class (the rest is elided with a
    /// count). `usize::MAX` lists everything.
    pub max_chains: usize,
    /// Whether to re-run the explicit inference to list chain sets (the
    /// verdict itself may have come from the CDAG engine, which does not
    /// materialize individual chains).
    pub list_chains: bool,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions {
            max_chains: 12,
            list_chains: true,
        }
    }
}

/// Produces a multi-line report for one query-update pair.
///
/// The report is built from the given verdict plus (when
/// [`ExplainOptions::list_chains`] is set and the explicit engine can
/// materialize them within budget) the inferred chain sets.
pub fn explain_verdict<S: SchemaLike>(
    schema: &S,
    q: &Query,
    u: &Update,
    verdict: &Verdict,
    options: &ExplainOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "query : {q}");
    let _ = writeln!(out, "update: {u}");
    let _ = writeln!(
        out,
        "verdict: {}",
        if verdict.is_independent() {
            "INDEPENDENT (the update can never change the query result on a valid document)"
        } else {
            "not proved independent"
        }
    );
    let _ = writeln!(
        out,
        "finite analysis: k = {} (k_q = {} + k_u = {}), engine = {:?}, {} query chains, {} update chains",
        verdict.k,
        verdict.k_query,
        verdict.k_update,
        verdict.engine_used,
        verdict.query_chain_count,
        verdict.update_chain_count
    );
    if let Some(w) = &verdict.witness {
        let _ = writeln!(
            out,
            "witness: query chain {} vs update chain {} ({})",
            show_item(schema, &w.query_chain),
            show_item(schema, &w.update_chain),
            describe_kind(w.kind)
        );
    }
    if options.list_chains {
        let analyzer = IndependenceAnalyzer::new(schema);
        if let Some((qc, uc)) = analyzer.infer_explicit(q, u, verdict.k) {
            out.push_str(&render_query_chains(schema, &qc, options.max_chains));
            out.push_str(&render_update_chains(schema, &uc, options.max_chains));
        } else {
            let _ = writeln!(
                out,
                "(chain sets not listed: explicit materialization exceeded its budget)"
            );
        }
    }
    out
}

/// One-line summary used by matrix reports and the CLI.
pub fn summarize_verdict(verdict: &Verdict) -> String {
    format!(
        "{} (k={}, engine={:?})",
        if verdict.is_independent() {
            "independent"
        } else {
            "dependent"
        },
        verdict.k,
        verdict.engine_used
    )
}

fn describe_kind(kind: ConflictKind) -> &'static str {
    match kind {
        ConflictKind::ReturnBelowUpdate => {
            "the update changes something below a node the query returns"
        }
        ConflictKind::UpdateAboveReturn => {
            "the update changes an ancestor-or-self of a node the query returns"
        }
        ConflictKind::UpdateAboveUsed => {
            "the update changes an ancestor-or-self of a node the query relies on"
        }
    }
}

fn render_query_chains<S: SchemaLike>(schema: &S, qc: &QueryChains, max: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "query chains ({} return, {} used, {} element):",
        qc.returns.len(),
        qc.used.len(),
        qc.elements.len()
    );
    out.push_str(&render_list(
        "  return ",
        qc.returns.iter().map(|c| show_chain(schema, c)),
        max,
    ));
    out.push_str(&render_list(
        "  used   ",
        qc.used.iter().map(|c| show_item(schema, c)),
        max,
    ));
    out.push_str(&render_list(
        "  element",
        qc.elements.iter().map(|c| show_item(schema, c)),
        max,
    ));
    out
}

fn render_update_chains<S: SchemaLike>(schema: &S, uc: &UpdateChains, max: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "update chains ({}):", uc.len());
    out.push_str(&render_list(
        "  write  ",
        uc.chains.iter().map(|c| {
            format!(
                "{}:{}",
                show_chain(schema, &c.target),
                show_item(schema, &c.suffix)
            )
        }),
        max,
    ));
    out
}

fn render_list(label: &str, items: impl Iterator<Item = String>, max: usize) -> String {
    let items: Vec<String> = items.collect();
    if items.is_empty() {
        return format!("{label}: (none)\n");
    }
    let shown: Vec<&String> = items.iter().take(max).collect();
    let elided = items.len().saturating_sub(max);
    let mut line = format!(
        "{label}: {}",
        shown
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if elided > 0 {
        let _ = write!(line, " … and {elided} more");
    }
    line.push('\n');
    line
}

/// A full query-set × update report (the shape of the paper's Fig. 3.a/3.b
/// rows): one named update checked against a set of named views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixReport {
    /// The update's display name.
    pub update_name: String,
    /// Per view: name and whether the pair is independent.
    pub rows: Vec<(String, bool)>,
    /// The `k` bounds used across the views (min and max).
    pub k_range: (usize, usize),
}

impl MatrixReport {
    /// Number of views declared independent of the update.
    pub fn independent_count(&self) -> usize {
        self.rows.iter().filter(|(_, i)| *i).count()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "update {} — {}/{} views independent (k ∈ [{}, {}])",
            self.update_name,
            self.independent_count(),
            self.rows.len(),
            self.k_range.0,
            self.k_range.1
        );
        for (name, independent) in &self.rows {
            let _ = writeln!(
                out,
                "  {name:<8} {}",
                if *independent {
                    "independent"
                } else {
                    "dependent"
                }
            );
        }
        out
    }
}

/// Checks one update against a set of named views and builds a
/// [`MatrixReport`].
///
/// Runs on a one-shot [`crate::session::AnalysisSession`] with the default
/// worker policy (`QUI_JOBS` or the machine's parallelism); verdicts are
/// identical to per-pair [`IndependenceAnalyzer::check`] calls. Callers
/// reporting on more than one workload should hold a session and read
/// [`reports`](crate::session::AnalysisSession::reports) from it instead.
pub fn matrix_report<S: SchemaLike + Sync>(
    schema: &S,
    views: &[(String, Query)],
    update_name: &str,
    update: &Update,
) -> MatrixReport {
    matrix_report_impl(
        schema,
        views,
        update_name,
        update,
        &AnalyzerConfig::default(),
        Jobs::Auto,
    )
}

/// Shared implementation of the one-update report wrappers: a one-shot
/// session over the single-row workload.
fn matrix_report_impl<S: SchemaLike + Sync>(
    schema: &S,
    views: &[(String, Query)],
    update_name: &str,
    update: &Update,
    config: &AnalyzerConfig,
    jobs: Jobs,
) -> MatrixReport {
    let mut reports = matrix_reports_impl(
        schema,
        views,
        std::slice::from_ref(&(update_name.to_string(), update.clone())),
        config,
        jobs,
    );
    reports.pop().expect("one update produces one report")
}

/// The full views × updates matrix as one report per update, computed in a
/// single batch so chain inference is shared across every cell (the shape of
/// the paper's Fig. 3.a: all 31 updates against all 36 views).
pub fn matrix_reports<S: SchemaLike + Sync>(
    schema: &S,
    views: &[(String, Query)],
    updates: &[(String, Update)],
    jobs: Jobs,
) -> Vec<MatrixReport> {
    matrix_reports_impl(schema, views, updates, &AnalyzerConfig::default(), jobs)
}

/// Shared implementation of the stateless matrix wrappers: a one-shot
/// [`crate::session::AnalysisSession`] that registers the workload in one
/// batch and reads [`reports`](crate::session::AnalysisSession::reports).
fn matrix_reports_impl<S: SchemaLike + Sync>(
    schema: &S,
    views: &[(String, Query)],
    updates: &[(String, Update)],
    config: &AnalyzerConfig,
    jobs: Jobs,
) -> Vec<MatrixReport> {
    let mut session = SessionBuilder::new(schema)
        .config(config.clone())
        .jobs(jobs)
        .build();
    session.add_workload(views.iter().cloned(), updates.iter().cloned());
    session.reports()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn fig1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    #[test]
    fn show_chain_uses_labels() {
        let dtd = fig1();
        let chain = dtd.chain_of_names(&["doc", "a", "c"]).unwrap();
        assert_eq!(show_chain(&dtd, &chain), "doc.a.c");
        assert_eq!(show_chain(&dtd, &Chain::empty()), "ε");
    }

    #[test]
    fn independent_pair_report_mentions_chains() {
        let dtd = fig1();
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let analyzer = IndependenceAnalyzer::new(&dtd);
        let verdict = analyzer.check(&q, &u);
        let report = explain_verdict(&dtd, &q, &u, &verdict, &ExplainOptions::default());
        assert!(report.contains("INDEPENDENT"), "{report}");
        assert!(report.contains("doc.a.c"), "{report}");
        assert!(report.contains("doc.b:c"), "{report}");
    }

    #[test]
    fn dependent_pair_report_shows_witness() {
        let dtd = fig1();
        let q = parse_query("//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let analyzer = IndependenceAnalyzer::new(&dtd);
        let verdict = analyzer.check(&q, &u);
        assert!(!verdict.is_independent());
        let report = explain_verdict(&dtd, &q, &u, &verdict, &ExplainOptions::default());
        assert!(report.contains("not proved independent"), "{report}");
        assert!(report.contains("witness"), "{report}");
    }

    #[test]
    fn elision_limits_listed_chains() {
        let dtd = fig1();
        let q = parse_query("//node()").unwrap();
        let u = parse_update("delete //c").unwrap();
        let analyzer = IndependenceAnalyzer::new(&dtd);
        let verdict = analyzer.check(&q, &u);
        let options = ExplainOptions {
            max_chains: 1,
            list_chains: true,
        };
        let report = explain_verdict(&dtd, &q, &u, &verdict, &options);
        assert!(report.contains("more"), "{report}");
    }

    #[test]
    fn summary_line_is_compact() {
        let dtd = fig1();
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let analyzer = IndependenceAnalyzer::new(&dtd);
        let verdict = analyzer.check(&q, &u);
        let s = summarize_verdict(&verdict);
        assert!(s.starts_with("independent"), "{s}");
        assert!(!s.contains('\n'));
    }

    #[test]
    fn matrix_report_counts_and_renders() {
        let dtd = fig1();
        let views = vec![
            ("v1".to_string(), parse_query("//a//c").unwrap()),
            ("v2".to_string(), parse_query("//c").unwrap()),
            ("v3".to_string(), parse_query("//b").unwrap()),
        ];
        let u = parse_update("delete //b//c").unwrap();
        let report = matrix_report(&dtd, &views, "u1", &u);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.independent_count(), 1);
        let text = report.render();
        assert!(text.contains("1/3 views independent"), "{text}");
        assert!(text.contains("v1"), "{text}");
    }

    #[test]
    fn matrix_report_is_identical_across_job_counts() {
        let dtd = fig1();
        let views = vec![
            ("v1".to_string(), parse_query("//a//c").unwrap()),
            ("v2".to_string(), parse_query("//c").unwrap()),
            ("v3".to_string(), parse_query("//b").unwrap()),
        ];
        let u = parse_update("delete //b//c").unwrap();
        let updates = vec![("u1".to_string(), u)];
        let sequential = matrix_reports(&dtd, &views, &updates, Jobs::Fixed(1));
        for jobs in [2, 8] {
            let parallel = matrix_reports(&dtd, &views, &updates, Jobs::Fixed(jobs));
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(s.rows, p.rows, "jobs = {jobs}");
                assert_eq!(s.k_range, p.k_range, "jobs = {jobs}");
                assert_eq!(s.render(), p.render(), "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn matrix_reports_cover_every_update() {
        let dtd = fig1();
        let views = vec![
            ("v1".to_string(), parse_query("//a//c").unwrap()),
            ("v2".to_string(), parse_query("//c").unwrap()),
        ];
        let updates = vec![
            ("u1".to_string(), parse_update("delete //b//c").unwrap()),
            ("u2".to_string(), parse_update("delete //c").unwrap()),
        ];
        let reports = matrix_reports(&dtd, &views, &updates, Jobs::Fixed(2));
        assert_eq!(reports.len(), 2);
        for (report, (name, u)) in reports.iter().zip(&updates) {
            assert_eq!(&report.update_name, name);
            let solo = matrix_report(&dtd, &views, name, u);
            assert_eq!(report.rows, solo.rows);
        }
    }

    #[test]
    fn empty_matrix_report() {
        let dtd = fig1();
        let u = parse_update("delete //c").unwrap();
        let report = matrix_report(&dtd, &[], "u", &u);
        assert_eq!(report.independent_count(), 0);
        assert_eq!(report.k_range.0, 0);
    }
}
