//! The CDAG engine: chain sets represented as chain-DAGs (paper §6.1).
//!
//! A CDAG is rooted at the schema start type and has **at most one node per
//! (type, depth) pair**, so its width is bounded by the schema size and the
//! depth by `k·|d|`. A set of rooted chains is represented by a sub-DAG (its
//! own edge set) plus a set of *end* nodes: the denoted chains are all paths
//! from the root to an end node, where an end node may additionally be
//! flagged *extensible* (the set then also contains every descendant
//! extension of those paths).
//!
//! Compared with the explicit engine this trades a small amount of precision
//! for polynomial behaviour:
//!
//! * merging the sub-DAGs of different sub-expressions can introduce paths
//!   that neither sub-expression inferred (the paper avoids this with
//!   per-expression edge labels; we accept the over-approximation, which is
//!   sound because every such path is still a schema chain),
//! * the per-tag multiplicity bound of k-chains is relaxed to a depth bound
//!   (`k·|d|`), which again only adds chains,
//! * `for` iteration binds the loop variable to the whole return set at once
//!   instead of chain-by-chain, which only enlarges the inferred sets.
//!
//! Every approximation enlarges the inferred chain sets, so independence
//! verdicts remain sound; the cross-check tests in `tests/` (in particular
//! `tests/engine_differential.rs`) verify that the two engines agree on the
//! workloads where the explicit engine is feasible.
//!
//! ## Performance
//!
//! The engine is the default first pass of `EngineKind::Auto`, so its
//! inference and conflict primitives are hot paths (see the `cdag_micro`
//! bench and the `cdag` perf harness). Three things keep them cheap:
//!
//! * all node/edge sets hash with [`crate::fxhash`] instead of SipHash
//!   (node indices are dense small integers, never attacker-controlled),
//! * graph passes (provenance trimming, descendant closure, prefix
//!   conflicts) run over a per-engine scratch workspace of
//!   generation-stamped mark vectors and reusable adjacency lists instead of
//!   allocating fresh hash maps per call,
//! * the descendant closure is shared across all context ends (one
//!   `O(nodes + edges)` sweep instead of one sweep per end).
//!
//! ## Incremental k-extension
//!
//! The engine records whether an inference ever hit the `k·|d|` depth cap
//! (*saturation*). When it did not, the exact same DAG — node indices encode
//! `(type, depth)` with a k-independent width — is what a fresh engine at any
//! larger `k` would compute, so [`QueryKLadder`]/[`UpdateKLadder`] can serve
//! every later bound from the cached result. The batch analyzer walks each
//! expression's bounds in ascending order through a ladder, which turns the
//! per-`(expr, k)` matrix prepass into per-`expr` work for every
//! non-saturating expression.

use super::label_syms;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::types::{ChainItem, QueryChains, UpdateChains};
use qui_schema::{Chain, SchemaLike, Sym, TEXT_SYM};
use qui_xquery::{Axis, NodeTest, Query, Update, UpdatePos};
use std::cell::{Cell, RefCell};

/// A node of the CDAG: a (type, depth) pair, encoded as `depth * width + sym`.
pub type NodeIdx = u32;

/// A set of rooted chains represented as a sub-DAG of the CDAG.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainDag {
    /// Present edges, as (from-node, to-node) pairs. The to-node is always at
    /// the from-node's depth plus one.
    pub edges: FxHashSet<(NodeIdx, NodeIdx)>,
    /// End nodes with their extensibility flag (`true` = the set also
    /// contains every descendant extension of chains ending here).
    pub ends: FxHashMap<NodeIdx, bool>,
}

impl ChainDag {
    /// The empty set.
    pub fn empty() -> Self {
        ChainDag::default()
    }

    /// Returns `true` if the set denotes no chain.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Union of two sets (edges and ends are merged; an end extensible in
    /// either operand stays extensible).
    pub fn union(mut self, other: &ChainDag) -> ChainDag {
        self.edges.extend(other.edges.iter().copied());
        for (&n, &ext) in &other.ends {
            let e = self.ends.entry(n).or_insert(false);
            *e = *e || ext;
        }
        self
    }

    /// Number of edges (a size measure used by the complexity benches).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Marks every end node extensible.
    pub fn extend_all_ends(mut self) -> ChainDag {
        for v in self.ends.values_mut() {
            *v = true;
        }
        self
    }

    /// Restricts the ends to the extensible ones (edges are kept).
    pub fn extensible_ends_only(&self) -> ChainDag {
        ChainDag {
            edges: self.edges.clone(),
            ends: self
                .ends
                .iter()
                .filter(|&(_, &ext)| ext)
                .map(|(&n, &e)| (n, e))
                .collect(),
        }
    }
}

/// Reusable graph-pass workspace (see the module docs): generation-stamped
/// mark vectors and adjacency lists indexed by dense [`NodeIdx`]. Everything
/// auto-grows on first touch and is logically cleared in `O(touched)` by
/// bumping the generation / draining the touched list, so a pass over a
/// small DAG never pays for the full `width · depth` grid.
#[derive(Default)]
struct Scratch {
    /// Primary mark color (`mark[n] == gen` ⇔ marked this pass).
    mark: Vec<u32>,
    /// Secondary mark color for passes that need two node sets at once.
    mark2: Vec<u32>,
    /// Monotone generation counter shared by both mark vectors.
    gen: u32,
    /// Adjacency lists; non-empty slots are tracked in `touched`.
    adj: Vec<Vec<NodeIdx>>,
    /// Slots of `adj` that must be cleared before the next pass.
    touched: Vec<NodeIdx>,
    /// Reusable DFS/BFS stack.
    stack: Vec<NodeIdx>,
}

#[inline]
fn mark_set(marks: &mut Vec<u32>, n: NodeIdx, gen: u32) {
    let i = n as usize;
    if i >= marks.len() {
        marks.resize(i + 1, 0);
    }
    marks[i] = gen;
}

#[inline]
fn mark_has(marks: &[u32], n: NodeIdx, gen: u32) -> bool {
    marks.get(n as usize).is_some_and(|&g| g == gen)
}

impl Scratch {
    fn next_gen(&mut self) -> u32 {
        self.gen += 1;
        self.gen
    }

    #[inline]
    fn adj_push(&mut self, from: NodeIdx, to: NodeIdx) {
        let i = from as usize;
        if i >= self.adj.len() {
            self.adj.resize_with(i + 1, Vec::new);
        }
        if self.adj[i].is_empty() {
            self.touched.push(from);
        }
        self.adj[i].push(to);
    }

    fn adj_clear(&mut self) {
        for &n in &self.touched {
            self.adj[n as usize].clear();
        }
        self.touched.clear();
    }
}

/// The CDAG engine: holds the schema, the dimensions of the node grid, and
/// implements inference and conflict checking over [`ChainDag`] values.
pub struct CdagEngine<'a, S: SchemaLike> {
    schema: &'a S,
    /// Number of distinct symbols per level (schema types + text + one
    /// sentinel slot for unknown labels).
    width: u32,
    /// Number of levels (maximum chain length).
    max_depth: u32,
    /// The multiplicity bound the grid was sized for.
    k: usize,
    /// Element-chain inference toggle (see the explicit engine).
    element_chains: bool,
    /// Set when an inference hits the depth cap (so its result may be
    /// missing chains a deeper grid would add); cleared by
    /// [`Self::take_saturated`].
    saturated: Cell<bool>,
    /// Reusable graph-pass workspace.
    scratch: RefCell<Scratch>,
}

/// Variable environment for the CDAG engine.
pub type DagGamma = FxHashMap<String, ChainDag>;

/// Query chains in CDAG form: returns and used chains as DAGs, element
/// chains as symbolic items (they are not rooted at the schema root).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagQueryChains {
    /// Return chains.
    pub returns: ChainDag,
    /// Used chains (ends may be extensible).
    pub used: ChainDag,
    /// Element chains.
    pub elements: Vec<ChainItem>,
}

impl DagQueryChains {
    fn union(mut self, other: DagQueryChains) -> DagQueryChains {
        self.returns = self.returns.union(&other.returns);
        self.used = self.used.union(&other.used);
        for e in other.elements {
            if !self.elements.contains(&e) {
                self.elements.push(e);
            }
        }
        self
    }
}

impl<'a, S: SchemaLike> CdagEngine<'a, S> {
    /// Creates an engine for multiplicity bound `k` (which fixes the depth of
    /// the node grid at `k·|d| + 2`).
    pub fn new(schema: &'a S, k: usize) -> Self {
        let width = (schema.num_types() + 1) as u32;
        let depth = (k.max(1) * schema.schema_size().max(1) + 2) as u32;
        CdagEngine {
            schema,
            width,
            max_depth: depth,
            k,
            element_chains: true,
            saturated: Cell::new(false),
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Enables or disables element-chain inference (ablation switch).
    pub fn with_element_chains(mut self, on: bool) -> Self {
        self.element_chains = on;
        self
    }

    /// The schema this engine analyses.
    pub fn schema(&self) -> &'a S {
        self.schema
    }

    /// The multiplicity bound the engine was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of levels of the node grid (`k·|d| + 2`); no chain the
    /// engine infers is longer than this.
    pub fn grid_depth(&self) -> u32 {
        self.max_depth
    }

    /// Returns whether any inference since the last call hit the `k·|d|`
    /// depth cap, and clears the flag. When this returns `false`, every DAG
    /// the engine produced since is exactly what a fresh engine at any
    /// larger `k` would produce — the property the k-ladders build on.
    pub fn take_saturated(&self) -> bool {
        self.saturated.replace(false)
    }

    // ------------------------------------------------------ node encoding

    fn sym_slot(&self, s: Sym) -> u32 {
        let slot = s.index() as u32;
        if slot >= self.width - 1 {
            self.width - 1 // unknown-label sentinel slot
        } else {
            slot
        }
    }

    fn node(&self, s: Sym, depth: u32) -> NodeIdx {
        depth * self.width + self.sym_slot(s)
    }

    /// The depth (chain length minus one) encoded in a node index.
    pub fn depth_of(&self, n: NodeIdx) -> u32 {
        n / self.width
    }

    /// The schema type encoded in a node index (`None` for the unknown-label
    /// sentinel slot).
    pub fn sym_of(&self, n: NodeIdx) -> Option<Sym> {
        let slot = n % self.width;
        if slot == self.width - 1 {
            None // unknown-label sentinel
        } else {
            Some(Sym(slot as u16))
        }
    }

    /// The singleton set containing just the root chain.
    pub fn root_dag(&self) -> ChainDag {
        let mut ends = FxHashMap::default();
        ends.insert(self.node(self.schema.start_type(), 0), false);
        ChainDag {
            edges: FxHashSet::default(),
            ends,
        }
    }

    /// Builds the DAG denoting exactly one explicit chain (used to seed
    /// environments and in tests).
    pub fn dag_of_chain(&self, chain: &Chain) -> ChainDag {
        let mut dag = ChainDag::empty();
        let syms = chain.symbols();
        if syms.is_empty() {
            return dag;
        }
        for (i, w) in syms.windows(2).enumerate() {
            dag.edges
                .insert((self.node(w[0], i as u32), self.node(w[1], i as u32 + 1)));
        }
        dag.ends.insert(
            self.node(syms[syms.len() - 1], (syms.len() - 1) as u32),
            false,
        );
        dag
    }

    /// Enumerates the chains denoted by a DAG (without extensions), up to
    /// `cap` chains — used by tests, the differential harness and debugging
    /// output only.
    pub fn enumerate(&self, dag: &ChainDag, cap: usize) -> Option<Vec<Chain>> {
        let root = self.node(self.schema.start_type(), 0);
        let mut out = Vec::new();
        let mut stack = vec![(root, Chain::single(self.schema.start_type()))];
        // Adjacency for forward traversal.
        let mut adj: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        for &(f, t) in &dag.edges {
            adj.entry(f).or_default().push(t);
        }
        while let Some((n, chain)) = stack.pop() {
            if dag.ends.contains_key(&n) {
                out.push(chain.clone());
                if out.len() > cap {
                    return None;
                }
            }
            if let Some(next) = adj.get(&n) {
                for &m in next {
                    if let Some(s) = self.sym_of(m) {
                        stack.push((m, chain.push(s)));
                    }
                }
            }
        }
        Some(out)
    }

    // ------------------------------------------------------ step inference

    fn test_matches(&self, s: Sym, test: &NodeTest) -> bool {
        match test {
            NodeTest::AnyNode => true,
            NodeTest::Text => s == TEXT_SYM,
            NodeTest::AnyElement => s != TEXT_SYM,
            NodeTest::Tag(t) => s != TEXT_SYM && self.schema.type_label(s) == t,
        }
    }

    /// The root node of the grid.
    pub fn root_node(&self) -> NodeIdx {
        self.node(self.schema.start_type(), 0)
    }

    /// Marks the engine saturated when skipping extensions below `sym` at the
    /// depth cap actually dropped anything.
    fn note_depth_cap(&self, sym: Sym) {
        if !self.schema.child_types(sym).is_empty() {
            self.saturated.set(true);
        }
    }

    /// Prunes a DAG to the edges lying on some path from the root to one of
    /// the given end nodes (provenance trimming). This is the unlabeled
    /// counterpart of the paper's edge labels: chains whose endpoint was
    /// filtered away by a node test or a later step must not leave their
    /// edges behind, otherwise they would resurface as spurious paths when
    /// DAG nodes merge.
    fn trim_to(
        &self,
        edges: &FxHashSet<(NodeIdx, NodeIdx)>,
        ends: &FxHashSet<NodeIdx>,
    ) -> FxHashSet<(NodeIdx, NodeIdx)> {
        if ends.is_empty() || edges.is_empty() {
            return FxHashSet::default();
        }
        let mut s = self.scratch.borrow_mut();
        let s = &mut *s;
        // Backward reachability from the ends ("above").
        let above = s.next_gen();
        for &(f, t) in edges {
            s.adj_push(t, f);
        }
        s.stack.clear();
        for &e in ends {
            if !mark_has(&s.mark, e, above) {
                mark_set(&mut s.mark, e, above);
                s.stack.push(e);
            }
        }
        while let Some(n) = s.stack.pop() {
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let p = s.adj[i][j];
                if !mark_has(&s.mark, p, above) {
                    mark_set(&mut s.mark, p, above);
                    s.stack.push(p);
                }
            }
        }
        s.adj_clear();
        // Forward reachability from the root, restricted to `above`.
        let reach = s.next_gen();
        for &(f, t) in edges {
            if mark_has(&s.mark, f, above) && mark_has(&s.mark, t, above) {
                s.adj_push(f, t);
            }
        }
        let root = self.root_node();
        mark_set(&mut s.mark2, root, reach);
        s.stack.clear();
        s.stack.push(root);
        while let Some(n) = s.stack.pop() {
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let m = s.adj[i][j];
                if !mark_has(&s.mark2, m, reach) {
                    mark_set(&mut s.mark2, m, reach);
                    s.stack.push(m);
                }
            }
        }
        s.adj_clear();
        edges
            .iter()
            .copied()
            .filter(|&(f, t)| {
                mark_has(&s.mark2, f, reach)
                    && mark_has(&s.mark, t, above)
                    && mark_has(&s.mark2, t, reach)
            })
            .collect()
    }

    /// Prunes a whole DAG to the paths leading to its own ends.
    pub fn trim(&self, dag: &ChainDag) -> ChainDag {
        let ends: FxHashSet<NodeIdx> = dag.ends.keys().copied().collect();
        ChainDag {
            edges: self.trim_to(&dag.edges, &ends),
            ends: dag.ends.clone(),
        }
    }

    /// Single-step inference: the CDAG analogue of `TC(AC(c, axis), φ)` for
    /// every chain denoted by `ctx`. Returns `(result, used)` where `used` is
    /// the restriction of `ctx` to the ends that produced at least one result
    /// (needed by rule STEPUH).
    ///
    /// Only the context edges lying on paths to *contributing* ends are kept
    /// (provenance trimming, see [`Self::trim`]); without this, chains that a
    /// node test discarded would pollute later steps through shared CDAG
    /// nodes.
    pub fn step(&self, ctx: &ChainDag, axis: Axis, test: &NodeTest) -> (ChainDag, ChainDag) {
        if matches!(axis, Axis::Descendant | Axis::DescendantOrSelf) {
            return self.step_descendant(ctx, axis == Axis::DescendantOrSelf, test);
        }
        let mut new_edges: FxHashSet<(NodeIdx, NodeIdx)> = FxHashSet::default();
        let mut result = ChainDag::empty();
        let mut used = ChainDag::empty();
        // Reverse adjacency of the context DAG, needed by upward axes.
        let mut preds: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        if matches!(
            axis,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::FollowingSibling
                | Axis::PrecedingSibling
        ) {
            for &(f, t) in &ctx.edges {
                preds.entry(t).or_default().push(f);
            }
        }
        for &end in ctx.ends.keys() {
            let Some(end_sym) = self.sym_of(end) else {
                continue;
            };
            let depth = self.depth_of(end);
            let mut produced = false;
            match axis {
                Axis::SelfAxis => {
                    if self.test_matches(end_sym, test) {
                        result.ends.insert(end, false);
                        produced = true;
                    }
                }
                Axis::Child => {
                    if depth + 1 < self.max_depth {
                        for &c in self.schema.child_types(end_sym) {
                            let cn = self.node(c, depth + 1);
                            if self.test_matches(c, test) {
                                new_edges.insert((end, cn));
                                result.ends.insert(cn, false);
                                produced = true;
                            }
                        }
                    } else {
                        self.note_depth_cap(end_sym);
                    }
                }
                Axis::Descendant | Axis::DescendantOrSelf => {
                    unreachable!("handled by step_descendant")
                }
                Axis::Parent => {
                    for &p in preds.get(&end).map(|v| v.as_slice()).unwrap_or(&[]) {
                        if let Some(ps) = self.sym_of(p) {
                            if self.test_matches(ps, test) {
                                result.ends.insert(p, false);
                                produced = true;
                            }
                        }
                    }
                }
                Axis::Ancestor | Axis::AncestorOrSelf => {
                    if axis == Axis::AncestorOrSelf && self.test_matches(end_sym, test) {
                        result.ends.insert(end, false);
                        produced = true;
                    }
                    let mut frontier = vec![end];
                    let mut visited: FxHashSet<NodeIdx> = FxHashSet::default();
                    while let Some(n) = frontier.pop() {
                        for &p in preds.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                            if let Some(ps) = self.sym_of(p) {
                                if self.test_matches(ps, test) {
                                    result.ends.insert(p, false);
                                    produced = true;
                                }
                            }
                            if visited.insert(p) {
                                frontier.push(p);
                            }
                        }
                    }
                }
                Axis::FollowingSibling | Axis::PrecedingSibling => {
                    for &p in preds.get(&end).map(|v| v.as_slice()).unwrap_or(&[]) {
                        let Some(parent_sym) = self.sym_of(p) else {
                            continue;
                        };
                        for &(x, y) in self.schema.before_pairs_of(parent_sym) {
                            let sibling = if axis == Axis::FollowingSibling {
                                (x == end_sym).then_some(y)
                            } else {
                                (y == end_sym).then_some(x)
                            };
                            if let Some(s) = sibling {
                                if self.test_matches(s, test) {
                                    let sn = self.node(s, depth);
                                    new_edges.insert((p, sn));
                                    result.ends.insert(sn, false);
                                    produced = true;
                                }
                            }
                        }
                    }
                }
            }
            if produced {
                used.ends.insert(end, false);
            }
        }
        self.finish_step(ctx, new_edges, result, used)
    }

    /// The descendant / descendant-or-self step, with the closure over schema
    /// edges shared across **all** context ends: one bounded sweep discovers
    /// every reachable (type, depth) node, then one backward pass over the
    /// discovered edges computes which ends actually produced a match (the
    /// STEPUH `used` restriction). Results are identical to the per-end
    /// closure, cell for cell.
    fn step_descendant(
        &self,
        ctx: &ChainDag,
        or_self: bool,
        test: &NodeTest,
    ) -> (ChainDag, ChainDag) {
        let mut new_edges: FxHashSet<(NodeIdx, NodeIdx)> = FxHashSet::default();
        let mut result = ChainDag::empty();
        let mut used = ChainDag::empty();
        let mut guard = self.scratch.borrow_mut();
        let s = &mut *guard;
        // Phase 1: shared forward closure from every end, recording forward
        // adjacency for phase 2 and collecting matched descendants.
        let visited = s.next_gen();
        let mut desc_matched: Vec<NodeIdx> = Vec::new();
        s.stack.clear();
        for &end in ctx.ends.keys() {
            if self.sym_of(end).is_some() && !mark_has(&s.mark, end, visited) {
                mark_set(&mut s.mark, end, visited);
                s.stack.push(end);
            }
        }
        while let Some(n) = s.stack.pop() {
            let Some(sym) = self.sym_of(n) else { continue };
            let d = self.depth_of(n);
            if d + 1 >= self.max_depth {
                self.note_depth_cap(sym);
                continue;
            }
            for &c in self.schema.child_types(sym) {
                let cn = self.node(c, d + 1);
                if new_edges.insert((n, cn)) {
                    s.adj_push(cn, n); // backward adjacency for phase 2
                }
                if self.test_matches(c, test) && result.ends.insert(cn, false).is_none() {
                    desc_matched.push(cn);
                }
                if !mark_has(&s.mark, cn, visited) {
                    mark_set(&mut s.mark, cn, visited);
                    s.stack.push(cn);
                }
            }
        }
        // Phase 2: `produces` = nodes with a path of length >= 1 to a matched
        // node — exactly the ends whose per-end closure would have produced a
        // result. Backward closure from the matched nodes over the recorded
        // adjacency, shifted one level up.
        let produces = s.next_gen();
        s.stack.clear();
        let reach_matched = s.next_gen();
        for &m in &desc_matched {
            mark_set(&mut s.mark2, m, reach_matched);
            s.stack.push(m);
        }
        while let Some(n) = s.stack.pop() {
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let p = s.adj[i][j];
                mark_set(&mut s.mark, p, produces);
                if !mark_has(&s.mark2, p, reach_matched) {
                    mark_set(&mut s.mark2, p, reach_matched);
                    s.stack.push(p);
                }
            }
        }
        s.adj_clear();
        for &end in ctx.ends.keys() {
            let Some(end_sym) = self.sym_of(end) else {
                continue;
            };
            let mut produced = mark_has(&s.mark, end, produces);
            if or_self && self.test_matches(end_sym, test) {
                result.ends.insert(end, false);
                produced = true;
            }
            if produced {
                used.ends.insert(end, false);
            }
        }
        // Release the scratch borrow: `finish_step`'s trimming re-borrows it.
        drop(guard);
        self.finish_step(ctx, new_edges, result, used)
    }

    /// Shared tail of every step: provenance trimming. Keeps only the context
    /// edges on paths to the *contributing* ends, adds the edges created by
    /// the step, and trims the result to the paths reaching its own ends.
    fn finish_step(
        &self,
        ctx: &ChainDag,
        new_edges: FxHashSet<(NodeIdx, NodeIdx)>,
        mut result: ChainDag,
        mut used: ChainDag,
    ) -> (ChainDag, ChainDag) {
        let contributing: FxHashSet<NodeIdx> = used.ends.keys().copied().collect();
        let base_edges = self.trim_to(&ctx.edges, &contributing);
        used.edges = base_edges.clone();
        let mut all_edges = base_edges;
        all_edges.extend(new_edges);
        let result_ends: FxHashSet<NodeIdx> = result.ends.keys().copied().collect();
        result.edges = self.trim_to(&all_edges, &result_ends);
        (result, used)
    }

    // ------------------------------------------------------ Table 1 (DAG)

    /// The initial environment binding every free variable to the root chain.
    pub fn root_gamma(&self, vars: impl IntoIterator<Item = String>) -> DagGamma {
        let mut g = DagGamma::default();
        for v in vars {
            g.insert(v, self.root_dag());
        }
        g
    }

    /// Infers the chain triple for a query in CDAG form.
    pub fn infer_query(&self, gamma: &DagGamma, q: &Query) -> DagQueryChains {
        match q {
            Query::Empty => DagQueryChains::default(),
            Query::StringLit(_) => DagQueryChains {
                elements: vec![ChainItem::plain(Chain::single(TEXT_SYM))],
                ..Default::default()
            },
            Query::Concat(a, b) => self.infer_query(gamma, a).union(self.infer_query(gamma, b)),
            Query::If { cond, then, els } => {
                let q0 = self.infer_query(gamma, cond);
                let q1 = self.infer_query(gamma, then);
                let q2 = self.infer_query(gamma, els);
                let mut out = q1.union(q2);
                out.used = out.used.union(&q0.used).union(&q0.returns);
                out
            }
            Query::Let { var, source, ret } => {
                let q1 = self.infer_query(gamma, source);
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns.clone());
                let q2 = self.infer_query(&inner, ret);
                DagQueryChains {
                    returns: q2.returns,
                    used: q1.used.union(&q1.returns).union(&q2.used),
                    elements: q2.elements,
                }
            }
            Query::For { var, source, ret } => {
                let q1 = self.infer_query(gamma, source);
                // Exact fast path: when the body is a single step on the
                // loop variable (every desugared path query), the step's
                // produced-ends restriction *is* the FOR chain filter — the
                // iteration chains that become used are exactly the context
                // ends the step produced results from, for upward and
                // downward axes alike. This avoids the node-sharing
                // over-approximation of the general case below, keeping the
                // CDAG verdicts aligned with the explicit engine on plain
                // navigation.
                if let Query::Step {
                    var: step_var,
                    axis,
                    test,
                } = &**ret
                {
                    if step_var == var {
                        let (returns, step_used) = self.step(&q1.returns, *axis, test);
                        return DagQueryChains {
                            returns,
                            used: q1.used.clone().union(&step_used),
                            elements: Vec::new(),
                        };
                    }
                }
                // General case: the loop variable is bound to the whole
                // return set at once (a sound approximation of the per-chain
                // iteration of the explicit rule; see the module
                // documentation).
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns.clone());
                let q2 = self.infer_query(&inner, ret);
                let mut used = q1.used.clone().union(&q2.used);
                if !q2.returns.is_empty() || !q2.elements.is_empty() {
                    // Chain filtering (rule FOR): only the iteration chains
                    // the body actually navigated from become used chains. We
                    // approximate "navigated from" by the source ends that
                    // appear in the body's inferred DAGs; when the body never
                    // exposes them (e.g. it only walks upward), fall back to
                    // the whole source return set, which is sound.
                    used = used.union(&self.contributing_sources(&q1.returns, &q2));
                }
                DagQueryChains {
                    returns: q2.returns,
                    used,
                    elements: q2.elements,
                }
            }
            Query::Step { var, axis, test } => {
                let Some(ctx) = gamma.get(var) else {
                    return DagQueryChains::default();
                };
                let (returns, used) = self.step(ctx, *axis, test);
                DagQueryChains {
                    returns,
                    used: if axis.is_stepf_axis() {
                        ChainDag::empty()
                    } else {
                        used
                    },
                    elements: Vec::new(),
                }
            }
            Query::Element { tag, content } => {
                let q = self.infer_query(gamma, content);
                let mut used = q.used.clone();
                used = used.union(&q.returns.clone().extend_all_ends());
                let mut elements = Vec::new();
                if !self.element_chains {
                    elements.push(ChainItem::extended(Chain::empty()));
                    return DagQueryChains {
                        returns: ChainDag::empty(),
                        used,
                        elements,
                    };
                }
                for &t in &label_syms(self.schema, tag) {
                    let prefix = Chain::single(t);
                    for s in self.end_symbols(&q.returns) {
                        elements.push(ChainItem::extended(prefix.push(s)));
                    }
                    for e in &q.elements {
                        elements.push(ChainItem {
                            chain: prefix.concat(&e.chain),
                            extensible: e.extensible,
                        });
                    }
                    if q.returns.is_empty() && q.elements.is_empty() {
                        elements.push(ChainItem::plain(prefix));
                    }
                }
                DagQueryChains {
                    returns: ChainDag::empty(),
                    used,
                    elements,
                }
            }
        }
    }

    /// Restricts a source return DAG to the ends that the body's inferred
    /// chains pass through (the FOR-rule chain filter, approximated on DAGs).
    fn contributing_sources(&self, source: &ChainDag, body: &DagQueryChains) -> ChainDag {
        let mut body_nodes: FxHashSet<NodeIdx> = FxHashSet::default();
        for dag in [&body.returns, &body.used] {
            for &(f, t) in &dag.edges {
                body_nodes.insert(f);
                body_nodes.insert(t);
            }
            body_nodes.extend(dag.ends.keys().copied());
        }
        let live: FxHashMap<NodeIdx, bool> = source
            .ends
            .iter()
            .filter(|(n, _)| body_nodes.contains(n))
            .map(|(&n, &e)| (n, e))
            .collect();
        if live.is_empty() {
            // The body produced something but through paths that do not
            // expose the source ends (upward-only navigation): keep them all.
            return source.clone();
        }
        self.trim(&ChainDag {
            edges: source.edges.clone(),
            ends: live,
        })
    }

    /// The distinct symbols at the end nodes of a DAG.
    pub fn end_symbols(&self, dag: &ChainDag) -> Vec<Sym> {
        let mut out: Vec<Sym> = dag.ends.keys().filter_map(|&n| self.sym_of(n)).collect();
        out.sort();
        out.dedup();
        out
    }

    // ------------------------------------------------------ Table 2 (DAG)

    /// Update chains in CDAG form: the full chains `c.c'` of every inferred
    /// `c:c'`, with extensible ends where the suffix stands for an entire
    /// inserted subtree.
    pub fn infer_update(&self, gamma: &DagGamma, u: &Update) -> ChainDag {
        match u {
            Update::Empty => ChainDag::empty(),
            Update::Concat(a, b) => self
                .infer_update(gamma, a)
                .union(&self.infer_update(gamma, b)),
            Update::If { cond: _, then, els } => self
                .infer_update(gamma, then)
                .union(&self.infer_update(gamma, els)),
            Update::Let { var, source, body } | Update::For { var, source, body } => {
                let q1 = self.infer_query(gamma, source);
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns);
                self.infer_update(&inner, body)
            }
            Update::Delete { target } => {
                // Full chains of {c:α | c.α ∈ r0} are exactly the chains of r0.
                self.infer_query(gamma, target).returns
            }
            Update::Rename { target, new_tag } => {
                let r0 = self.infer_query(gamma, target).returns;
                let mut out = r0.clone();
                // c:b for every new-label type b: add a sibling end next to
                // each target end (same parent, same depth, type b).
                let mut preds: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
                for &(f, t) in &r0.edges {
                    preds.entry(t).or_default().push(f);
                }
                for &b in &label_syms(self.schema, new_tag) {
                    for &end in r0.ends.keys() {
                        let depth = self.depth_of(end);
                        let bn = self.node(b, depth);
                        match preds.get(&end) {
                            Some(ps) => {
                                for &p in ps {
                                    out.edges.insert((p, bn));
                                }
                                out.ends.insert(bn, false);
                            }
                            None => {
                                // The target is the root itself: renaming the
                                // root changes the chain at depth 0.
                                out.ends.insert(bn, false);
                            }
                        }
                    }
                }
                out
            }
            Update::Insert {
                source,
                pos,
                target,
            } => {
                let src = self.infer_query(gamma, source);
                let r0 = self.infer_query(gamma, target).returns;
                let bases = match pos {
                    UpdatePos::Into | UpdatePos::IntoAsFirst | UpdatePos::IntoAsLast => r0,
                    UpdatePos::Before | UpdatePos::After => self.parents_of(&r0),
                };
                self.insertion_dag(&bases, &src)
            }
            Update::Replace { target, source } => {
                let src = self.infer_query(gamma, source);
                let r0 = self.infer_query(gamma, target).returns;
                let bases = self.parents_of(&r0);
                // {c:α | c.α ∈ r0} are the chains of r0 themselves.
                r0.union(&self.insertion_dag(&bases, &src))
            }
        }
    }

    /// The set of parent chains of every chain in `dag` (within the DAG).
    fn parents_of(&self, dag: &ChainDag) -> ChainDag {
        let mut preds: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        for &(f, t) in &dag.edges {
            preds.entry(t).or_default().push(f);
        }
        let mut out = ChainDag {
            edges: dag.edges.clone(),
            ends: FxHashMap::default(),
        };
        for &end in dag.ends.keys() {
            for &p in preds.get(&end).map(|v| v.as_slice()).unwrap_or(&[]) {
                out.ends.insert(p, false);
            }
        }
        out
    }

    /// Attaches the source's element chains and return-root types below every
    /// base chain (the insertion components of INSERT-1/2 and REPLACE).
    fn insertion_dag(&self, bases: &ChainDag, src: &DagQueryChains) -> ChainDag {
        let mut out = ChainDag {
            edges: bases.edges.clone(),
            ends: FxHashMap::default(),
        };
        // Suffixes to attach: element chains (with their extensibility) plus
        // one extensible single-symbol suffix per source return type.
        let mut suffixes: Vec<ChainItem> = src.elements.clone();
        for s in self.end_symbols(&src.returns) {
            suffixes.push(ChainItem::extended(Chain::single(s)));
        }
        for &base in bases.ends.keys() {
            for suf in &suffixes {
                if suf.chain.is_empty() {
                    // Degenerate suffix (element-chain ablation): the change
                    // happens somewhere below the base.
                    out.ends.insert(base, true);
                    continue;
                }
                let mut cur = base;
                let mut truncated = false;
                for (depth, &s) in (self.depth_of(base)..).zip(suf.chain.symbols()) {
                    if depth + 1 >= self.max_depth {
                        truncated = true;
                        self.saturated.set(true);
                        break;
                    }
                    let next = self.node(s, depth + 1);
                    out.edges.insert((cur, next));
                    cur = next;
                }
                let ext = suf.extensible || truncated;
                let e = out.ends.entry(cur).or_insert(false);
                *e = *e || ext;
            }
        }
        out
    }

    // ------------------------------------------------------ conflicts

    /// Plain prefix conflict between two DAG-denoted sets: does some chain of
    /// `a` (base chains only) prefix some chain of `b` (base chains only)?
    fn prefix_conflict_base(&self, a: &ChainDag, b: &ChainDag) -> bool {
        if a.is_empty() || b.is_empty() {
            return false;
        }
        let mut s = self.scratch.borrow_mut();
        let s = &mut *s;
        // Nodes from which an end of b is reachable via b's edges.
        let reaches_b = s.next_gen();
        for &(f, t) in &b.edges {
            s.adj_push(t, f);
        }
        s.stack.clear();
        for &e in b.ends.keys() {
            if !mark_has(&s.mark, e, reaches_b) {
                mark_set(&mut s.mark, e, reaches_b);
                s.stack.push(e);
            }
        }
        while let Some(n) = s.stack.pop() {
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let p = s.adj[i][j];
                if !mark_has(&s.mark, p, reaches_b) {
                    mark_set(&mut s.mark, p, reaches_b);
                    s.stack.push(p);
                }
            }
        }
        s.adj_clear();
        // Walk from the root along edges common to a and b; if we hit an end
        // of a from which b can still reach an end, the prefix relation holds.
        let (small, other) = if a.edges.len() <= b.edges.len() {
            (&a.edges, &b.edges)
        } else {
            (&b.edges, &a.edges)
        };
        for &(f, t) in small {
            if other.contains(&(f, t)) {
                s.adj_push(f, t);
            }
        }
        let root = self.root_node();
        let visited = s.next_gen();
        mark_set(&mut s.mark2, root, visited);
        s.stack.clear();
        s.stack.push(root);
        let mut found = false;
        while let Some(n) = s.stack.pop() {
            if a.ends.contains_key(&n) && mark_has(&s.mark, n, reaches_b) {
                found = true;
                break;
            }
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let m = s.adj[i][j];
                if !mark_has(&s.mark2, m, visited) {
                    mark_set(&mut s.mark2, m, visited);
                    s.stack.push(m);
                }
            }
        }
        s.adj_clear();
        found
    }

    /// Full conflict check `∃ x ∈ set(a), y ∈ set(b): x ⪯ y`, taking the
    /// extensible ends of `b` into account (extensions of `a` never help).
    pub fn dag_conflicts(&self, a: &ChainDag, b: &ChainDag) -> bool {
        if self.prefix_conflict_base(a, b) {
            return true;
        }
        let b_ext = b.extensible_ends_only();
        if b_ext.is_empty() {
            return false;
        }
        self.prefix_conflict_base(&b_ext, a)
    }

    /// Checks C-independence on CDAG chain sets: returns `true` when the pair
    /// is (chain-)independent.
    pub fn independent(&self, q: &DagQueryChains, u: &ChainDag) -> bool {
        // confl(r, U), confl(U, r), confl(U, v)
        !self.dag_conflicts(&q.returns, u)
            && !self.dag_conflicts(u, &q.returns)
            && !self.dag_conflicts(u, &q.used)
    }

    /// Converts explicitly represented chain sets into DAG form — used by the
    /// cross-checking tests to compare the two engines on identical inputs.
    pub fn explicit_to_dag(&self, q: &QueryChains) -> DagQueryChains {
        let mut returns = ChainDag::empty();
        for c in &q.returns {
            returns = returns.union(&self.dag_of_chain(c));
        }
        let mut used = ChainDag::empty();
        for item in &q.used {
            let mut d = self.dag_of_chain(&item.chain);
            if item.extensible {
                d = d.extend_all_ends();
            }
            used = used.union(&d);
        }
        DagQueryChains {
            returns,
            used,
            elements: q.elements.iter().cloned().collect(),
        }
    }

    /// Converts explicit update chains into DAG form (full chains).
    pub fn explicit_update_to_dag(&self, u: &UpdateChains) -> ChainDag {
        let mut out = ChainDag::empty();
        for uc in &u.chains {
            let full = uc.full();
            let mut d = self.dag_of_chain(&full.chain);
            if full.extensible {
                d = d.extend_all_ends();
            }
            out = out.union(&d);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Incremental k-ladders
// ---------------------------------------------------------------------------

/// Shared bookkeeping of the two ladders: the bound the cached result was
/// built at, whether it is exact for every larger bound, and reuse counters
/// for the perf harness.
#[derive(Clone, Copy, Debug)]
struct LadderState {
    /// The bound of the last fresh build (never moved by cache hits, so a
    /// complete ladder keeps serving *any* bound ≥ the build bound, even
    /// after serving a larger one).
    k: usize,
    complete: bool,
    reused: usize,
    rebuilt: usize,
}

impl LadderState {
    /// Decides whether a request for bound `k` can be served from the cache;
    /// updates the counters accordingly.
    fn serve(&mut self, k: usize) -> bool {
        if k == self.k || (self.complete && k >= self.k) {
            self.reused += 1;
            true
        } else {
            self.rebuilt += 1;
            false
        }
    }
}

/// Generates a ladder type: the query and update ladders are identical
/// except for the expression type, the result type, and which inference the
/// engine runs — everything else (cache policy, counters, accessors) is
/// shared here and in [`LadderState`] so the two can never diverge.
macro_rules! define_k_ladder {
    (
        $(#[$doc:meta])*
        $name:ident, $expr_ty:ty, $result_ty:ty, $empty:expr, $infer:ident
    ) => {
        $(#[$doc])*
        pub struct $name<'a, S: SchemaLike> {
            schema: &'a S,
            element_chains: bool,
            state: LadderState,
            result: $result_ty,
        }

        impl<'a, S: SchemaLike> $name<'a, S> {
            /// Builds the ladder with a fresh inference at bound `k`.
            pub fn new(schema: &'a S, expr: &$expr_ty, k: usize, element_chains: bool) -> Self {
                let mut ladder = $name {
                    schema,
                    element_chains,
                    state: LadderState {
                        k,
                        complete: false,
                        reused: 0,
                        rebuilt: 0,
                    },
                    result: $empty,
                };
                ladder.rebuild(expr, k);
                ladder.state.rebuilt = 0; // the initial build is not a re-build
                ladder
            }

            fn rebuild(&mut self, expr: &$expr_ty, k: usize) {
                let eng = CdagEngine::new(self.schema, k).with_element_chains(self.element_chains);
                self.result = eng.$infer(&eng.root_gamma(expr.free_vars()), expr);
                self.state.complete = !eng.take_saturated();
                self.state.k = k;
            }

            /// Returns the chains of the expression at bound `k`, reusing the
            /// cached result when it is known to be exact for `k`.
            pub fn extend_to(&mut self, expr: &$expr_ty, k: usize) -> &$result_ty {
                if !self.state.serve(k) {
                    self.rebuild(expr, k);
                }
                &self.result
            }

            /// The cached result (at bound [`Self::k`]).
            pub fn result(&self) -> &$result_ty {
                &self.result
            }

            /// Builds a ladder at the first of `bounds` and walks the rest in
            /// ascending order, returning the chains at every bound — bounds
            /// served from the cache share one `Arc` — plus the number of
            /// inferences actually run. This is the session prepass's walk
            /// (and the one the `cdag` perf harness measures), kept here so
            /// the query and update sides can never drift.
            pub fn walk_bounds(
                schema: &'a S,
                expr: &$expr_ty,
                bounds: &[usize],
                element_chains: bool,
            ) -> (Vec<(usize, std::sync::Arc<$result_ty>)>, usize) {
                let (steps, inferences) =
                    Self::walk_bounds_complete(schema, expr, bounds, element_chains);
                (steps.into_iter().map(|(k, r, _)| (k, r)).collect(), inferences)
            }

            /// [`Self::walk_bounds`], additionally reporting for every bound
            /// the build bound its result is exact *from* (`Some(k0)` when
            /// the `k0` inference never saturated, so the result serves any
            /// bound ≥ `k0`; `None` when it saturated) — the information a
            /// cross-call cache needs to keep serving later requests.
            pub fn walk_bounds_complete(
                schema: &'a S,
                expr: &$expr_ty,
                bounds: &[usize],
                element_chains: bool,
            ) -> (
                Vec<(usize, std::sync::Arc<$result_ty>, Option<usize>)>,
                usize,
            ) {
                let Some((&first, rest)) = bounds.split_first() else {
                    return (Vec::new(), 0);
                };
                let mut ladder = Self::new(schema, expr, first, element_chains);
                let mut arc = std::sync::Arc::new(ladder.result().clone());
                let mut out = Vec::with_capacity(bounds.len());
                let complete_from =
                    |ladder: &Self| ladder.is_complete().then(|| ladder.k());
                out.push((first, std::sync::Arc::clone(&arc), complete_from(&ladder)));
                let mut rebuilds = 0usize;
                for &k in rest {
                    ladder.extend_to(expr, k);
                    if ladder.rebuild_count() != rebuilds {
                        rebuilds = ladder.rebuild_count();
                        arc = std::sync::Arc::new(ladder.result().clone());
                    }
                    out.push((k, std::sync::Arc::clone(&arc), complete_from(&ladder)));
                }
                (out, 1 + ladder.rebuild_count())
            }

            /// The bound the cached result was last built at (the result is
            /// additionally exact for every larger bound when
            /// [`Self::is_complete`]).
            pub fn k(&self) -> usize {
                self.state.k
            }

            /// Whether the cached result is exact for every bound ≥ [`Self::k`].
            pub fn is_complete(&self) -> bool {
                self.state.complete
            }

            /// How many `extend_to` calls were served from the cache.
            pub fn reuse_count(&self) -> usize {
                self.state.reused
            }

            /// How many `extend_to` calls had to re-infer from scratch.
            pub fn rebuild_count(&self) -> usize {
                self.state.rebuilt
            }
        }
    };
}

define_k_ladder!(
    /// Incremental CDAG inference for one query across increasing
    /// multiplicity bounds.
    ///
    /// A ladder built at bound `k` serves any bound `k' ≥ k` from the cached
    /// result whenever the `k` inference never hit its depth cap (the common
    /// case for non-recursive navigation): the DAG node encoding is
    /// independent of `k`, so the cached DAG *is* the fresh-`k'` DAG. When
    /// the inference did saturate, extension falls back to a fresh build at
    /// the new bound — the result is always exactly
    /// [`CdagEngine::infer_query`] at the requested bound (property-tested
    /// by `tests/engine_differential.rs`).
    QueryKLadder,
    Query,
    DagQueryChains,
    DagQueryChains::default(),
    infer_query
);

define_k_ladder!(
    /// Incremental CDAG inference for one update across increasing
    /// multiplicity bounds — see [`QueryKLadder`].
    UpdateKLadder,
    Update,
    ChainDag,
    ChainDag::empty(),
    infer_update
);

#[cfg(test)]
mod tests {
    use super::*;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn figure1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    fn show(d: &Dtd, eng: &CdagEngine<'_, Dtd>, dag: &ChainDag) -> Vec<String> {
        let mut v: Vec<String> = eng
            .enumerate(dag, 10_000)
            .unwrap()
            .iter()
            .map(|c| d.show_chain(c))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn q1_and_u1_are_independent_on_figure1() {
        let d = figure1();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert_eq!(show(&d, &eng, &qc.returns), vec!["doc.a.c"]);
        assert_eq!(show(&d, &eng, &uc), vec!["doc.b.c"]);
        assert!(eng.independent(&qc, &uc));
    }

    #[test]
    fn overlapping_pair_is_flagged() {
        let d = figure1();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert!(!eng.independent(&qc, &uc));
    }

    #[test]
    fn update_above_return_is_flagged() {
        // query //a//c, update delete //a: deleting a removes returned c.
        let d = figure1();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //a").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert!(!eng.independent(&qc, &uc));
    }

    #[test]
    fn recursive_schema_stays_polynomial() {
        // The 3-clique schema that blows up the explicit engine stays small
        // as a CDAG.
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let eng = CdagEngine::new(&d, 8);
        let q = parse_query("//b//c//b").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        // Width is bounded by (#types + 2) per level and depth by k·|d|.
        assert!(qc.returns.edge_count() < 10_000);
        assert!(!qc.returns.is_empty());
    }

    #[test]
    fn dag_of_chain_roundtrips() {
        let d = figure1();
        let eng = CdagEngine::new(&d, 2);
        let c = d.chain_of_names(&["doc", "a", "c"]).unwrap();
        let dag = eng.dag_of_chain(&c);
        assert_eq!(show(&d, &eng, &dag), vec!["doc.a.c"]);
    }

    #[test]
    fn element_chains_give_bibliography_independence() {
        let d = Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*) ; title -> #PCDATA ; author -> EMPTY",
            "bib",
        )
        .unwrap();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//title").unwrap();
        let u = parse_update("for $x in //book return insert <author/> into $x").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert!(eng.independent(&qc, &uc));

        // Without element chains the analysis must conservatively flag it.
        let eng_ablate = CdagEngine::new(&d, 3).with_element_chains(false);
        let qc = eng_ablate.infer_query(&eng_ablate.root_gamma(q.free_vars()), &q);
        let uc = eng_ablate.infer_update(&eng_ablate.root_gamma(u.free_vars()), &u);
        assert!(!eng_ablate.independent(&qc, &uc));
    }

    #[test]
    fn upward_axis_follows_only_dag_edges() {
        // Figure 2 discussion: ancestors are computed within the inferred
        // DAG, not over the whole schema.
        let d = Dtd::parse_compact(
            "a -> (b|d)* ; b -> c ; d -> c ; c -> (e?, f?) ; e -> EMPTY ; f -> EMPTY",
            "a",
        )
        .unwrap();
        let eng = CdagEngine::new(&d, 2);
        // /a? The root is a; query /d/c/f/ancestor::node() should only see
        // a, d, c — never b.
        let q = parse_query("/d/c/f/ancestor::node()").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let shown = show(&d, &eng, &qc.returns);
        assert!(shown.contains(&"a.d".to_string()));
        assert!(shown.iter().all(|c| !c.contains(".b")), "{shown:?}");
    }

    #[test]
    fn saturation_is_reported_on_recursive_descendants_only() {
        let rec = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let eng = CdagEngine::new(&rec, 1);
        let q = parse_query("//b").unwrap();
        let _ = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        assert!(eng.take_saturated(), "recursive closure must hit the cap");
        assert!(!eng.take_saturated(), "the flag is cleared by take");

        let flat = figure1();
        let eng = CdagEngine::new(&flat, 2);
        let q = parse_query("//a//c").unwrap();
        let _ = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        assert!(
            !eng.take_saturated(),
            "a non-recursive schema never reaches the cap"
        );
    }

    #[test]
    fn query_ladder_matches_fresh_builds() {
        for src in ["//a//c", "/a/c", "//node()", "//b/parent::doc"] {
            let d = figure1();
            let q = parse_query(src).unwrap();
            let mut ladder = QueryKLadder::new(&d, &q, 1, true);
            for k in 2..=4 {
                let stepped = ladder.extend_to(&q, k).clone();
                let eng = CdagEngine::new(&d, k);
                let fresh = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
                assert_eq!(stepped, fresh, "{src} at k = {k}");
            }
            assert!(ladder.is_complete(), "{src} is non-recursive");
            assert_eq!(ladder.rebuild_count(), 0, "{src} never rebuilds");
            // A complete ladder keeps serving bounds *below* ones it already
            // served (but at or above the build bound) from the cache.
            let rebuilds = ladder.rebuild_count();
            ladder.extend_to(&q, 2);
            assert_eq!(ladder.rebuild_count(), rebuilds, "{src} at k = 2 again");
            assert_eq!(ladder.k(), 1, "the build bound never moves");
        }
    }

    #[test]
    fn ladder_walk_bounds_shares_arcs_and_counts_inferences() {
        let d = figure1();
        let q = parse_query("//a//c").unwrap();
        let (out, inferences) = QueryKLadder::walk_bounds(&d, &q, &[2, 3, 4], true);
        assert_eq!(inferences, 1, "non-recursive: one build serves all bounds");
        assert_eq!(out.len(), 3);
        assert!(
            std::sync::Arc::ptr_eq(&out[0].1, &out[2].1),
            "cache-served bounds share one allocation"
        );
        let eng = CdagEngine::new(&d, 4);
        let fresh = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        assert_eq!(*out[2].1, fresh);
        assert!(QueryKLadder::walk_bounds(&d, &q, &[], true).0.is_empty());
    }

    #[test]
    fn update_ladder_matches_fresh_builds_even_when_saturated() {
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let u = parse_update("delete //c//b").unwrap();
        let mut ladder = UpdateKLadder::new(&d, &u, 1, true);
        assert!(!ladder.is_complete(), "recursive deletes saturate");
        for k in 2..=3 {
            let stepped = ladder.extend_to(&u, k).clone();
            let eng = CdagEngine::new(&d, k);
            let fresh = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
            assert_eq!(stepped, fresh, "k = {k}");
        }
        assert_eq!(ladder.rebuild_count(), 2, "saturated ladders rebuild");
    }
}
