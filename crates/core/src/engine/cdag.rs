//! The CDAG engine: chain sets represented as chain-DAGs (paper §6.1).
//!
//! A CDAG is rooted at the schema start type and has **at most one node per
//! (type, depth) pair**, so its width is bounded by the schema size and the
//! depth by `k·|d|`. A set of rooted chains is represented by a sub-DAG (its
//! own edge set) plus a set of *end* nodes: the denoted chains are all paths
//! from the root to an end node, where an end node may additionally be
//! flagged *extensible* (the set then also contains every descendant
//! extension of those paths).
//!
//! Compared with the explicit engine this trades a small amount of precision
//! for polynomial behaviour:
//!
//! * merging the sub-DAGs of different sub-expressions can introduce paths
//!   that neither sub-expression inferred (the paper avoids this with
//!   per-expression edge labels; we accept the over-approximation, which is
//!   sound because every such path is still a schema chain),
//! * the per-tag multiplicity bound of k-chains is relaxed to a depth bound
//!   (`k·|d|`), which again only adds chains,
//! * `for` iteration binds the loop variable to the whole return set at once
//!   instead of chain-by-chain, which only enlarges the inferred sets.
//!
//! Every approximation enlarges the inferred chain sets, so independence
//! verdicts remain sound; the cross-check tests in `tests/` (in particular
//! `tests/engine_differential.rs`) verify that the two engines agree on the
//! workloads where the explicit engine is feasible.
//!
//! ## Performance
//!
//! The engine is the default first pass of `EngineKind::Auto`, so its
//! inference and conflict primitives are hot paths (see the `cdag_micro`
//! bench and the `cdag` perf harness). Three things keep them cheap:
//!
//! * all node/edge sets hash with [`crate::fxhash`] instead of SipHash
//!   (node indices are dense small integers, never attacker-controlled),
//! * graph passes (provenance trimming, descendant closure, prefix
//!   conflicts) run over a per-engine scratch workspace of dense
//!   [`crate::bitset`] word-bitsets and reusable adjacency lists instead of
//!   allocating fresh hash maps per call — node marks cost one shift and
//!   mask, and set intersections are decided 64 nodes per word operation,
//! * the descendant closure is shared across all context ends and
//!   level-synchronous: each grid level is one frontier bitmask, and
//!   stepping the closure ORs precomputed per-symbol child masks into the
//!   next level (the grid encodes `(type, depth)` level-major, so a level
//!   is a contiguous bit range). Large closures additionally shard their
//!   per-level edge materialization over the worker pool when the engine
//!   was built with [`CdagEngine::with_jobs`]; the per-level lists are
//!   merged in level order, so results are bit-identical for every worker
//!   count.
//!
//! ## Incremental k-extension
//!
//! The engine records whether an inference ever hit the `k·|d|` depth cap
//! (*saturation*). When it did not, the exact same DAG — node indices encode
//! `(type, depth)` with a k-independent width — is what a fresh engine at any
//! larger `k` would compute, so [`QueryKLadder`]/[`UpdateKLadder`] can serve
//! every later bound from the cached result. The batch analyzer walks each
//! expression's bounds in ascending order through a ladder, which turns the
//! per-`(expr, k)` matrix prepass into per-`expr` work for every
//! non-saturating expression.

use super::label_syms;
use crate::bitset::{self, BitGrid, BitSet};
use crate::conflict::{ConflictKind, ConflictWitness};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::parallel::{run_indexed, Jobs};
use crate::types::{ChainItem, QueryChains, UpdateChains};
use qui_schema::{Chain, SchemaLike, Sym, TEXT_SYM};
use qui_xquery::{Axis, NodeTest, Query, Update, UpdatePos};
use std::cell::{Cell, RefCell};

/// A node of the CDAG: a (type, depth) pair, encoded as `depth * width + sym`.
pub type NodeIdx = u32;

/// A set of rooted chains represented as a sub-DAG of the CDAG.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainDag {
    /// Present edges, as (from-node, to-node) pairs. The to-node is always at
    /// the from-node's depth plus one.
    pub edges: FxHashSet<(NodeIdx, NodeIdx)>,
    /// End nodes with their extensibility flag (`true` = the set also
    /// contains every descendant extension of chains ending here).
    pub ends: FxHashMap<NodeIdx, bool>,
}

impl ChainDag {
    /// The empty set.
    pub fn empty() -> Self {
        ChainDag::default()
    }

    /// Returns `true` if the set denotes no chain.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Union of two sets (edges and ends are merged; an end extensible in
    /// either operand stays extensible).
    pub fn union(mut self, other: &ChainDag) -> ChainDag {
        self.edges.extend(other.edges.iter().copied());
        for (&n, &ext) in &other.ends {
            let e = self.ends.entry(n).or_insert(false);
            *e = *e || ext;
        }
        self
    }

    /// Number of edges (a size measure used by the complexity benches).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Marks every end node extensible.
    pub fn extend_all_ends(mut self) -> ChainDag {
        for v in self.ends.values_mut() {
            *v = true;
        }
        self
    }

    /// Restricts the ends to the extensible ones (edges are kept).
    pub fn extensible_ends_only(&self) -> ChainDag {
        ChainDag {
            edges: self.edges.clone(),
            ends: self
                .ends
                .iter()
                .filter(|&(_, &ext)| ext)
                .map(|(&n, &e)| (n, e))
                .collect(),
        }
    }
}

/// Reusable graph-pass workspace (see the module docs): dense word-bitset
/// node marks, level-major frontier grids and adjacency lists indexed by
/// dense [`NodeIdx`]. Everything auto-grows on first touch, and clearing is
/// bounded by what the previous pass dirtied (bitset high-water marks, grid
/// dirty-row ranges, the `touched` list), so a pass over a small DAG never
/// pays for the full `width · depth` grid.
#[derive(Default)]
struct Scratch {
    /// Primary node-mark set.
    mark: BitSet,
    /// Secondary node-mark set for passes that need two node sets at once.
    mark2: BitSet,
    /// Adjacency lists; non-empty slots are tracked in `touched`.
    adj: Vec<Vec<NodeIdx>>,
    /// Slots of `adj` that must be cleared before the next pass.
    touched: Vec<NodeIdx>,
    /// Reusable DFS/BFS stack.
    stack: Vec<NodeIdx>,
    /// Descendant closure: per-level masks of every node the closure
    /// visited (seeds plus reached children).
    visited: BitGrid,
    /// Descendant closure: per-level masks of nodes reached *as children*
    /// (the candidates for node-test matching).
    reached: BitGrid,
    /// Descendant closure phase 2: per-level masks of nodes from which a
    /// matched node is reachable.
    reach: BitGrid,
    /// Per-call node-test mask over one level's symbol slots.
    match_mask: Vec<u64>,
    /// One-level OR accumulator for the frontier step.
    level_buf: Vec<u64>,
    /// Reusable slot list (decoded set bits of one level).
    slots: Vec<u32>,
}

impl Scratch {
    #[inline]
    fn adj_push(&mut self, from: NodeIdx, to: NodeIdx) {
        let i = from as usize;
        if i >= self.adj.len() {
            self.adj.resize_with(i + 1, Vec::new);
        }
        if self.adj[i].is_empty() {
            self.touched.push(from);
        }
        self.adj[i].push(to);
    }

    fn adj_clear(&mut self) {
        for &n in &self.touched {
            self.adj[n as usize].clear();
        }
        self.touched.clear();
    }
}

/// The CDAG engine: holds the schema, the dimensions of the node grid, and
/// implements inference and conflict checking over [`ChainDag`] values.
pub struct CdagEngine<'a, S: SchemaLike> {
    schema: &'a S,
    /// Number of distinct symbols per level (schema types + text + one
    /// sentinel slot for unknown labels).
    width: u32,
    /// Number of levels (maximum chain length).
    max_depth: u32,
    /// The multiplicity bound the grid was sized for.
    k: usize,
    /// Element-chain inference toggle (see the explicit engine).
    element_chains: bool,
    /// Words per level of the frontier grids (`⌈width / 64⌉`).
    stride: usize,
    /// Per-symbol child masks, flattened at `stride` words per symbol: the
    /// one-level bitmask of the child slots of each schema type. Stepping
    /// the descendant closure is OR-ing these masks.
    child_masks: Vec<u64>,
    /// Per-symbol child slot lists, flattened (`child_off` delimits them) —
    /// the plain-data form of `SchemaLike::child_types` that the parallel
    /// edge materialization reads without touching the schema.
    child_slots: Vec<u32>,
    /// `child_slots[child_off[s]..child_off[s + 1]]` are the children of
    /// symbol slot `s`.
    child_off: Vec<u32>,
    /// Worker count for intra-inference parallelism (1 = fully sequential;
    /// see [`Self::with_jobs`]).
    par_workers: usize,
    /// Set when an inference hits the depth cap (so its result may be
    /// missing chains a deeper grid would add); cleared by
    /// [`Self::take_saturated`].
    saturated: Cell<bool>,
    /// Cross-rebuild sub-inference memo, installed by the k-ladders (`None`
    /// outside ladder mode, where inference runs unmemoized).
    ladder_memo: RefCell<Option<LadderMemo>>,
    /// Reusable graph-pass workspace.
    scratch: RefCell<Scratch>,
}

/// The cross-rebuild memo of a k-ladder: sub-inferences whose walk never
/// hit the depth cap, keyed by `(expression, environment)` fingerprints.
///
/// A completed sub-inference is *bound-independent* — the DAG node encoding
/// `depth · width + sym` does not involve `k`, so the only way a larger grid
/// can change a result is by un-truncating chains the smaller grid cut at
/// its depth cap. A sub-expression that never hit the cap therefore infers
/// to the identical DAG at every larger bound (given the same environment,
/// which the fingerprint pins), and a ladder rebuild at `k + 1` only has to
/// re-infer the saturated frontier of the expression tree. This is the same
/// property the ladder's serving logic exploits for the whole expression
/// (a complete build needs no rebuild at larger bounds), applied per
/// sub-expression, which is what makes `extend(k → k+1)` a true
/// continuation instead of a from-scratch build.
#[derive(Debug, Default)]
pub struct LadderMemo {
    queries: FxHashMap<(String, String), DagQueryChains>,
    updates: FxHashMap<(String, String), ChainDag>,
    hits: usize,
}

impl LadderMemo {
    fn query_hit(&mut self, key: &(String, String)) -> Option<DagQueryChains> {
        let hit = self.queries.get(key).cloned();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    fn update_hit(&mut self, key: &(String, String)) -> Option<ChainDag> {
        let hit = self.updates.get(key).cloned();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Total sub-inferences served from the memo, across every build that
    /// carried it.
    pub fn hit_count(&self) -> usize {
        self.hits
    }
}

/// Canonical fingerprint of a [`ChainDag`] (sorted edges and ends), appended
/// to `out`.
fn dag_fingerprint(dag: &ChainDag, out: &mut String) {
    use std::fmt::Write;
    let mut edges: Vec<(NodeIdx, NodeIdx)> = dag.edges.iter().copied().collect();
    edges.sort_unstable();
    let mut ends: Vec<(NodeIdx, bool)> = dag.ends.iter().map(|(&n, &e)| (n, e)).collect();
    ends.sort_unstable();
    for (f, t) in edges {
        let _ = write!(out, "{f}-{t};");
    }
    out.push('|');
    for (n, ext) in ends {
        let _ = write!(out, "{n}{};", if ext { '+' } else { '.' });
    }
}

/// Canonical fingerprint of an environment (variables in sorted order).
fn gamma_fingerprint(gamma: &DagGamma) -> String {
    let mut vars: Vec<&String> = gamma.keys().collect();
    vars.sort();
    let mut out = String::new();
    for v in vars {
        out.push_str(v);
        out.push('=');
        dag_fingerprint(&gamma[v], &mut out);
        out.push('#');
    }
    out
}

/// Variable environment for the CDAG engine.
pub type DagGamma = FxHashMap<String, ChainDag>;

/// Query chains in CDAG form: returns and used chains as DAGs, element
/// chains as symbolic items (they are not rooted at the schema root).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagQueryChains {
    /// Return chains.
    pub returns: ChainDag,
    /// Used chains (ends may be extensible).
    pub used: ChainDag,
    /// Element chains.
    pub elements: Vec<ChainItem>,
}

impl DagQueryChains {
    fn union(mut self, other: DagQueryChains) -> DagQueryChains {
        self.returns = self.returns.union(&other.returns);
        self.used = self.used.union(&other.used);
        for e in other.elements {
            if !self.elements.contains(&e) {
                self.elements.push(e);
            }
        }
        self
    }
}

impl<'a, S: SchemaLike> CdagEngine<'a, S> {
    /// Creates an engine for multiplicity bound `k` (which fixes the depth of
    /// the node grid at `k·|d| + 2`).
    pub fn new(schema: &'a S, k: usize) -> Self {
        let n = schema.num_types();
        let width = (n + 1) as u32;
        let depth = (k.max(1) * schema.schema_size().max(1) + 2) as u32;
        let stride = (width as usize).div_ceil(bitset::WORD_BITS);
        let mut child_masks = vec![0u64; n * stride];
        let mut child_slots = Vec::new();
        let mut child_off = Vec::with_capacity(n + 1);
        child_off.push(0u32);
        for i in 0..n {
            for &c in schema.child_types(Sym(i as u16)) {
                let slot = (c.index() as u32).min(width - 1);
                child_slots.push(slot);
                child_masks[i * stride + slot as usize / bitset::WORD_BITS] |=
                    1u64 << (slot as usize % bitset::WORD_BITS);
            }
            child_off.push(child_slots.len() as u32);
        }
        CdagEngine {
            schema,
            width,
            max_depth: depth,
            k,
            element_chains: true,
            stride,
            child_masks,
            child_slots,
            child_off,
            par_workers: 1,
            saturated: Cell::new(false),
            ladder_memo: RefCell::new(None),
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Enables or disables element-chain inference (ablation switch).
    pub fn with_element_chains(mut self, on: bool) -> Self {
        self.element_chains = on;
        self
    }

    /// Installs a cross-rebuild sub-inference memo (ladder mode). Completed
    /// sub-inferences are served from — and recorded into — the memo; take
    /// it back with [`Self::take_ladder_memo`] after the build.
    pub fn with_ladder_memo(mut self, memo: LadderMemo) -> Self {
        self.ladder_memo = RefCell::new(Some(memo));
        self
    }

    /// Removes and returns the installed ladder memo (an empty one if none
    /// was installed), disabling memoization on this engine.
    pub fn take_ladder_memo(&self) -> LadderMemo {
        self.ladder_memo.borrow_mut().take().unwrap_or_default()
    }

    /// Enables intra-inference parallelism: large descendant closures shard
    /// their per-level edge materialization over the worker pool. Results
    /// are bit-identical for every worker count — the per-level work items
    /// are merged in level order — so this only changes wall-clock time.
    /// Defaults to sequential.
    pub fn with_jobs(mut self, jobs: Jobs) -> Self {
        self.par_workers = jobs.resolve();
        self
    }

    /// The one-level child bitmask of a symbol slot ([`Self::stride`] words).
    #[inline]
    fn child_mask(&self, slot: u32) -> &[u64] {
        let i = slot as usize * self.stride;
        &self.child_masks[i..i + self.stride]
    }

    /// The schema this engine analyses.
    pub fn schema(&self) -> &'a S {
        self.schema
    }

    /// The multiplicity bound the engine was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of levels of the node grid (`k·|d| + 2`); no chain the
    /// engine infers is longer than this.
    pub fn grid_depth(&self) -> u32 {
        self.max_depth
    }

    /// Returns whether any inference since the last call hit the `k·|d|`
    /// depth cap, and clears the flag. When this returns `false`, every DAG
    /// the engine produced since is exactly what a fresh engine at any
    /// larger `k` would produce — the property the k-ladders build on.
    pub fn take_saturated(&self) -> bool {
        self.saturated.replace(false)
    }

    // ------------------------------------------------------ node encoding

    fn sym_slot(&self, s: Sym) -> u32 {
        let slot = s.index() as u32;
        if slot >= self.width - 1 {
            self.width - 1 // unknown-label sentinel slot
        } else {
            slot
        }
    }

    fn node(&self, s: Sym, depth: u32) -> NodeIdx {
        depth * self.width + self.sym_slot(s)
    }

    /// The depth (chain length minus one) encoded in a node index.
    pub fn depth_of(&self, n: NodeIdx) -> u32 {
        n / self.width
    }

    /// The schema type encoded in a node index (`None` for the unknown-label
    /// sentinel slot).
    pub fn sym_of(&self, n: NodeIdx) -> Option<Sym> {
        let slot = n % self.width;
        if slot == self.width - 1 {
            None // unknown-label sentinel
        } else {
            Some(Sym(slot as u16))
        }
    }

    /// The singleton set containing just the root chain.
    pub fn root_dag(&self) -> ChainDag {
        let mut ends = FxHashMap::default();
        ends.insert(self.node(self.schema.start_type(), 0), false);
        ChainDag {
            edges: FxHashSet::default(),
            ends,
        }
    }

    /// Builds the DAG denoting exactly one explicit chain (used to seed
    /// environments and in tests).
    pub fn dag_of_chain(&self, chain: &Chain) -> ChainDag {
        let mut dag = ChainDag::empty();
        let syms = chain.symbols();
        if syms.is_empty() {
            return dag;
        }
        for (i, w) in syms.windows(2).enumerate() {
            dag.edges
                .insert((self.node(w[0], i as u32), self.node(w[1], i as u32 + 1)));
        }
        dag.ends.insert(
            self.node(syms[syms.len() - 1], (syms.len() - 1) as u32),
            false,
        );
        dag
    }

    /// Enumerates the chains denoted by a DAG (without extensions), up to
    /// `cap` chains — used by tests, the differential harness and debugging
    /// output only.
    pub fn enumerate(&self, dag: &ChainDag, cap: usize) -> Option<Vec<Chain>> {
        let root = self.node(self.schema.start_type(), 0);
        let mut out = Vec::new();
        let mut stack = vec![(root, Chain::single(self.schema.start_type()))];
        // Adjacency for forward traversal.
        let mut adj: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        for &(f, t) in &dag.edges {
            adj.entry(f).or_default().push(t);
        }
        while let Some((n, chain)) = stack.pop() {
            if dag.ends.contains_key(&n) {
                out.push(chain.clone());
                if out.len() > cap {
                    return None;
                }
            }
            if let Some(next) = adj.get(&n) {
                for &m in next {
                    if let Some(s) = self.sym_of(m) {
                        stack.push((m, chain.push(s)));
                    }
                }
            }
        }
        Some(out)
    }

    // ------------------------------------------------------ step inference

    fn test_matches(&self, s: Sym, test: &NodeTest) -> bool {
        match test {
            NodeTest::AnyNode => true,
            NodeTest::Text => s == TEXT_SYM,
            NodeTest::AnyElement => s != TEXT_SYM,
            NodeTest::Tag(t) => s != TEXT_SYM && self.schema.type_label(s) == t,
        }
    }

    /// The root node of the grid.
    pub fn root_node(&self) -> NodeIdx {
        self.node(self.schema.start_type(), 0)
    }

    /// Marks the engine saturated when skipping extensions below `sym` at the
    /// depth cap actually dropped anything.
    fn note_depth_cap(&self, sym: Sym) {
        if !self.schema.child_types(sym).is_empty() {
            self.saturated.set(true);
        }
    }

    /// Prunes a DAG to the edges lying on some path from the root to one of
    /// the given end nodes (provenance trimming). This is the unlabeled
    /// counterpart of the paper's edge labels: chains whose endpoint was
    /// filtered away by a node test or a later step must not leave their
    /// edges behind, otherwise they would resurface as spurious paths when
    /// DAG nodes merge.
    fn trim_to(
        &self,
        edges: &FxHashSet<(NodeIdx, NodeIdx)>,
        ends: &FxHashSet<NodeIdx>,
    ) -> FxHashSet<(NodeIdx, NodeIdx)> {
        if ends.is_empty() || edges.is_empty() {
            return FxHashSet::default();
        }
        let mut s = self.scratch.borrow_mut();
        let s = &mut *s;
        // Backward reachability from the ends ("above", in `mark`).
        s.mark.clear();
        for &(f, t) in edges {
            s.adj_push(t, f);
        }
        s.stack.clear();
        for &e in ends {
            if s.mark.insert(e) {
                s.stack.push(e);
            }
        }
        while let Some(n) = s.stack.pop() {
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let p = s.adj[i][j];
                if s.mark.insert(p) {
                    s.stack.push(p);
                }
            }
        }
        s.adj_clear();
        // Forward reachability from the root, restricted to `above`
        // (in `mark2`).
        s.mark2.clear();
        for &(f, t) in edges {
            if s.mark.contains(f) && s.mark.contains(t) {
                s.adj_push(f, t);
            }
        }
        let root = self.root_node();
        s.mark2.insert(root);
        s.stack.clear();
        s.stack.push(root);
        while let Some(n) = s.stack.pop() {
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let m = s.adj[i][j];
                if s.mark2.insert(m) {
                    s.stack.push(m);
                }
            }
        }
        s.adj_clear();
        edges
            .iter()
            .copied()
            .filter(|&(f, t)| s.mark2.contains(f) && s.mark.contains(t) && s.mark2.contains(t))
            .collect()
    }

    /// Prunes a whole DAG to the paths leading to its own ends.
    pub fn trim(&self, dag: &ChainDag) -> ChainDag {
        let ends: FxHashSet<NodeIdx> = dag.ends.keys().copied().collect();
        ChainDag {
            edges: self.trim_to(&dag.edges, &ends),
            ends: dag.ends.clone(),
        }
    }

    /// Single-step inference: the CDAG analogue of `TC(AC(c, axis), φ)` for
    /// every chain denoted by `ctx`. Returns `(result, used)` where `used` is
    /// the restriction of `ctx` to the ends that produced at least one result
    /// (needed by rule STEPUH).
    ///
    /// Only the context edges lying on paths to *contributing* ends are kept
    /// (provenance trimming, see [`Self::trim`]); without this, chains that a
    /// node test discarded would pollute later steps through shared CDAG
    /// nodes.
    pub fn step(&self, ctx: &ChainDag, axis: Axis, test: &NodeTest) -> (ChainDag, ChainDag) {
        if matches!(axis, Axis::Descendant | Axis::DescendantOrSelf) {
            return self.step_descendant(ctx, axis == Axis::DescendantOrSelf, test);
        }
        let mut new_edges: FxHashSet<(NodeIdx, NodeIdx)> = FxHashSet::default();
        let mut result = ChainDag::empty();
        let mut used = ChainDag::empty();
        // Reverse adjacency of the context DAG, needed by upward axes.
        let mut preds: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        if matches!(
            axis,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::FollowingSibling
                | Axis::PrecedingSibling
        ) {
            for &(f, t) in &ctx.edges {
                preds.entry(t).or_default().push(f);
            }
        }
        for &end in ctx.ends.keys() {
            let Some(end_sym) = self.sym_of(end) else {
                continue;
            };
            let depth = self.depth_of(end);
            let mut produced = false;
            match axis {
                Axis::SelfAxis => {
                    if self.test_matches(end_sym, test) {
                        result.ends.insert(end, false);
                        produced = true;
                    }
                }
                Axis::Child => {
                    if depth + 1 < self.max_depth {
                        for &c in self.schema.child_types(end_sym) {
                            let cn = self.node(c, depth + 1);
                            if self.test_matches(c, test) {
                                new_edges.insert((end, cn));
                                result.ends.insert(cn, false);
                                produced = true;
                            }
                        }
                    } else {
                        self.note_depth_cap(end_sym);
                    }
                }
                Axis::Descendant | Axis::DescendantOrSelf => {
                    unreachable!("handled by step_descendant")
                }
                Axis::Parent => {
                    for &p in preds.get(&end).map(|v| v.as_slice()).unwrap_or(&[]) {
                        if let Some(ps) = self.sym_of(p) {
                            if self.test_matches(ps, test) {
                                result.ends.insert(p, false);
                                produced = true;
                            }
                        }
                    }
                }
                Axis::Ancestor | Axis::AncestorOrSelf => {
                    if axis == Axis::AncestorOrSelf && self.test_matches(end_sym, test) {
                        result.ends.insert(end, false);
                        produced = true;
                    }
                    let mut frontier = vec![end];
                    let mut visited: FxHashSet<NodeIdx> = FxHashSet::default();
                    while let Some(n) = frontier.pop() {
                        for &p in preds.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                            if let Some(ps) = self.sym_of(p) {
                                if self.test_matches(ps, test) {
                                    result.ends.insert(p, false);
                                    produced = true;
                                }
                            }
                            if visited.insert(p) {
                                frontier.push(p);
                            }
                        }
                    }
                }
                Axis::FollowingSibling | Axis::PrecedingSibling => {
                    for &p in preds.get(&end).map(|v| v.as_slice()).unwrap_or(&[]) {
                        let Some(parent_sym) = self.sym_of(p) else {
                            continue;
                        };
                        for &(x, y) in self.schema.before_pairs_of(parent_sym) {
                            let sibling = if axis == Axis::FollowingSibling {
                                (x == end_sym).then_some(y)
                            } else {
                                (y == end_sym).then_some(x)
                            };
                            if let Some(s) = sibling {
                                if self.test_matches(s, test) {
                                    let sn = self.node(s, depth);
                                    new_edges.insert((p, sn));
                                    result.ends.insert(sn, false);
                                    produced = true;
                                }
                            }
                        }
                    }
                }
            }
            if produced {
                used.ends.insert(end, false);
            }
        }
        self.finish_step(ctx, new_edges, result, used)
    }

    /// The descendant / descendant-or-self step, with the closure over schema
    /// edges shared across **all** context ends and computed
    /// level-synchronously on the frontier grids: each grid level is one
    /// bitmask, the forward closure ORs per-symbol child masks into the next
    /// level (64 nodes per word operation), and a backward word-parallel
    /// pass computes which ends actually produced a match (the STEPUH
    /// `used` restriction). Large closures shard their per-level edge
    /// materialization over the worker pool (see [`Self::with_jobs`]).
    /// Results are identical to the per-end closure, cell for cell — the
    /// engine-differential suite pins this against
    /// [`Self::step_descendant_reference`].
    #[doc(hidden)]
    pub fn step_descendant(
        &self,
        ctx: &ChainDag,
        or_self: bool,
        test: &NodeTest,
    ) -> (ChainDag, ChainDag) {
        let mut result = ChainDag::empty();
        let mut used = ChainDag::empty();
        let rows = self.max_depth as usize;
        let width = self.width as usize;
        let stride = self.stride;
        let mut guard = self.scratch.borrow_mut();
        let s = &mut *guard;
        s.visited.reset(rows, width);
        s.reached.reset(rows, width);
        // Seed the visited grid from the context ends (ends on the
        // unknown-label sentinel slot have no schema type and contribute
        // nothing, exactly as in the per-end closure).
        let mut lo = rows;
        let mut top = 0usize;
        for &end in ctx.ends.keys() {
            if self.sym_of(end).is_some() {
                let d = self.depth_of(end) as usize;
                s.visited.set(d, (end % self.width) as usize);
                lo = lo.min(d);
                top = top.max(d);
            }
        }
        if lo == rows {
            drop(guard);
            return self.finish_step(ctx, FxHashSet::default(), result, used);
        }
        // Phase 1, forward: one frontier per level. A level's reached set is
        // the OR of the child masks of every symbol set in the level above;
        // `visited` additionally carries the seeds.
        for d in lo..rows - 1 {
            if d > top {
                break;
            }
            s.slots.clear();
            s.slots.extend(bitset::ones(s.visited.row(d)));
            if s.slots.is_empty() {
                continue;
            }
            s.level_buf.clear();
            s.level_buf.resize(stride, 0);
            for &slot in &s.slots {
                bitset::or_into(&mut s.level_buf, self.child_mask(slot));
            }
            if s.level_buf.iter().any(|&w| w != 0) {
                s.reached.or_into_row(d + 1, &s.level_buf);
                s.visited.or_into_row(d + 1, &s.level_buf);
                top = top.max(d + 1);
            }
        }
        // Nodes on the last level cannot extend further: note the depth cap
        // for each (saturation, see the module docs).
        if top == rows - 1 {
            s.slots.clear();
            s.slots.extend(bitset::ones(s.visited.row(rows - 1)));
            for &slot in &s.slots {
                self.note_depth_cap(Sym(slot as u16));
            }
        }
        // Matched descendants: reached ∧ node-test mask, level by level.
        s.match_mask.clear();
        s.match_mask.resize(stride, 0);
        for i in 0..width - 1 {
            if self.test_matches(Sym(i as u16), test) {
                s.match_mask[i / bitset::WORD_BITS] |= 1u64 << (i % bitset::WORD_BITS);
            }
        }
        for d in lo + 1..=top {
            s.level_buf.clear();
            s.level_buf.extend(
                s.reached
                    .row(d)
                    .iter()
                    .zip(&s.match_mask)
                    .map(|(&a, &b)| a & b),
            );
            for slot in bitset::ones(&s.level_buf) {
                result.ends.insert(d as u32 * self.width + slot, false);
            }
        }
        // Phase 2, backward and word-parallel: `reach[d]` = nodes from which
        // a matched node is reachable in ≥ 0 steps. An end *produced* a
        // result iff one of its children reaches a matched node (≥ 1 step),
        // which is one word-AND emptiness test per end.
        s.reach.reset(rows, width);
        for d in (lo..=top).rev() {
            if d > lo {
                s.level_buf.clear();
                s.level_buf.extend(
                    s.reached
                        .row(d)
                        .iter()
                        .zip(&s.match_mask)
                        .map(|(&a, &b)| a & b),
                );
                s.reach.or_into_row(d, &s.level_buf);
            }
            if d < top {
                s.slots.clear();
                s.slots.extend(bitset::ones(s.visited.row(d)));
                for &slot in &s.slots {
                    if bitset::intersects(self.child_mask(slot), s.reach.row(d + 1)) {
                        s.reach.set(d, slot as usize);
                    }
                }
            }
        }
        for &end in ctx.ends.keys() {
            let Some(end_sym) = self.sym_of(end) else {
                continue;
            };
            let d = self.depth_of(end) as usize;
            let mut produced = d + 1 < rows
                && bitset::intersects(self.child_mask(end % self.width), s.reach.row(d + 1));
            if or_self && self.test_matches(end_sym, test) {
                result.ends.insert(end, false);
                produced = true;
            }
            if produced {
                used.ends.insert(end, false);
            }
        }
        // Materialize the discovered edges from the visited masks, one level
        // at a time. Levels are independent given the masks, so large
        // closures shard the level list over the worker pool; the per-level
        // lists are merged in level order, keeping the edge set identical
        // for every worker count.
        let mut levels: Vec<usize> = Vec::new();
        let mut grid_nodes = 0usize;
        if top >= lo && rows >= 2 {
            for d in lo..=top.min(rows - 2) {
                let n: usize = s
                    .visited
                    .row(d)
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum();
                if n > 0 {
                    levels.push(d);
                    grid_nodes += n;
                }
            }
        }
        let width_u = self.width;
        let child_off = &self.child_off;
        let child_slots = &self.child_slots;
        let vis_words = s.visited.words();
        let edges_of = |d: usize| -> Vec<(NodeIdx, NodeIdx)> {
            let row = &vis_words[d * stride..(d + 1) * stride];
            let mut out = Vec::new();
            for slot in bitset::ones(row) {
                let from = d as u32 * width_u + slot;
                let base = (d as u32 + 1) * width_u;
                let range =
                    child_off[slot as usize] as usize..child_off[slot as usize + 1] as usize;
                for &cslot in &child_slots[range] {
                    out.push((from, base + cslot));
                }
            }
            out
        };
        /// Grid-node count below which sharding the levels costs more than
        /// it saves (thread dispatch vs. a linear scan).
        const PAR_MIN_NODES: usize = 512;
        let lists: Vec<Vec<(NodeIdx, NodeIdx)>> =
            if self.par_workers > 1 && levels.len() >= 2 && grid_nodes >= PAR_MIN_NODES {
                run_indexed(Jobs::Fixed(self.par_workers), levels.len(), |i| {
                    edges_of(levels[i])
                })
            } else {
                levels.iter().map(|&d| edges_of(d)).collect()
            };
        let mut new_edges: FxHashSet<(NodeIdx, NodeIdx)> = FxHashSet::default();
        for list in lists {
            new_edges.extend(list);
        }
        // Release the scratch borrow: `finish_step`'s trimming re-borrows it.
        drop(guard);
        self.finish_step(ctx, new_edges, result, used)
    }

    /// Test-support reference for the descendant step: the naive
    /// depth-first closure over plain hash sets (the pre-bitset
    /// implementation, kept verbatim modulo the scratch workspace). The
    /// engine-differential suite pins the word-parallel sweep against this
    /// bit for bit; it is not used on any production path.
    #[doc(hidden)]
    pub fn step_descendant_reference(
        &self,
        ctx: &ChainDag,
        or_self: bool,
        test: &NodeTest,
    ) -> (ChainDag, ChainDag) {
        let mut new_edges: FxHashSet<(NodeIdx, NodeIdx)> = FxHashSet::default();
        let mut result = ChainDag::empty();
        let mut used = ChainDag::empty();
        // Phase 1: shared forward closure from every end, recording backward
        // adjacency for phase 2 and collecting matched descendants.
        let mut visited: FxHashSet<NodeIdx> = FxHashSet::default();
        let mut back: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        let mut desc_matched: Vec<NodeIdx> = Vec::new();
        let mut stack: Vec<NodeIdx> = Vec::new();
        for &end in ctx.ends.keys() {
            if self.sym_of(end).is_some() && visited.insert(end) {
                stack.push(end);
            }
        }
        while let Some(n) = stack.pop() {
            let Some(sym) = self.sym_of(n) else { continue };
            let d = self.depth_of(n);
            if d + 1 >= self.max_depth {
                self.note_depth_cap(sym);
                continue;
            }
            for &c in self.schema.child_types(sym) {
                let cn = self.node(c, d + 1);
                if new_edges.insert((n, cn)) {
                    back.entry(cn).or_default().push(n);
                }
                if self.test_matches(c, test) && result.ends.insert(cn, false).is_none() {
                    desc_matched.push(cn);
                }
                if visited.insert(cn) {
                    stack.push(cn);
                }
            }
        }
        // Phase 2: `produces` = nodes with a path of length ≥ 1 to a matched
        // node, by backward closure from the matched nodes.
        let mut produces: FxHashSet<NodeIdx> = FxHashSet::default();
        let mut reach_matched: FxHashSet<NodeIdx> = desc_matched.iter().copied().collect();
        stack.clear();
        stack.extend(desc_matched.iter().copied());
        while let Some(n) = stack.pop() {
            for &p in back.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                produces.insert(p);
                if reach_matched.insert(p) {
                    stack.push(p);
                }
            }
        }
        for &end in ctx.ends.keys() {
            let Some(end_sym) = self.sym_of(end) else {
                continue;
            };
            let mut produced = produces.contains(&end);
            if or_self && self.test_matches(end_sym, test) {
                result.ends.insert(end, false);
                produced = true;
            }
            if produced {
                used.ends.insert(end, false);
            }
        }
        self.finish_step(ctx, new_edges, result, used)
    }

    /// Shared tail of every step: provenance trimming. Keeps only the context
    /// edges on paths to the *contributing* ends, adds the edges created by
    /// the step, and trims the result to the paths reaching its own ends.
    fn finish_step(
        &self,
        ctx: &ChainDag,
        new_edges: FxHashSet<(NodeIdx, NodeIdx)>,
        mut result: ChainDag,
        mut used: ChainDag,
    ) -> (ChainDag, ChainDag) {
        let contributing: FxHashSet<NodeIdx> = used.ends.keys().copied().collect();
        let base_edges = self.trim_to(&ctx.edges, &contributing);
        used.edges = base_edges.clone();
        let mut all_edges = base_edges;
        all_edges.extend(new_edges);
        let result_ends: FxHashSet<NodeIdx> = result.ends.keys().copied().collect();
        result.edges = self.trim_to(&all_edges, &result_ends);
        (result, used)
    }

    // ------------------------------------------------------ Table 1 (DAG)

    /// The initial environment binding every free variable to the root chain.
    pub fn root_gamma(&self, vars: impl IntoIterator<Item = String>) -> DagGamma {
        let mut g = DagGamma::default();
        for v in vars {
            g.insert(v, self.root_dag());
        }
        g
    }

    /// Infers the chain triple for a query in CDAG form.
    pub fn infer_query(&self, gamma: &DagGamma, q: &Query) -> DagQueryChains {
        if self.ladder_memo.borrow().is_none() {
            return self.infer_query_inner(gamma, q);
        }
        // Ladder mode: completed sub-inferences are bound-independent, so a
        // rebuild at a larger bound serves them from the cross-build memo
        // and only re-infers the saturated frontier of the expression.
        let key = (format!("{q:?}"), gamma_fingerprint(gamma));
        let hit = self
            .ladder_memo
            .borrow_mut()
            .as_mut()
            .and_then(|m| m.query_hit(&key));
        if let Some(hit) = hit {
            return hit;
        }
        let outer = self.saturated.replace(false);
        let result = self.infer_query_inner(gamma, q);
        let sub_saturated = self.saturated.get();
        if !sub_saturated {
            if let Some(m) = self.ladder_memo.borrow_mut().as_mut() {
                m.queries.insert(key, result.clone());
            }
        }
        self.saturated.set(outer || sub_saturated);
        result
    }

    fn infer_query_inner(&self, gamma: &DagGamma, q: &Query) -> DagQueryChains {
        match q {
            Query::Empty => DagQueryChains::default(),
            Query::StringLit(_) => DagQueryChains {
                elements: vec![ChainItem::plain(Chain::single(TEXT_SYM))],
                ..Default::default()
            },
            Query::Concat(a, b) => self.infer_query(gamma, a).union(self.infer_query(gamma, b)),
            Query::If { cond, then, els } => {
                let q0 = self.infer_query(gamma, cond);
                let q1 = self.infer_query(gamma, then);
                let q2 = self.infer_query(gamma, els);
                let mut out = q1.union(q2);
                out.used = out.used.union(&q0.used).union(&q0.returns);
                out
            }
            Query::Let { var, source, ret } => {
                let q1 = self.infer_query(gamma, source);
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns.clone());
                let q2 = self.infer_query(&inner, ret);
                DagQueryChains {
                    returns: q2.returns,
                    used: q1.used.union(&q1.returns).union(&q2.used),
                    elements: q2.elements,
                }
            }
            Query::For { var, source, ret } => {
                let q1 = self.infer_query(gamma, source);
                // Exact fast path: when the body is a single step on the
                // loop variable (every desugared path query), the step's
                // produced-ends restriction *is* the FOR chain filter — the
                // iteration chains that become used are exactly the context
                // ends the step produced results from, for upward and
                // downward axes alike. This avoids the node-sharing
                // over-approximation of the general case below, keeping the
                // CDAG verdicts aligned with the explicit engine on plain
                // navigation.
                if let Query::Step {
                    var: step_var,
                    axis,
                    test,
                } = &**ret
                {
                    if step_var == var {
                        let (returns, step_used) = self.step(&q1.returns, *axis, test);
                        return DagQueryChains {
                            returns,
                            used: q1.used.clone().union(&step_used),
                            elements: Vec::new(),
                        };
                    }
                }
                // General case: the loop variable is bound to the whole
                // return set at once (a sound approximation of the per-chain
                // iteration of the explicit rule; see the module
                // documentation).
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns.clone());
                let q2 = self.infer_query(&inner, ret);
                let mut used = q1.used.clone().union(&q2.used);
                if !q2.returns.is_empty() || !q2.elements.is_empty() {
                    // Chain filtering (rule FOR): only the iteration chains
                    // the body actually navigated from become used chains. We
                    // approximate "navigated from" by the source ends that
                    // appear in the body's inferred DAGs; when the body never
                    // exposes them (e.g. it only walks upward), fall back to
                    // the whole source return set, which is sound.
                    used = used.union(&self.contributing_sources(&q1.returns, &q2));
                }
                DagQueryChains {
                    returns: q2.returns,
                    used,
                    elements: q2.elements,
                }
            }
            Query::Step { var, axis, test } => {
                let Some(ctx) = gamma.get(var) else {
                    return DagQueryChains::default();
                };
                let (returns, used) = self.step(ctx, *axis, test);
                DagQueryChains {
                    returns,
                    used: if axis.is_stepf_axis() {
                        ChainDag::empty()
                    } else {
                        used
                    },
                    elements: Vec::new(),
                }
            }
            Query::Element { tag, content } => {
                let q = self.infer_query(gamma, content);
                let mut used = q.used.clone();
                used = used.union(&q.returns.clone().extend_all_ends());
                let mut elements = Vec::new();
                if !self.element_chains {
                    elements.push(ChainItem::extended(Chain::empty()));
                    return DagQueryChains {
                        returns: ChainDag::empty(),
                        used,
                        elements,
                    };
                }
                for &t in &label_syms(self.schema, tag) {
                    let prefix = Chain::single(t);
                    for s in self.end_symbols(&q.returns) {
                        elements.push(ChainItem::extended(prefix.push(s)));
                    }
                    for e in &q.elements {
                        elements.push(ChainItem {
                            chain: prefix.concat(&e.chain),
                            extensible: e.extensible,
                        });
                    }
                    // The constructed element is itself a node of the forest,
                    // whatever its content — record its own chain so an
                    // inserted `<a>…</a>` conflicts with chains ending at `a`
                    // (see the explicit engine's Element rule for the full
                    // soundness argument).
                    elements.push(ChainItem::plain(prefix));
                }
                DagQueryChains {
                    returns: ChainDag::empty(),
                    used,
                    elements,
                }
            }
        }
    }

    /// Restricts a source return DAG to the ends that the body's inferred
    /// chains pass through (the FOR-rule chain filter, approximated on DAGs).
    fn contributing_sources(&self, source: &ChainDag, body: &DagQueryChains) -> ChainDag {
        let mut body_nodes: FxHashSet<NodeIdx> = FxHashSet::default();
        for dag in [&body.returns, &body.used] {
            for &(f, t) in &dag.edges {
                body_nodes.insert(f);
                body_nodes.insert(t);
            }
            body_nodes.extend(dag.ends.keys().copied());
        }
        let live: FxHashMap<NodeIdx, bool> = source
            .ends
            .iter()
            .filter(|(n, _)| body_nodes.contains(n))
            .map(|(&n, &e)| (n, e))
            .collect();
        if live.is_empty() {
            // The body produced something but through paths that do not
            // expose the source ends (upward-only navigation): keep them all.
            return source.clone();
        }
        self.trim(&ChainDag {
            edges: source.edges.clone(),
            ends: live,
        })
    }

    /// The distinct symbols at the end nodes of a DAG.
    pub fn end_symbols(&self, dag: &ChainDag) -> Vec<Sym> {
        let mut out: Vec<Sym> = dag.ends.keys().filter_map(|&n| self.sym_of(n)).collect();
        out.sort();
        out.dedup();
        out
    }

    // ------------------------------------------------------ Table 2 (DAG)

    /// Update chains in CDAG form: the full chains `c.c'` of every inferred
    /// `c:c'`, with extensible ends where the suffix stands for an entire
    /// inserted subtree.
    pub fn infer_update(&self, gamma: &DagGamma, u: &Update) -> ChainDag {
        if self.ladder_memo.borrow().is_none() {
            return self.infer_update_inner(gamma, u);
        }
        // See `infer_query`: ladder mode memoizes completed sub-inferences
        // across rebuilds at increasing bounds.
        let key = (format!("{u:?}"), gamma_fingerprint(gamma));
        let hit = self
            .ladder_memo
            .borrow_mut()
            .as_mut()
            .and_then(|m| m.update_hit(&key));
        if let Some(hit) = hit {
            return hit;
        }
        let outer = self.saturated.replace(false);
        let result = self.infer_update_inner(gamma, u);
        let sub_saturated = self.saturated.get();
        if !sub_saturated {
            if let Some(m) = self.ladder_memo.borrow_mut().as_mut() {
                m.updates.insert(key, result.clone());
            }
        }
        self.saturated.set(outer || sub_saturated);
        result
    }

    fn infer_update_inner(&self, gamma: &DagGamma, u: &Update) -> ChainDag {
        match u {
            Update::Empty => ChainDag::empty(),
            Update::Concat(a, b) => self
                .infer_update(gamma, a)
                .union(&self.infer_update(gamma, b)),
            Update::If { cond: _, then, els } => self
                .infer_update(gamma, then)
                .union(&self.infer_update(gamma, els)),
            Update::Let { var, source, body } | Update::For { var, source, body } => {
                let q1 = self.infer_query(gamma, source);
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns);
                self.infer_update(&inner, body)
            }
            Update::Delete { target } => {
                // Full chains of {c:α | c.α ∈ r0} are exactly the chains of r0.
                self.infer_query(gamma, target).returns
            }
            Update::Rename { target, new_tag } => {
                let r0 = self.infer_query(gamma, target).returns;
                let mut out = r0.clone();
                // c:b for every new-label type b: add a sibling end next to
                // each target end (same parent, same depth, type b).
                let mut preds: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
                for &(f, t) in &r0.edges {
                    preds.entry(t).or_default().push(f);
                }
                for &b in &label_syms(self.schema, new_tag) {
                    for &end in r0.ends.keys() {
                        let depth = self.depth_of(end);
                        let bn = self.node(b, depth);
                        match preds.get(&end) {
                            Some(ps) => {
                                for &p in ps {
                                    out.edges.insert((p, bn));
                                }
                                out.ends.insert(bn, false);
                            }
                            None => {
                                // The target is the root itself: renaming the
                                // root changes the chain at depth 0.
                                out.ends.insert(bn, false);
                            }
                        }
                    }
                }
                out
            }
            Update::Insert {
                source,
                pos,
                target,
            } => {
                let src = self.infer_query(gamma, source);
                let r0 = self.infer_query(gamma, target).returns;
                let bases = match pos {
                    UpdatePos::Into | UpdatePos::IntoAsFirst | UpdatePos::IntoAsLast => r0,
                    UpdatePos::Before | UpdatePos::After => self.parents_of(&r0),
                };
                self.insertion_dag(&bases, &src)
            }
            Update::Replace { target, source } => {
                let src = self.infer_query(gamma, source);
                let r0 = self.infer_query(gamma, target).returns;
                let bases = self.parents_of(&r0);
                // {c:α | c.α ∈ r0} are the chains of r0 themselves.
                r0.union(&self.insertion_dag(&bases, &src))
            }
        }
    }

    /// The insertion-base chains of an update: for every INSERT/REPLACE
    /// component, the chains of the nodes that *receive* newly constructed
    /// content (the `c` of each inferred `c:c'`). DELETE and RENAME contribute
    /// nothing — their full chains already prefix-cover everything they can
    /// affect, so `dag_conflicts(infer_update(..), returns)` is enough to
    /// detect membership changes. For insertions it is not: the full chains
    /// `c.c'` can be strictly deeper than a return chain `r` even when
    /// `c ⪯ r`, i.e. when the inserted content materializes *new* nodes
    /// matching `r`. Delta classification uses this DAG to detect that case
    /// (`dag_conflicts(bases, returns)`) and fall back to re-evaluation.
    pub fn infer_update_bases(&self, gamma: &DagGamma, u: &Update) -> ChainDag {
        match u {
            Update::Empty | Update::Delete { .. } | Update::Rename { .. } => ChainDag::empty(),
            Update::Concat(a, b) => self
                .infer_update_bases(gamma, a)
                .union(&self.infer_update_bases(gamma, b)),
            Update::If { cond: _, then, els } => self
                .infer_update_bases(gamma, then)
                .union(&self.infer_update_bases(gamma, els)),
            Update::Let { var, source, body } | Update::For { var, source, body } => {
                let q1 = self.infer_query(gamma, source);
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns);
                self.infer_update_bases(&inner, body)
            }
            Update::Insert { pos, target, .. } => {
                let r0 = self.infer_query(gamma, target).returns;
                match pos {
                    UpdatePos::Into | UpdatePos::IntoAsFirst | UpdatePos::IntoAsLast => r0,
                    UpdatePos::Before | UpdatePos::After => self.parents_of(&r0),
                }
            }
            Update::Replace { target, .. } => {
                let r0 = self.infer_query(gamma, target).returns;
                self.parents_of(&r0)
            }
        }
    }

    /// The set of parent chains of every chain in `dag` (within the DAG).
    fn parents_of(&self, dag: &ChainDag) -> ChainDag {
        let mut preds: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        for &(f, t) in &dag.edges {
            preds.entry(t).or_default().push(f);
        }
        let mut out = ChainDag {
            edges: dag.edges.clone(),
            ends: FxHashMap::default(),
        };
        for &end in dag.ends.keys() {
            for &p in preds.get(&end).map(|v| v.as_slice()).unwrap_or(&[]) {
                out.ends.insert(p, false);
            }
        }
        out
    }

    /// Attaches the source's element chains and return-root types below every
    /// base chain (the insertion components of INSERT-1/2 and REPLACE).
    fn insertion_dag(&self, bases: &ChainDag, src: &DagQueryChains) -> ChainDag {
        let mut out = ChainDag {
            edges: bases.edges.clone(),
            ends: FxHashMap::default(),
        };
        // Suffixes to attach: element chains (with their extensibility) plus
        // one extensible single-symbol suffix per source return type.
        let mut suffixes: Vec<ChainItem> = src.elements.clone();
        for s in self.end_symbols(&src.returns) {
            suffixes.push(ChainItem::extended(Chain::single(s)));
        }
        for &base in bases.ends.keys() {
            for suf in &suffixes {
                if suf.chain.is_empty() {
                    // Degenerate suffix (element-chain ablation): the change
                    // happens somewhere below the base.
                    out.ends.insert(base, true);
                    continue;
                }
                let mut cur = base;
                let mut truncated = false;
                for (depth, &s) in (self.depth_of(base)..).zip(suf.chain.symbols()) {
                    if depth + 1 >= self.max_depth {
                        truncated = true;
                        self.saturated.set(true);
                        break;
                    }
                    let next = self.node(s, depth + 1);
                    out.edges.insert((cur, next));
                    cur = next;
                }
                let ext = suf.extensible || truncated;
                let e = out.ends.entry(cur).or_insert(false);
                *e = *e || ext;
            }
        }
        out
    }

    // ------------------------------------------------------ conflicts

    /// Plain prefix conflict between two DAG-denoted sets: does some chain of
    /// `a` (base chains only) prefix some chain of `b` (base chains only)?
    fn prefix_conflict_base(&self, a: &ChainDag, b: &ChainDag) -> bool {
        if a.is_empty() || b.is_empty() {
            return false;
        }
        let mut s = self.scratch.borrow_mut();
        let s = &mut *s;
        // Nodes from which an end of b is reachable via b's edges, as a
        // dense bitset (`s.mark`).
        s.mark.clear();
        for &(f, t) in &b.edges {
            s.adj_push(t, f);
        }
        s.stack.clear();
        for &e in b.ends.keys() {
            if s.mark.insert(e) {
                s.stack.push(e);
            }
        }
        while let Some(n) = s.stack.pop() {
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let p = s.adj[i][j];
                if s.mark.insert(p) {
                    s.stack.push(p);
                }
            }
        }
        s.adj_clear();
        // Early exit: if no end of a can still reach an end of b, no walk
        // over the common edges can succeed — skip building the adjacency.
        if !a.ends.keys().any(|&e| s.mark.contains(e)) {
            return false;
        }
        // Walk from the root along edges common to a and b; if we hit an end
        // of a from which b can still reach an end, the prefix relation holds.
        let (small, other) = if a.edges.len() <= b.edges.len() {
            (&a.edges, &b.edges)
        } else {
            (&b.edges, &a.edges)
        };
        for &(f, t) in small {
            if other.contains(&(f, t)) {
                s.adj_push(f, t);
            }
        }
        let root = self.root_node();
        s.mark2.clear();
        s.mark2.insert(root);
        s.stack.clear();
        s.stack.push(root);
        let mut found = false;
        while let Some(n) = s.stack.pop() {
            if a.ends.contains_key(&n) && s.mark.contains(n) {
                found = true;
                break;
            }
            let i = n as usize;
            for j in 0..s.adj.get(i).map(Vec::len).unwrap_or(0) {
                let m = s.adj[i][j];
                if s.mark2.insert(m) {
                    s.stack.push(m);
                }
            }
        }
        s.adj_clear();
        found
    }

    /// Full conflict check `∃ x ∈ set(a), y ∈ set(b): x ⪯ y`, taking the
    /// extensible ends of `b` into account (extensions of `a` never help).
    pub fn dag_conflicts(&self, a: &ChainDag, b: &ChainDag) -> bool {
        if self.prefix_conflict_base(a, b) {
            return true;
        }
        let b_ext = b.extensible_ends_only();
        if b_ext.is_empty() {
            return false;
        }
        self.prefix_conflict_base(&b_ext, a)
    }

    /// Checks C-independence on CDAG chain sets: returns `true` when the pair
    /// is (chain-)independent.
    pub fn independent(&self, q: &DagQueryChains, u: &ChainDag) -> bool {
        // confl(r, U), confl(U, r), confl(U, v)
        !self.dag_conflicts(&q.returns, u)
            && !self.dag_conflicts(u, &q.returns)
            && !self.dag_conflicts(u, &q.used)
    }

    // ------------------------------------------------------ witnesses

    /// Shortest path from `start` to the first node satisfying `good`,
    /// walking `edges` breadth-first with ascending-index tie-breaking, so
    /// the result is deterministic for any hash-set iteration order.
    ///
    /// This is the cold witness path, not the verdict path: it allocates its
    /// own adjacency instead of borrowing the engine scratch.
    fn first_path(
        &self,
        edges: &FxHashSet<(NodeIdx, NodeIdx)>,
        start: NodeIdx,
        good: impl Fn(NodeIdx) -> bool,
    ) -> Option<Vec<NodeIdx>> {
        if good(start) {
            return Some(vec![start]);
        }
        let mut adj: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        for &(f, t) in edges {
            adj.entry(f).or_default().push(t);
        }
        for v in adj.values_mut() {
            v.sort_unstable();
        }
        let mut parent: FxHashMap<NodeIdx, NodeIdx> = FxHashMap::default();
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(n) = queue.pop_front() {
            for &m in adj.get(&n).map(Vec::as_slice).unwrap_or_default() {
                if m == start || parent.contains_key(&m) {
                    continue;
                }
                parent.insert(m, n);
                if good(m) {
                    let mut path = vec![m];
                    let mut cur = m;
                    while let Some(&p) = parent.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(m);
            }
        }
        None
    }

    /// The chain spelled by a node path; `None` if the path runs through the
    /// unknown-label sentinel slot (such chains have no symbol spelling).
    fn chain_of_path(&self, path: &[NodeIdx]) -> Option<Chain> {
        let syms: Option<Vec<Sym>> = path.iter().map(|&n| self.sym_of(n)).collect();
        Some(Chain(syms?))
    }

    /// A concrete pair for `prefix_conflict_base(a, b)`: the first (in BFS
    /// order) chain `x ∈ set(a)` that is a prefix of a chain `y ∈ set(b)`,
    /// returned as `(x, y)` with `y` carrying its end's extensibility.
    fn base_witness(&self, a: &ChainDag, b: &ChainDag) -> Option<(ChainItem, ChainItem)> {
        if a.is_empty() || b.is_empty() {
            return None;
        }
        // Nodes from which an end of b is reachable via b's edges.
        let mut back: FxHashSet<NodeIdx> = b.ends.keys().copied().collect();
        let mut radj: FxHashMap<NodeIdx, Vec<NodeIdx>> = FxHashMap::default();
        for &(f, t) in &b.edges {
            radj.entry(t).or_default().push(f);
        }
        let mut stack: Vec<NodeIdx> = back.iter().copied().collect();
        while let Some(n) = stack.pop() {
            for &p in radj.get(&n).map(Vec::as_slice).unwrap_or_default() {
                if back.insert(p) {
                    stack.push(p);
                }
            }
        }
        // x: root-to-(end of a) walk over the edges common to a and b,
        // stopping where b can still reach one of its ends.
        let common: FxHashSet<(NodeIdx, NodeIdx)> = a
            .edges
            .iter()
            .filter(|e| b.edges.contains(e))
            .copied()
            .collect();
        let head = self.first_path(&common, self.root_node(), |n| {
            a.ends.contains_key(&n) && back.contains(&n)
        })?;
        // y: continue from x's endpoint along b's edges to an end of b (the
        // backward pass guarantees one is reachable).
        let tail = self.first_path(&b.edges, *head.last().unwrap(), |m| b.ends.contains_key(&m))?;
        let x = self.chain_of_path(&head)?;
        let mut full = head;
        full.extend_from_slice(&tail[1..]);
        let y = self.chain_of_path(&full)?;
        let item = if b.ends[tail.last().unwrap()] {
            ChainItem::extended(y)
        } else {
            ChainItem::plain(y)
        };
        Some((ChainItem::plain(x), item))
    }

    /// A concrete pair for `dag_conflicts(a, b)`: chains `x ∈ set(a)` and
    /// `y ∈ set(b)` with `x ⪯ y`. When only an extensible end of `b` makes
    /// the conflict (a `b` base chain prefixes `x`, and its extensions cover
    /// `x`), `y` is returned as the extensible base item — the same shape
    /// the explicit engine's witnesses use.
    fn directed_witness(&self, a: &ChainDag, b: &ChainDag) -> Option<(ChainItem, ChainItem)> {
        // Probe each direction with the bitset conflict check (scratch
        // reuse, no allocation) and only run the allocating extraction on a
        // direction known to fire — a failed probe is ~an order of magnitude
        // cheaper than a failed extraction, and most directions fail.
        if self.prefix_conflict_base(a, b) {
            if let Some(pair) = self.base_witness(a, b) {
                return Some(pair);
            }
        }
        let b_ext = b.extensible_ends_only();
        if b_ext.is_empty() || !self.prefix_conflict_base(&b_ext, a) {
            return None;
        }
        let (y_base, x) = self.base_witness(&b_ext, a)?;
        Some((ChainItem::plain(x.chain), ChainItem::extended(y_base.chain)))
    }

    /// Synthesizes a concrete dependence witness from CDAG chain sets,
    /// checking the three directed conflicts in the order of the explicit
    /// engine's `find_conflict`. Returns `None` when the pair is independent
    /// — and, conservatively, when the only witness paths run through the
    /// unknown-label sentinel slot (those chains have no symbol spelling).
    ///
    /// The extraction is deterministic (BFS with sorted adjacency), so the
    /// witness a dependent CDAG verdict carries is bit-identical across
    /// worker counts and sessions.
    pub fn find_dag_conflict(&self, q: &DagQueryChains, u: &ChainDag) -> Option<ConflictWitness> {
        if let Some((x, y)) = self.directed_witness(&q.returns, u) {
            return Some(ConflictWitness {
                kind: ConflictKind::ReturnBelowUpdate,
                query_chain: x,
                update_chain: y,
            });
        }
        if let Some((x, y)) = self.directed_witness(u, &q.returns) {
            return Some(ConflictWitness {
                kind: ConflictKind::UpdateAboveReturn,
                query_chain: y,
                update_chain: x,
            });
        }
        if let Some((x, y)) = self.directed_witness(u, &q.used) {
            return Some(ConflictWitness {
                kind: ConflictKind::UpdateAboveUsed,
                query_chain: y,
                update_chain: x,
            });
        }
        None
    }

    /// Converts explicitly represented chain sets into DAG form — used by the
    /// cross-checking tests to compare the two engines on identical inputs.
    pub fn explicit_to_dag(&self, q: &QueryChains) -> DagQueryChains {
        let mut returns = ChainDag::empty();
        for c in &q.returns {
            returns = returns.union(&self.dag_of_chain(c));
        }
        let mut used = ChainDag::empty();
        for item in &q.used {
            let mut d = self.dag_of_chain(&item.chain);
            if item.extensible {
                d = d.extend_all_ends();
            }
            used = used.union(&d);
        }
        DagQueryChains {
            returns,
            used,
            elements: q.elements.iter().cloned().collect(),
        }
    }

    /// Converts explicit update chains into DAG form (full chains).
    pub fn explicit_update_to_dag(&self, u: &UpdateChains) -> ChainDag {
        let mut out = ChainDag::empty();
        for uc in &u.chains {
            let full = uc.full();
            let mut d = self.dag_of_chain(&full.chain);
            if full.extensible {
                d = d.extend_all_ends();
            }
            out = out.union(&d);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Incremental k-ladders
// ---------------------------------------------------------------------------

/// Shared bookkeeping of the two ladders: the bound the cached result was
/// built at, whether it is exact for every larger bound, and reuse counters
/// for the perf harness.
#[derive(Clone, Copy, Debug)]
struct LadderState {
    /// The bound of the last fresh build (never moved by cache hits, so a
    /// complete ladder keeps serving *any* bound ≥ the build bound, even
    /// after serving a larger one).
    k: usize,
    complete: bool,
    reused: usize,
    rebuilt: usize,
}

impl LadderState {
    /// Decides whether a request for bound `k` can be served from the cache;
    /// updates the counters accordingly.
    fn serve(&mut self, k: usize) -> bool {
        if k == self.k || (self.complete && k >= self.k) {
            self.reused += 1;
            true
        } else {
            self.rebuilt += 1;
            false
        }
    }
}

/// Generates a ladder type: the query and update ladders are identical
/// except for the expression type, the result type, and which inference the
/// engine runs — everything else (cache policy, counters, accessors) is
/// shared here and in [`LadderState`] so the two can never diverge.
macro_rules! define_k_ladder {
    (
        $(#[$doc:meta])*
        $name:ident, $expr_ty:ty, $result_ty:ty, $empty:expr, $infer:ident
    ) => {
        $(#[$doc])*
        pub struct $name<'a, S: SchemaLike> {
            schema: &'a S,
            element_chains: bool,
            state: LadderState,
            result: $result_ty,
            memo: LadderMemo,
        }

        impl<'a, S: SchemaLike> $name<'a, S> {
            /// Builds the ladder with a fresh inference at bound `k`.
            pub fn new(schema: &'a S, expr: &$expr_ty, k: usize, element_chains: bool) -> Self {
                let mut ladder = $name {
                    schema,
                    element_chains,
                    state: LadderState {
                        k,
                        complete: false,
                        reused: 0,
                        rebuilt: 0,
                    },
                    result: $empty,
                    memo: LadderMemo::default(),
                };
                ladder.rebuild(expr, k);
                ladder.state.rebuilt = 0; // the initial build is not a re-build
                ladder
            }

            /// A rebuild is a *continuation*, not a from-scratch inference:
            /// the cross-build memo serves every sub-expression whose
            /// previous walk never saturated, so only the saturated frontier
            /// re-infers at the new bound (≡ fresh builds by the
            /// `ladder_extension_equals_fresh_builds` differential property).
            fn rebuild(&mut self, expr: &$expr_ty, k: usize) {
                let eng = CdagEngine::new(self.schema, k)
                    .with_element_chains(self.element_chains)
                    .with_ladder_memo(std::mem::take(&mut self.memo));
                self.result = eng.$infer(&eng.root_gamma(expr.free_vars()), expr);
                self.state.complete = !eng.take_saturated();
                self.state.k = k;
                self.memo = eng.take_ladder_memo();
            }

            /// Returns the chains of the expression at bound `k`, reusing the
            /// cached result when it is known to be exact for `k`.
            pub fn extend_to(&mut self, expr: &$expr_ty, k: usize) -> &$result_ty {
                if !self.state.serve(k) {
                    self.rebuild(expr, k);
                }
                &self.result
            }

            /// The cached result (at bound [`Self::k`]).
            pub fn result(&self) -> &$result_ty {
                &self.result
            }

            /// Builds a ladder at the first of `bounds` and walks the rest in
            /// ascending order, returning the chains at every bound — bounds
            /// served from the cache share one `Arc` — plus the number of
            /// inferences actually run. This is the session prepass's walk
            /// (and the one the `cdag` perf harness measures), kept here so
            /// the query and update sides can never drift.
            pub fn walk_bounds(
                schema: &'a S,
                expr: &$expr_ty,
                bounds: &[usize],
                element_chains: bool,
            ) -> (Vec<(usize, std::sync::Arc<$result_ty>)>, usize) {
                let (steps, inferences) =
                    Self::walk_bounds_complete(schema, expr, bounds, element_chains);
                (steps.into_iter().map(|(k, r, _)| (k, r)).collect(), inferences)
            }

            /// [`Self::walk_bounds`], additionally reporting for every bound
            /// the build bound its result is exact *from* (`Some(k0)` when
            /// the `k0` inference never saturated, so the result serves any
            /// bound ≥ `k0`; `None` when it saturated) — the information a
            /// cross-call cache needs to keep serving later requests.
            pub fn walk_bounds_complete(
                schema: &'a S,
                expr: &$expr_ty,
                bounds: &[usize],
                element_chains: bool,
            ) -> (
                Vec<(usize, std::sync::Arc<$result_ty>, Option<usize>)>,
                usize,
            ) {
                let Some((&first, rest)) = bounds.split_first() else {
                    return (Vec::new(), 0);
                };
                let mut ladder = Self::new(schema, expr, first, element_chains);
                let mut arc = std::sync::Arc::new(ladder.result().clone());
                let mut out = Vec::with_capacity(bounds.len());
                let complete_from =
                    |ladder: &Self| ladder.is_complete().then(|| ladder.k());
                out.push((first, std::sync::Arc::clone(&arc), complete_from(&ladder)));
                let mut rebuilds = 0usize;
                for &k in rest {
                    ladder.extend_to(expr, k);
                    if ladder.rebuild_count() != rebuilds {
                        rebuilds = ladder.rebuild_count();
                        arc = std::sync::Arc::new(ladder.result().clone());
                    }
                    out.push((k, std::sync::Arc::clone(&arc), complete_from(&ladder)));
                }
                (out, 1 + ladder.rebuild_count())
            }

            /// The bound the cached result was last built at (the result is
            /// additionally exact for every larger bound when
            /// [`Self::is_complete`]).
            pub fn k(&self) -> usize {
                self.state.k
            }

            /// Whether the cached result is exact for every bound ≥ [`Self::k`].
            pub fn is_complete(&self) -> bool {
                self.state.complete
            }

            /// How many `extend_to` calls were served from the cache.
            pub fn reuse_count(&self) -> usize {
                self.state.reused
            }

            /// How many `extend_to` calls could not be served whole from the
            /// cache (each one re-ran the saturated frontier of the
            /// expression at the new bound).
            pub fn rebuild_count(&self) -> usize {
                self.state.rebuilt
            }

            /// How many sub-inferences rebuilds served from the cross-build
            /// memo instead of re-running (0 while no rebuild happened).
            pub fn memo_hit_count(&self) -> usize {
                self.memo.hit_count()
            }
        }
    };
}

define_k_ladder!(
    /// Incremental CDAG inference for one query across increasing
    /// multiplicity bounds.
    ///
    /// A ladder built at bound `k` serves any bound `k' ≥ k` from the cached
    /// result whenever the `k` inference never hit its depth cap (the common
    /// case for non-recursive navigation): the DAG node encoding is
    /// independent of `k`, so the cached DAG *is* the fresh-`k'` DAG. When
    /// the inference did saturate, extension *continues* at the new bound:
    /// the cross-build [`LadderMemo`] serves every sub-expression whose walk
    /// stayed under the cap, and only the saturated frontier re-infers — the
    /// result is always exactly [`CdagEngine::infer_query`] at the requested
    /// bound (property-tested by `tests/engine_differential.rs`).
    QueryKLadder,
    Query,
    DagQueryChains,
    DagQueryChains::default(),
    infer_query
);

define_k_ladder!(
    /// Incremental CDAG inference for one update across increasing
    /// multiplicity bounds — see [`QueryKLadder`].
    UpdateKLadder,
    Update,
    ChainDag,
    ChainDag::empty(),
    infer_update
);

#[cfg(test)]
mod tests {
    use super::*;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn figure1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    fn show(d: &Dtd, eng: &CdagEngine<'_, Dtd>, dag: &ChainDag) -> Vec<String> {
        let mut v: Vec<String> = eng
            .enumerate(dag, 10_000)
            .unwrap()
            .iter()
            .map(|c| d.show_chain(c))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn q1_and_u1_are_independent_on_figure1() {
        let d = figure1();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert_eq!(show(&d, &eng, &qc.returns), vec!["doc.a.c"]);
        assert_eq!(show(&d, &eng, &uc), vec!["doc.b.c"]);
        assert!(eng.independent(&qc, &uc));
    }

    #[test]
    fn overlapping_pair_is_flagged() {
        let d = figure1();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert!(!eng.independent(&qc, &uc));
    }

    #[test]
    fn update_above_return_is_flagged() {
        // query //a//c, update delete //a: deleting a removes returned c.
        let d = figure1();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //a").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert!(!eng.independent(&qc, &uc));
    }

    #[test]
    fn recursive_schema_stays_polynomial() {
        // The 3-clique schema that blows up the explicit engine stays small
        // as a CDAG.
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let eng = CdagEngine::new(&d, 8);
        let q = parse_query("//b//c//b").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        // Width is bounded by (#types + 2) per level and depth by k·|d|.
        assert!(qc.returns.edge_count() < 10_000);
        assert!(!qc.returns.is_empty());
    }

    #[test]
    fn dag_of_chain_roundtrips() {
        let d = figure1();
        let eng = CdagEngine::new(&d, 2);
        let c = d.chain_of_names(&["doc", "a", "c"]).unwrap();
        let dag = eng.dag_of_chain(&c);
        assert_eq!(show(&d, &eng, &dag), vec!["doc.a.c"]);
    }

    #[test]
    fn element_chains_give_bibliography_independence() {
        let d = Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*) ; title -> #PCDATA ; author -> EMPTY",
            "bib",
        )
        .unwrap();
        let eng = CdagEngine::new(&d, 3);
        let q = parse_query("//title").unwrap();
        let u = parse_update("for $x in //book return insert <author/> into $x").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let uc = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
        assert!(eng.independent(&qc, &uc));

        // Without element chains the analysis must conservatively flag it.
        let eng_ablate = CdagEngine::new(&d, 3).with_element_chains(false);
        let qc = eng_ablate.infer_query(&eng_ablate.root_gamma(q.free_vars()), &q);
        let uc = eng_ablate.infer_update(&eng_ablate.root_gamma(u.free_vars()), &u);
        assert!(!eng_ablate.independent(&qc, &uc));
    }

    #[test]
    fn upward_axis_follows_only_dag_edges() {
        // Figure 2 discussion: ancestors are computed within the inferred
        // DAG, not over the whole schema.
        let d = Dtd::parse_compact(
            "a -> (b|d)* ; b -> c ; d -> c ; c -> (e?, f?) ; e -> EMPTY ; f -> EMPTY",
            "a",
        )
        .unwrap();
        let eng = CdagEngine::new(&d, 2);
        // /a? The root is a; query /d/c/f/ancestor::node() should only see
        // a, d, c — never b.
        let q = parse_query("/d/c/f/ancestor::node()").unwrap();
        let qc = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        let shown = show(&d, &eng, &qc.returns);
        assert!(shown.contains(&"a.d".to_string()));
        assert!(shown.iter().all(|c| !c.contains(".b")), "{shown:?}");
    }

    #[test]
    fn saturation_is_reported_on_recursive_descendants_only() {
        let rec = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let eng = CdagEngine::new(&rec, 1);
        let q = parse_query("//b").unwrap();
        let _ = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        assert!(eng.take_saturated(), "recursive closure must hit the cap");
        assert!(!eng.take_saturated(), "the flag is cleared by take");

        let flat = figure1();
        let eng = CdagEngine::new(&flat, 2);
        let q = parse_query("//a//c").unwrap();
        let _ = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        assert!(
            !eng.take_saturated(),
            "a non-recursive schema never reaches the cap"
        );
    }

    #[test]
    fn query_ladder_matches_fresh_builds() {
        for src in ["//a//c", "/a/c", "//node()", "//b/parent::doc"] {
            let d = figure1();
            let q = parse_query(src).unwrap();
            let mut ladder = QueryKLadder::new(&d, &q, 1, true);
            for k in 2..=4 {
                let stepped = ladder.extend_to(&q, k).clone();
                let eng = CdagEngine::new(&d, k);
                let fresh = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
                assert_eq!(stepped, fresh, "{src} at k = {k}");
            }
            assert!(ladder.is_complete(), "{src} is non-recursive");
            assert_eq!(ladder.rebuild_count(), 0, "{src} never rebuilds");
            // A complete ladder keeps serving bounds *below* ones it already
            // served (but at or above the build bound) from the cache.
            let rebuilds = ladder.rebuild_count();
            ladder.extend_to(&q, 2);
            assert_eq!(ladder.rebuild_count(), rebuilds, "{src} at k = 2 again");
            assert_eq!(ladder.k(), 1, "the build bound never moves");
        }
    }

    #[test]
    fn ladder_walk_bounds_shares_arcs_and_counts_inferences() {
        let d = figure1();
        let q = parse_query("//a//c").unwrap();
        let (out, inferences) = QueryKLadder::walk_bounds(&d, &q, &[2, 3, 4], true);
        assert_eq!(inferences, 1, "non-recursive: one build serves all bounds");
        assert_eq!(out.len(), 3);
        assert!(
            std::sync::Arc::ptr_eq(&out[0].1, &out[2].1),
            "cache-served bounds share one allocation"
        );
        let eng = CdagEngine::new(&d, 4);
        let fresh = eng.infer_query(&eng.root_gamma(q.free_vars()), &q);
        assert_eq!(*out[2].1, fresh);
        assert!(QueryKLadder::walk_bounds(&d, &q, &[], true).0.is_empty());
    }

    #[test]
    fn update_ladder_matches_fresh_builds_even_when_saturated() {
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let u = parse_update("delete //c//b").unwrap();
        let mut ladder = UpdateKLadder::new(&d, &u, 1, true);
        assert!(!ladder.is_complete(), "recursive deletes saturate");
        for k in 2..=3 {
            let stepped = ladder.extend_to(&u, k).clone();
            let eng = CdagEngine::new(&d, k);
            let fresh = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
            assert_eq!(stepped, fresh, "k = {k}");
        }
        assert_eq!(ladder.rebuild_count(), 2, "saturated ladders rebuild");
    }

    #[test]
    fn saturated_ladder_extension_continues_instead_of_starting_over() {
        // Half the schema is a recursive clique (saturates at every bound),
        // half is flat. An update straddling both re-infers only the
        // recursive half on extension; the flat sub-expressions must come
        // from the cross-build memo.
        let d = Dtd::parse_compact(
            "r -> (a|x)* ; a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)* ; x -> y ; y -> EMPTY",
            "r",
        )
        .unwrap();
        let u = parse_update("for $v in /x/y return delete //b//c").unwrap();
        let mut ladder = UpdateKLadder::new(&d, &u, 1, true);
        assert!(!ladder.is_complete(), "the recursive half saturates");
        assert_eq!(ladder.memo_hit_count(), 0, "no rebuild yet");
        for k in 2..=3 {
            let stepped = ladder.extend_to(&u, k).clone();
            let eng = CdagEngine::new(&d, k);
            let fresh = eng.infer_update(&eng.root_gamma(u.free_vars()), &u);
            assert_eq!(stepped, fresh, "k = {k}");
        }
        assert_eq!(ladder.rebuild_count(), 2);
        assert!(
            ladder.memo_hit_count() >= 2,
            "the flat sub-expressions must be served from the memo across \
             rebuilds, got {} hits",
            ladder.memo_hit_count()
        );
    }
}
