//! The explicit (reference) inference engine: chain sets are materialized
//! exactly as the rules of Tables 1 and 2 prescribe.

use super::{label_syms, Overflow};
use crate::parallel::Jobs;
use crate::types::{ChainItem, QueryChains, UpdateChain, UpdateChains};
use crate::universe::Universe;
use qui_schema::{Chain, SchemaLike, TEXT_SYM};
use qui_xquery::{Axis, NodeTest, Query, Update, UpdatePos};
use std::collections::{BTreeSet, HashMap};

/// Variable environment `Γ`: each variable maps to the set of chains typing
/// the nodes it can be bound to.
pub type Gamma = HashMap<String, BTreeSet<Chain>>;

/// The explicit engine over a universe `C` (usually `C_d^k`).
pub struct ExplicitEngine<'a, S: SchemaLike> {
    universe: &'a Universe<'a, S>,
    /// Budget on the size of any materialized chain set.
    cap: usize,
    /// Whether the (ELT) rule infers precise element chains (§3, "element
    /// chains"); turning this off reproduces the ablation discussed in the
    /// paper where only "something happens beneath the target" is recorded.
    element_chains: bool,
    /// Worker count for the sharded descendant enumeration (the dominant
    /// cost on recursive schemas); chain sets are identical for any value.
    workers: usize,
}

impl<'a, S: SchemaLike> ExplicitEngine<'a, S> {
    /// Creates an engine with the given materialization budget.
    pub fn new(universe: &'a Universe<'a, S>, cap: usize) -> Self {
        ExplicitEngine {
            universe,
            cap,
            element_chains: true,
            workers: 1,
        }
    }

    /// Enables or disables element-chain inference (ablation switch).
    pub fn with_element_chains(mut self, on: bool) -> Self {
        self.element_chains = on;
        self
    }

    /// Shards the descendant-axis chain enumeration over `jobs` workers (see
    /// [`Universe::descendant_extensions_jobs`]). Inferred chain sets and
    /// overflow behaviour are bit-identical for every worker count.
    pub fn with_jobs(mut self, jobs: Jobs) -> Self {
        self.workers = jobs.resolve();
        self
    }

    /// The initial environment binding every free variable of the expression
    /// to the root chain (quasi-closed convention).
    pub fn root_gamma(&self, vars: impl IntoIterator<Item = String>) -> Gamma {
        let mut g = Gamma::new();
        let root = self.universe.root_chain();
        for v in vars {
            g.insert(v, [root.clone()].into_iter().collect());
        }
        g
    }

    fn check_cap(&self, len: usize) -> Result<(), Overflow> {
        if len > self.cap {
            Err(Overflow)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------- §3.1 AC / TC

    /// Axis chain inference `AC(c, axis)`.
    pub fn ac(&self, c: &Chain, axis: Axis) -> Result<Vec<Chain>, Overflow> {
        let schema = self.universe.schema();
        let out = match axis {
            Axis::SelfAxis => vec![c.clone()],
            Axis::Child => self
                .universe
                .child_extensions(c)
                .into_iter()
                .map(|s| c.push(s))
                .collect(),
            Axis::Descendant => self
                .universe
                .descendant_extensions_jobs(c, self.cap, Jobs::Fixed(self.workers))
                .ok_or(Overflow)?,
            Axis::DescendantOrSelf => {
                let mut v = vec![c.clone()];
                v.extend(
                    self.universe
                        .descendant_extensions_jobs(c, self.cap, Jobs::Fixed(self.workers))
                        .ok_or(Overflow)?,
                );
                v
            }
            Axis::Parent => match c.parent() {
                Some(p) if !p.is_empty() => vec![p],
                _ => Vec::new(),
            },
            Axis::Ancestor => c.proper_prefixes(),
            Axis::AncestorOrSelf => c.prefixes_or_self(),
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                let (Some(parent), Some(alpha)) = (c.parent(), c.last()) else {
                    return Ok(Vec::new());
                };
                let Some(parent_sym) = parent.last() else {
                    return Ok(Vec::new());
                };
                let before = schema.before_pairs_of(parent_sym);
                let mut v = Vec::new();
                for &(x, y) in before {
                    let sibling = if axis == Axis::FollowingSibling {
                        // α <_{d(c1)} β, result c1.β
                        if x == alpha {
                            Some(y)
                        } else {
                            None
                        }
                    } else {
                        // α <_{d(c1)} β with c = c1.β, result c1.α
                        if y == alpha {
                            Some(x)
                        } else {
                            None
                        }
                    };
                    if let Some(s) = sibling {
                        if self.universe.can_append(&parent, s) {
                            v.push(parent.push(s));
                        }
                    }
                }
                v.sort();
                v.dedup();
                v
            }
        };
        self.check_cap(out.len())?;
        Ok(out)
    }

    /// Node-test chain inference `TC(c, φ)` applied to a set of chains.
    pub fn tc(&self, chains: Vec<Chain>, test: &NodeTest) -> Vec<Chain> {
        let schema = self.universe.schema();
        chains
            .into_iter()
            .filter(|c| match test {
                NodeTest::AnyNode => true,
                NodeTest::Text => c.last() == Some(TEXT_SYM),
                NodeTest::AnyElement => c.last().is_some_and(|s| s != TEXT_SYM),
                NodeTest::Tag(t) => c
                    .last()
                    .is_some_and(|s| s != TEXT_SYM && schema.type_label(s) == t),
            })
            .collect()
    }

    // ------------------------------------------------------- Table 1

    /// Infers the chain triple `(r; v; e)` for a query.
    pub fn infer_query(&self, gamma: &Gamma, q: &Query) -> Result<QueryChains, Overflow> {
        match q {
            Query::Empty => Ok(QueryChains::empty()),
            Query::StringLit(_) => {
                // (TEXT): a new text node; its element chain is S.
                let mut out = QueryChains::empty();
                out.elements
                    .insert(ChainItem::plain(Chain::single(TEXT_SYM)));
                Ok(out)
            }
            Query::Concat(a, b) => {
                let qa = self.infer_query(gamma, a)?;
                let qb = self.infer_query(gamma, b)?;
                Ok(qa.union(qb))
            }
            Query::If { cond, then, els } => {
                let q0 = self.infer_query(gamma, cond)?;
                let q1 = self.infer_query(gamma, then)?;
                let q2 = self.infer_query(gamma, els)?;
                let mut out = QueryChains::empty();
                out.returns.extend(q1.returns.iter().cloned());
                out.returns.extend(q2.returns.iter().cloned());
                out.used.extend(q0.used.iter().cloned());
                out.used.extend(q1.used.iter().cloned());
                out.used.extend(q2.used.iter().cloned());
                // r0 is converted to used chains.
                out.used
                    .extend(q0.returns.iter().cloned().map(ChainItem::plain));
                out.elements.extend(q1.elements.iter().cloned());
                out.elements.extend(q2.elements.iter().cloned());
                self.check_cap(out.total_len())?;
                Ok(out)
            }
            Query::Let { var, source, ret } => {
                let q1 = self.infer_query(gamma, source)?;
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns.clone());
                let q2 = self.infer_query(&inner, ret)?;
                let mut out = QueryChains::empty();
                out.returns = q2.returns;
                out.used
                    .extend(q1.returns.into_iter().map(ChainItem::plain));
                out.used.extend(q1.used);
                out.used.extend(q2.used);
                out.elements = q2.elements;
                self.check_cap(out.total_len())?;
                Ok(out)
            }
            Query::For { var, source, ret } => {
                let q1 = self.infer_query(gamma, source)?;
                let mut out = QueryChains::empty();
                out.used.extend(q1.used.iter().cloned());
                let mut inner = gamma.clone();
                for c in &q1.returns {
                    inner.insert(var.clone(), [c.clone()].into_iter().collect());
                    let qc = self.infer_query(&inner, ret)?;
                    // Chain filtering: the iteration chain c only becomes a
                    // used chain when the body actually produces something
                    // from it (return or element chains).
                    if !qc.returns.is_empty() || !qc.elements.is_empty() {
                        out.used.insert(ChainItem::plain(c.clone()));
                        out.used.extend(qc.used.iter().cloned());
                    }
                    out.returns.extend(qc.returns);
                    out.elements.extend(qc.elements);
                    self.check_cap(out.total_len())?;
                }
                Ok(out)
            }
            Query::Step { var, axis, test } => {
                let Some(ctx) = gamma.get(var) else {
                    // Unbound variables cannot contribute chains (the
                    // evaluator would reject the expression anyway).
                    return Ok(QueryChains::empty());
                };
                let mut out = QueryChains::empty();
                for c in ctx {
                    let rc = self.tc(self.ac(c, *axis)?, test);
                    if !axis.is_stepf_axis() && !rc.is_empty() {
                        // (STEPUH): upward/horizontal (and descendant) axes
                        // also record the step variable's chain as used.
                        out.used.insert(ChainItem::plain(c.clone()));
                    }
                    out.returns.extend(rc);
                    self.check_cap(out.total_len())?;
                }
                Ok(out)
            }
            Query::Element { tag, content } => {
                let q = self.infer_query(gamma, content)?;
                let mut out = QueryChains::empty();
                // Used chains: the content's used chains plus its return
                // chains converted to (extensible) used chains — return
                // chains embody whole subtrees (r̄ in the rule).
                out.used.extend(q.used.iter().cloned());
                out.used
                    .extend(q.returns.iter().cloned().map(ChainItem::extended));
                if !self.element_chains {
                    // Ablation: only record that *something* is constructed.
                    out.elements.insert(ChainItem::extended(Chain::empty()));
                    return Ok(out);
                }
                let schema = self.universe.schema();
                let tags = label_syms(schema, tag);
                for &t in &tags {
                    let prefix = Chain::single(t);
                    // { a.α.c' | c.α ∈ r, c.α.c' ∈ C } — kept symbolic as an
                    // extensible item rooted at a.α.
                    for rc in &q.returns {
                        if let Some(alpha) = rc.last() {
                            out.elements.insert(ChainItem::extended(prefix.push(alpha)));
                        }
                    }
                    // { a.c | c ∈ e }
                    for e in &q.elements {
                        out.elements.insert(ChainItem {
                            chain: prefix.concat(&e.chain),
                            extensible: e.extensible,
                        });
                    }
                    // { a } — the constructed element is itself a node of the
                    // forest, whatever its content. Without this chain an
                    // insertion of `<a>…</a>` is invisible to queries that
                    // test for an `a` child (e.g. an `[a]` predicate): only
                    // the deeper content chains would be recorded, none of
                    // which prefix-matches the chain of the new `a` node.
                    out.elements.insert(ChainItem::plain(prefix));
                }
                self.check_cap(out.total_len())?;
                Ok(out)
            }
        }
    }

    // ------------------------------------------------------- Table 2

    /// Infers the set `U` of update chains for an update.
    pub fn infer_update(&self, gamma: &Gamma, u: &Update) -> Result<UpdateChains, Overflow> {
        match u {
            Update::Empty => Ok(UpdateChains::empty()),
            Update::Concat(a, b) => {
                let ua = self.infer_update(gamma, a)?;
                let ub = self.infer_update(gamma, b)?;
                Ok(ua.union(ub))
            }
            Update::If { cond: _, then, els } => {
                let u1 = self.infer_update(gamma, then)?;
                let u2 = self.infer_update(gamma, els)?;
                Ok(u1.union(u2))
            }
            Update::Let { var, source, body } => {
                let q1 = self.infer_query(gamma, source)?;
                let mut inner = gamma.clone();
                inner.insert(var.clone(), q1.returns);
                self.infer_update(&inner, body)
            }
            Update::For { var, source, body } => {
                let q1 = self.infer_query(gamma, source)?;
                let mut out = UpdateChains::empty();
                let mut inner = gamma.clone();
                for c in &q1.returns {
                    inner.insert(var.clone(), [c.clone()].into_iter().collect());
                    let uc = self.infer_update(&inner, body)?;
                    out = out.union(uc);
                    self.check_cap(out.len())?;
                }
                Ok(out)
            }
            Update::Delete { target } => {
                let r0 = self.infer_query(gamma, target)?.returns;
                let mut out = UpdateChains::empty();
                for c in &r0 {
                    if let (Some(parent), Some(alpha)) = (c.parent(), c.last()) {
                        out.insert(UpdateChain::new(
                            parent,
                            ChainItem::plain(Chain::single(alpha)),
                        ));
                    }
                }
                Ok(out)
            }
            Update::Rename { target, new_tag } => {
                let r0 = self.infer_query(gamma, target)?.returns;
                let schema = self.universe.schema();
                let new_syms = label_syms(schema, new_tag);
                let mut out = UpdateChains::empty();
                for c in &r0 {
                    if let (Some(parent), Some(alpha)) = (c.parent(), c.last()) {
                        out.insert(UpdateChain::new(
                            parent.clone(),
                            ChainItem::plain(Chain::single(alpha)),
                        ));
                        for &b in &new_syms {
                            out.insert(UpdateChain::new(
                                parent.clone(),
                                ChainItem::plain(Chain::single(b)),
                            ));
                        }
                    }
                }
                Ok(out)
            }
            Update::Insert {
                source,
                pos,
                target,
            } => {
                let src = self.infer_query(gamma, source)?;
                let r0 = self.infer_query(gamma, target)?.returns;
                let bases: Vec<Chain> = match pos {
                    UpdatePos::Into | UpdatePos::IntoAsFirst | UpdatePos::IntoAsLast => {
                        r0.into_iter().collect()
                    }
                    UpdatePos::Before | UpdatePos::After => r0
                        .into_iter()
                        .filter_map(|c| c.parent())
                        .filter(|p| !p.is_empty())
                        .collect(),
                };
                Ok(self.insertion_chains(&bases, &src))
            }
            Update::Replace { target, source } => {
                let src = self.infer_query(gamma, source)?;
                let r0 = self.infer_query(gamma, target)?.returns;
                let mut out = UpdateChains::empty();
                let mut bases = Vec::new();
                for c in &r0 {
                    if let (Some(parent), Some(alpha)) = (c.parent(), c.last()) {
                        // { c:α | c.α ∈ r0 } — the removed node.
                        out.insert(UpdateChain::new(
                            parent.clone(),
                            ChainItem::plain(Chain::single(alpha)),
                        ));
                        if !parent.is_empty() {
                            bases.push(parent);
                        }
                    }
                }
                Ok(out.union(self.insertion_chains(&bases, &src)))
            }
        }
    }

    /// The insertion components shared by insert and replace: for each base
    /// chain `c`, element chains of the source become suffixes, and a source
    /// return chain ending in `α` contributes the (extensible) suffix `α`,
    /// standing for `α.c''` with `c'.α.c'' ∈ C`.
    fn insertion_chains(&self, bases: &[Chain], src: &QueryChains) -> UpdateChains {
        let mut out = UpdateChains::empty();
        for base in bases {
            for e in &src.elements {
                out.insert(UpdateChain::new(base.clone(), e.clone()));
            }
            for rc in &src.returns {
                if let Some(alpha) = rc.last() {
                    out.insert(UpdateChain::new(
                        base.clone(),
                        ChainItem::extended(Chain::single(alpha)),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn figure1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    fn infer_q(d: &Dtd, k: usize, q: &str) -> QueryChains {
        let u = Universe::with_k(d, k);
        let eng = ExplicitEngine::new(&u, 100_000);
        let q = parse_query(q).unwrap();
        let gamma = eng.root_gamma(q.free_vars());
        eng.infer_query(&gamma, &q).unwrap()
    }

    fn infer_u(d: &Dtd, k: usize, upd: &str) -> UpdateChains {
        let u = Universe::with_k(d, k);
        let eng = ExplicitEngine::new(&u, 100_000);
        let upd = parse_update(upd).unwrap();
        let gamma = eng.root_gamma(upd.free_vars());
        eng.infer_update(&gamma, &upd).unwrap()
    }

    fn chains_of(d: &Dtd, set: &BTreeSet<Chain>) -> Vec<String> {
        set.iter().map(|c| d.show_chain(c)).collect()
    }

    #[test]
    fn q1_returns_doc_a_c_only() {
        // Introduction example: //a//c over the Figure-1 schema infers doc.a.c.
        let d = figure1();
        let q = infer_q(&d, 3, "//a//c");
        let returns = chains_of(&d, &q.returns);
        assert_eq!(returns, vec!["doc.a.c"]);
    }

    #[test]
    fn u1_infers_doc_b_colon_c() {
        let d = figure1();
        let u = infer_u(&d, 3, "delete //b//c");
        let shown: Vec<String> = u.chains.iter().map(|c| c.display(&d)).collect();
        assert_eq!(shown, vec!["doc.b:c"]);
    }

    #[test]
    fn step_inference_for_all_axes_on_figure1() {
        let d = figure1();
        let univ = Universe::with_k(&d, 2);
        let eng = ExplicitEngine::new(&univ, 10_000);
        let doc_a = d.chain_of_names(&["doc", "a"]).unwrap();
        let show = |v: Vec<Chain>| -> Vec<String> {
            let mut s: Vec<String> = v.iter().map(|c| d.show_chain(c)).collect();
            s.sort();
            s
        };
        assert_eq!(show(eng.ac(&doc_a, Axis::SelfAxis).unwrap()), vec!["doc.a"]);
        assert_eq!(show(eng.ac(&doc_a, Axis::Child).unwrap()), vec!["doc.a.c"]);
        assert_eq!(
            show(eng.ac(&doc_a, Axis::Descendant).unwrap()),
            vec!["doc.a.c"]
        );
        assert_eq!(
            show(eng.ac(&doc_a, Axis::DescendantOrSelf).unwrap()),
            vec!["doc.a", "doc.a.c"]
        );
        assert_eq!(show(eng.ac(&doc_a, Axis::Parent).unwrap()), vec!["doc"]);
        assert_eq!(show(eng.ac(&doc_a, Axis::Ancestor).unwrap()), vec!["doc"]);
        assert_eq!(
            show(eng.ac(&doc_a, Axis::AncestorOrSelf).unwrap()),
            vec!["doc", "doc.a"]
        );
        // Siblings of a under doc: (a|b)* allows both a and b on either side.
        assert_eq!(
            show(eng.ac(&doc_a, Axis::FollowingSibling).unwrap()),
            vec!["doc.a", "doc.b"]
        );
        assert_eq!(
            show(eng.ac(&doc_a, Axis::PrecedingSibling).unwrap()),
            vec!["doc.a", "doc.b"]
        );
    }

    #[test]
    fn sibling_inference_respects_content_model_order() {
        // d = { a ← (b+, c∗) }: following-sibling of b can be b or c, but
        // preceding-sibling of b can only be b (§3.2 example).
        let d = Dtd::parse_compact("a -> (b+, c*) ; b -> EMPTY ; c -> EMPTY", "a").unwrap();
        let univ = Universe::with_k(&d, 2);
        let eng = ExplicitEngine::new(&univ, 10_000);
        let a_b = d.chain_of_names(&["a", "b"]).unwrap();
        let mut fs: Vec<String> = eng
            .ac(&a_b, Axis::FollowingSibling)
            .unwrap()
            .iter()
            .map(|c| d.show_chain(c))
            .collect();
        fs.sort();
        assert_eq!(fs, vec!["a.b", "a.c"]);
        let ps: Vec<String> = eng
            .ac(&a_b, Axis::PrecedingSibling)
            .unwrap()
            .iter()
            .map(|c| d.show_chain(c))
            .collect();
        assert_eq!(ps, vec!["a.b"]);
    }

    #[test]
    fn stepuh_example_of_section_3_2() {
        // DTD d = {a ← (b+, c∗)} and query /a/b/following-sibling::c:
        // a.b is inferred as a used chain and a.c as a return chain.
        let d = Dtd::parse_compact("a -> (b+, c*) ; b -> EMPTY ; c -> EMPTY", "a").unwrap();
        let q = infer_q(&d, 2, "/b/following-sibling::c");
        assert_eq!(chains_of(&d, &q.returns), vec!["a.c"]);
        let used: Vec<String> = q.used.iter().map(|c| c.display(&d)).collect();
        assert!(used.contains(&"a.b".to_string()), "used = {used:?}");
    }

    #[test]
    fn element_construction_infers_element_chains() {
        // The bibliography example of §3: the inserted <author/> produces the
        // update chain bib.book:author.
        let d = Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*) ; title -> #PCDATA ; author -> (first?, last)? ; first -> #PCDATA ; last -> #PCDATA",
            "bib",
        )
        .unwrap();
        let u = infer_u(&d, 3, "for $x in //book return insert <author/> into $x");
        let shown: Vec<String> = u.chains.iter().map(|c| c.display(&d)).collect();
        assert_eq!(shown, vec!["bib.book:author"]);
    }

    #[test]
    fn nested_element_construction_composes_chains() {
        // §3: inserting <author><first>…</first><second>…</second></author>
        // yields update chains bib.book:author.first.S and …author.second.S
        // (second is not a schema label; it maps to the unknown sentinel but
        // the chain structure is still inferred).
        let d = Dtd::parse_compact(
            "bib -> book* ; book -> (title, author*) ; title -> #PCDATA ; author -> (first?, last)? ; first -> #PCDATA ; last -> #PCDATA",
            "bib",
        )
        .unwrap();
        let u = infer_u(
            &d,
            4,
            "for $x in //book return insert <author><first>Umberto</first></author> into $x",
        );
        let shown: Vec<String> = u.chains.iter().map(|c| c.display(&d)).collect();
        assert!(
            shown.iter().any(|s| s.contains("bib.book:author.first")),
            "chains: {shown:?}"
        );
    }

    #[test]
    fn for_filtering_limits_used_chains() {
        // for x in //node() return if (x/b) then x/a else ():
        // only chains leading to a or b survive as used chains (§3.2).
        let d = Dtd::parse_compact(
            "doc -> (p|q)* ; p -> (a?, b?) ; q -> z? ; a -> EMPTY ; b -> EMPTY ; z -> EMPTY",
            "doc",
        )
        .unwrap();
        let q = infer_q(
            &d,
            3,
            "for $x in //node() return if ($x/b) then $x/a else ()",
        );
        let used: Vec<String> = q.used.iter().map(|c| c.display(&d)).collect();
        assert!(
            used.iter().all(|c| !c.contains('z')),
            "z chains should be filtered out of used chains: {used:?}"
        );
        assert_eq!(chains_of(&d, &q.returns), vec!["doc.p.a"]);
    }

    #[test]
    fn update_rules_cover_all_operators() {
        let d = figure1();
        let del = infer_u(&d, 2, "delete /a");
        assert_eq!(del.chains.len(), 1);
        let ren = infer_u(&d, 2, "for $x in /a return rename $x as b");
        // doc:a (old type) and doc:b (new type)
        assert_eq!(ren.chains.len(), 2);
        let ins = infer_u(&d, 2, "for $x in /a return insert <c/> into $x");
        assert_eq!(ins.chains.len(), 1);
        let insb = infer_u(&d, 2, "for $x in /a return insert <b/> before $x");
        let shown: Vec<String> = insb.chains.iter().map(|c| c.display(&d)).collect();
        assert_eq!(shown, vec!["doc:b"]);
        let rep = infer_u(&d, 2, "for $x in /a return replace $x with <b/>");
        assert_eq!(rep.chains.len(), 2); // doc:a removed, doc:b inserted
    }

    #[test]
    fn overflow_is_reported_on_heavily_recursive_schemas() {
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let univ = Universe::with_k(&d, 6);
        let eng = ExplicitEngine::new(&univ, 1_000);
        let q = parse_query("//b//c//b").unwrap();
        let gamma = eng.root_gamma(q.free_vars());
        assert_eq!(eng.infer_query(&gamma, &q), Err(Overflow));
    }
}
