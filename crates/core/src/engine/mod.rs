//! The two inference engines.
//!
//! * [`explicit`] materializes chain sets exactly as Tables 1 and 2
//!   prescribe. It is the reference implementation: easiest to relate to the
//!   paper, exact, but the number of distinct chains can grow exponentially
//!   on heavily recursive schemas (paper §6.1, footnote 8), so every
//!   materialization is guarded by a budget.
//! * [`cdag`] represents every set of rooted chains as a *chain DAG* (CDAG,
//!   §6.1): at most one node per (type, depth) pair, so the width is bounded
//!   by the schema size and inference runs in polynomial space and time.
//!   Chain sets that are not rooted at the schema start symbol (element
//!   chains, update suffixes) stay symbolic, exactly as in the explicit
//!   engine.
//!
//! Both engines share the chain classes of [`crate::types`], the universe of
//! [`crate::universe`] and the conflict relation of [`crate::conflict`]; the
//! analyzer cross-checks them in the test suite and the `cdag_micro` bench
//! compares their cost profiles.

pub mod cdag;
pub mod explicit;

use qui_schema::{SchemaLike, Sym};

/// Sentinel symbol index used for labels that do not belong to the schema
/// alphabet (e.g. `rename … as brand-new-tag`, or constructed elements whose
/// tag the schema does not know). Chains through this symbol can never match
/// a chain inferred for a query from the schema, which is exactly the
/// behaviour the analysis needs.
pub const UNKNOWN_SYM: Sym = Sym(u16::MAX);

/// Resolves a label to the schema types carrying it, or to [`UNKNOWN_SYM`]
/// when the schema does not know the label.
pub fn label_syms<S: SchemaLike>(schema: &S, label: &str) -> Vec<Sym> {
    let types = schema.types_with_label(label);
    if types.is_empty() {
        vec![UNKNOWN_SYM]
    } else {
        types
    }
}

/// An inference failure of the explicit engine: some chain set exceeded the
/// configured budget (the CDAG engine is then used instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow;

impl std::fmt::Display for Overflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "explicit chain materialization exceeded its budget")
    }
}

impl std::error::Error for Overflow {}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_schema::Dtd;

    #[test]
    fn unknown_labels_map_to_sentinel() {
        let d = Dtd::parse_compact("doc -> a ; a -> EMPTY", "doc").unwrap();
        assert_eq!(label_syms(&d, "zzz"), vec![UNKNOWN_SYM]);
        assert_eq!(label_syms(&d, "a"), vec![d.sym("a").unwrap()]);
    }
}
