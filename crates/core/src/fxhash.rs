//! A dependency-free fast hasher for the CDAG hot paths.
//!
//! The CDAG engine stores chain sets as hash sets of dense `u32` node
//! indices and `(u32, u32)` edges; `std`'s default SipHash is built for
//! HashDoS resistance the engine does not need (keys are small integers
//! derived from schema types, never attacker-controlled strings), and its
//! per-lookup cost dominated the `cdag_micro` profiles. This is the familiar
//! Fx/rustc multiply-rotate hash specialized for that workload: a couple of
//! arithmetic instructions per word, deterministic across runs (so CDAG
//! iteration-independent results stay reproducible), and `BuildHasherDefault`
//! so the map types keep their `Default`/`Clone`/`PartialEq` derives.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style Fx hasher: one multiply and one rotate per ingested word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 64-bit golden-ratio multiplier (same constant rustc's FxHasher uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (only used for non-integer keys): fold 8-byte words.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// The `BuildHasher` the CDAG collections use.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let build = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            let mut h = std::hash::BuildHasher::build_hasher(&build);
            h.write_u32(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn sets_and_maps_behave_like_std() {
        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        for i in 0..100u32 {
            set.insert((i, i + 1));
        }
        assert_eq!(set.len(), 100);
        assert!(set.contains(&(7, 8)));
        let mut map: FxHashMap<u32, bool> = FxHashMap::default();
        map.insert(3, true);
        assert_eq!(map.get(&3), Some(&true));
        // Equality is contents-based, independent of insertion order.
        let mut other: FxHashSet<(u32, u32)> = FxHashSet::default();
        for i in (0..100u32).rev() {
            other.insert((i, i + 1));
        }
        assert_eq!(set, other);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let build = FxBuildHasher::default();
        let h = |bytes: &[u8]| {
            let mut h = std::hash::BuildHasher::build_hasher(&build);
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"abcdefgh-tail"), h(b"abcdefgh-tail"));
        assert_ne!(h(b"abcdefgh-tail"), h(b"abcdefgh-tali"));
    }
}
