//! Tiered approximate-first answering: serve the polynomial CDAG verdict
//! synchronously, upgrade to the explicit-witness verdict asynchronously,
//! and measure how often the fast answer was already exact.
//!
//! The pattern mirrors approximate-first query processors (answer from the
//! cheap tier immediately, reconcile against the precise tier in the
//! background, report the observed agreement): here the cheap tier is the
//! CDAG engine — sound for *independent* verdicts, conservative for
//! *dependent* ones — and the precise tier is the session's full engine
//! order, which consults the explicit engine (and recovers the conflict
//! witness) for every pair the CDAG could not prove.
//!
//! A [`TieredSession`] fronts a [`SharedSession`]:
//!
//! * [`check_fast`](TieredSession::check_fast) returns the CDAG-only
//!   verdict immediately (warm through the same session caches as every
//!   other read) and enqueues the pair for upgrade;
//! * [`drain_upgrades`](TieredSession::drain_upgrades) runs the queued
//!   exact checks — each one sharded over the session's worker pool — and
//!   counts how many confirmed their fast answer;
//! * the confirmation ratio is surfaced as
//!   [`SessionStats::upgrade_exactness`] through the `stats` protocol
//!   command, and by the `qui traffic` simulator's report.
//!
//! Both methods take `&self` and are thread-safe: any number of threads may
//! serve fast answers while another drains upgrades.

use crate::service::SharedSession;
use crate::session::SessionStats;
use crate::Verdict;
use qui_schema::SchemaLike;
use qui_xquery::{Query, Update};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One queued explicit-witness upgrade.
struct PendingUpgrade {
    query: Query,
    update: Update,
    fast_independent: bool,
}

/// Counters of one [`drain_upgrades`](TieredSession::drain_upgrades) call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TieredDrain {
    /// Upgrades completed by this drain.
    pub upgraded: usize,
    /// Of those, how many confirmed the fast answer.
    pub confirmed: usize,
}

/// Cumulative tiered counters (the session-level counters plus the live
/// queue depth).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TieredStats {
    /// Fast answers served.
    pub fast_answers: usize,
    /// Upgrades still queued.
    pub pending: usize,
    /// Upgrades completed.
    pub upgrades: usize,
    /// Completed upgrades that confirmed their fast answer.
    pub confirmed: usize,
}

impl TieredStats {
    /// Fraction of completed upgrades that confirmed the fast answer
    /// (`1.0` before any upgrade has completed).
    pub fn upgrade_exactness(&self) -> f64 {
        if self.upgrades == 0 {
            1.0
        } else {
            self.confirmed as f64 / self.upgrades as f64
        }
    }
}

/// The tiered front over a shared session. See the [module docs](self).
pub struct TieredSession<'a, S: SchemaLike + Sync> {
    shared: Arc<SharedSession<'a, S>>,
    pending: Mutex<VecDeque<PendingUpgrade>>,
}

impl<'a, S: SchemaLike + Sync> TieredSession<'a, S> {
    /// Fronts the given shared session.
    pub fn new(shared: Arc<SharedSession<'a, S>>) -> Self {
        TieredSession {
            shared,
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// The fronted shared session (edits and batch requests go through it
    /// directly — tiering only concerns the check path).
    pub fn shared(&self) -> &Arc<SharedSession<'a, S>> {
        &self.shared
    }

    /// The fast tier: the CDAG-only verdict, returned synchronously, with
    /// the pair queued for an explicit-witness upgrade. An *independent*
    /// fast answer is sound and final; a *dependent* one may be retracted
    /// by the upgrade.
    pub fn check_fast(&self, q: &Query, u: &Update) -> Verdict {
        let verdict = self.shared.with_read(|h| {
            let session = h.session();
            session.note_tiered_fast();
            session.check_cdag(q, u)
        });
        self.pending.lock().unwrap().push_back(PendingUpgrade {
            query: q.clone(),
            update: u.clone(),
            fast_independent: verdict.is_independent(),
        });
        verdict
    }

    /// The slow tier: drains the upgrade queue, running each queued pair
    /// through the session's full engine order (each check shards its
    /// inference over the session's worker pool), and records per upgrade
    /// whether the exact verdict confirmed the fast answer.
    pub fn drain_upgrades(&self) -> TieredDrain {
        let batch: Vec<PendingUpgrade> = {
            let mut pending = self.pending.lock().unwrap();
            pending.drain(..).collect()
        };
        let mut drain = TieredDrain::default();
        for item in batch {
            let confirmed = self.shared.with_read(|h| {
                let session = h.session();
                let exact = session.check(&item.query, &item.update);
                let confirmed = exact.is_independent() == item.fast_independent;
                session.note_tiered_upgrade(confirmed);
                confirmed
            });
            drain.upgraded += 1;
            if confirmed {
                drain.confirmed += 1;
            }
        }
        drain
    }

    /// Upgrades still queued.
    pub fn pending(&self) -> usize {
        self.pending.lock().unwrap().len()
    }

    /// Cumulative tiered counters (see [`TieredStats`]). The session-level
    /// half also reaches the protocol via the `stats` command
    /// ([`SessionStats::upgrade_exactness`]).
    pub fn stats(&self) -> TieredStats {
        let s: SessionStats = self.shared.with_read(|h| h.session().stats());
        TieredStats {
            fast_answers: s.tiered_fast,
            pending: self.pending(),
            upgrades: s.tiered_upgrades,
            confirmed: s.tiered_confirmed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::EngineKind;
    use crate::session::SessionBuilder;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn figure1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    fn tiered(dtd: &Dtd) -> TieredSession<'_, Dtd> {
        let session = SessionBuilder::new(dtd).build();
        TieredSession::new(Arc::new(SharedSession::new(session)))
    }

    #[test]
    fn fast_answers_come_from_the_cdag_engine() {
        let dtd = figure1();
        let t = tiered(&dtd);
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        let v = t.check_fast(&q, &u);
        assert!(v.is_independent());
        assert_eq!(v.engine_used, EngineKind::Cdag);
        assert_eq!(t.pending(), 1);
    }

    #[test]
    fn drained_upgrades_confirm_sound_fast_answers() {
        let dtd = figure1();
        let t = tiered(&dtd);
        let pairs = [
            ("//a//c", "delete //b//c"),
            ("//c", "delete //b//c"),
            ("//b", "delete //c"),
        ];
        for (q, u) in pairs {
            t.check_fast(&parse_query(q).unwrap(), &parse_update(u).unwrap());
        }
        let drain = t.drain_upgrades();
        assert_eq!(drain.upgraded, 3);
        // On this schema the CDAG verdicts match the explicit ones exactly,
        // so every upgrade confirms.
        assert_eq!(drain.confirmed, 3);
        let stats = t.stats();
        assert_eq!(stats.fast_answers, 3);
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.upgrades, 3);
        assert!((stats.upgrade_exactness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exactness_reaches_the_protocol_stats() {
        let dtd = figure1();
        let t = tiered(&dtd);
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        t.check_fast(&q, &u);
        t.drain_upgrades();
        let stats = t.shared().with_read(|h| h.session().stats());
        assert_eq!(stats.tiered_fast, 1);
        assert_eq!(stats.tiered_upgrades, 1);
        assert_eq!(stats.tiered_confirmed, 1);
        assert!((stats.upgrade_exactness() - 1.0).abs() < 1e-12);
        // And through the protocol response.
        let rendered = crate::protocol::Response::Stats(stats).render_text();
        assert!(rendered.contains("tiered"), "{rendered}");
    }

    #[test]
    fn exactness_defaults_to_one_before_any_upgrade() {
        assert!((TieredStats::default().upgrade_exactness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_fast_answers_and_drains_are_safe() {
        let dtd = figure1();
        let t = tiered(&dtd);
        let q = parse_query("//a//c").unwrap();
        let u = parse_update("delete //b//c").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        t.check_fast(&q, &u);
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..4 {
                    t.drain_upgrades();
                }
            });
        });
        t.drain_upgrades();
        let stats = t.stats();
        assert_eq!(stats.fast_answers, 32);
        assert_eq!(stats.upgrades, 32);
        assert_eq!(stats.confirmed, 32);
        assert_eq!(stats.pending, 0);
    }
}
