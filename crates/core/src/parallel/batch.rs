//! Batched analysis of the views × updates independence matrix.
//!
//! The naive matrix (what [`IndependenceAnalyzer::check`] in a double loop
//! gives you) re-runs chain inference for every cell: `|V| · |U|` query
//! inferences and as many update inferences. But inference is *per
//! expression*: the chains of a query depend only on the query and the
//! multiplicity bound `k`, never on which update it is paired with — and
//! symmetrically for updates. Since `k = k_q + k_u`, a view only ever needs
//! its chains at the handful of distinct `k_u` values present in the update
//! set (and vice versa), so the whole matrix needs `O(|V| + |U|)` inferences
//! (times the small number of distinct `k` values), after which every cell is
//! a cheap conflict check over two precomputed chain sets.
//!
//! The precomputed sets are immutable and shared behind [`Arc`] across all
//! cells; both the precompute pass and the cell pass are sharded over the
//! [`pool`](super::pool) work-stealing thread pool. With `jobs = 1` nothing
//! is spawned and the evaluation order matches a sequential double loop, so
//! verdicts — including witnesses — are bit-identical whatever the worker
//! count: per-cell work never mutates shared state, and each cell's verdict
//! is a pure function of the precomputed sets.

use super::pool::{run_indexed, Jobs};
use crate::analyzer::{AnalyzerConfig, EngineKind, IndependenceAnalyzer, Verdict};
use crate::conflict::find_conflict;
use crate::engine::cdag::{CdagEngine, ChainDag, DagQueryChains};
use crate::engine::explicit::ExplicitEngine;
use crate::kbound::{k_of_query, k_of_update};
use crate::types::{QueryChains, UpdateChains};
use crate::universe::Universe;
use qui_schema::SchemaLike;
use qui_xquery::{Query, Update};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The verdicts of a full views × updates matrix, indexed `[update][view]`.
#[derive(Clone, Debug)]
pub struct MatrixVerdicts {
    n_views: usize,
    rows: Vec<Vec<Verdict>>,
}

impl MatrixVerdicts {
    /// Number of views (columns).
    pub fn n_views(&self) -> usize {
        self.n_views
    }

    /// Number of updates (rows).
    pub fn n_updates(&self) -> usize {
        self.rows.len()
    }

    /// The verdict for one cell.
    pub fn verdict(&self, update: usize, view: usize) -> &Verdict {
        &self.rows[update][view]
    }

    /// All verdicts for one update, in view order.
    pub fn row(&self, update: usize) -> &[Verdict] {
        &self.rows[update]
    }

    /// Per-view independence flags for one update (the historical
    /// `check_views` result shape).
    pub fn independent_flags(&self, update: usize) -> Vec<bool> {
        self.rows[update]
            .iter()
            .map(Verdict::is_independent)
            .collect()
    }

    /// Total number of independent cells in the matrix.
    pub fn independent_count(&self) -> usize {
        self.rows
            .iter()
            .flatten()
            .filter(|v| v.is_independent())
            .count()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.n_views * self.rows.len()
    }
}

/// Explicit-engine chain sets precomputed for one expression at one `k`
/// (`None` = the materialization budget was exceeded for that expression).
type ExplicitQueryCache = HashMap<(usize, usize), Option<Arc<QueryChains>>>;
type ExplicitUpdateCache = HashMap<(usize, usize), Option<Arc<UpdateChains>>>;
type CdagQueryCache = HashMap<(usize, usize), Arc<DagQueryChains>>;
type CdagUpdateCache = HashMap<(usize, usize), Arc<ChainDag>>;

/// The batch analyzer: precomputes shared chain sets for a view set and an
/// update set, then evaluates matrix cells in parallel.
///
/// This is the engine under [`IndependenceAnalyzer::check_views`],
/// [`matrix_report`](crate::explain::matrix_report) and the `qui matrix`
/// subcommand; it produces, for every cell, exactly the [`Verdict`] the
/// sequential [`IndependenceAnalyzer::check`] would.
pub struct BatchAnalyzer<'a, S: SchemaLike> {
    schema: &'a S,
    config: AnalyzerConfig,
    jobs: Jobs,
}

impl<'a, S: SchemaLike + Sync> BatchAnalyzer<'a, S> {
    /// Creates a batch analyzer with the default configuration.
    pub fn new(schema: &'a S) -> Self {
        BatchAnalyzer {
            schema,
            config: AnalyzerConfig::default(),
            jobs: Jobs::Auto,
        }
    }

    /// Creates a batch analyzer with an explicit configuration.
    pub fn with_config(schema: &'a S, config: AnalyzerConfig) -> Self {
        BatchAnalyzer {
            schema,
            config,
            jobs: Jobs::Auto,
        }
    }

    /// Sets the worker-count policy (`Jobs::Fixed(1)` = sequential).
    pub fn jobs(mut self, jobs: Jobs) -> Self {
        self.jobs = jobs;
        self
    }

    /// Analyzes the full matrix.
    pub fn analyze(&self, views: &[Query], updates: &[Update]) -> MatrixVerdicts {
        analyze_matrix(self.schema, views, updates, &self.config, self.jobs)
    }
}

/// Analyzes every (view, update) cell of the matrix, sharing chain inference
/// across cells and sharding the work over `jobs` workers.
pub fn analyze_matrix<S: SchemaLike + Sync>(
    schema: &S,
    views: &[Query],
    updates: &[Update],
    config: &AnalyzerConfig,
    jobs: Jobs,
) -> MatrixVerdicts {
    let n_views = views.len();
    if n_views == 0 || updates.is_empty() {
        return MatrixVerdicts {
            n_views,
            rows: updates.iter().map(|_| Vec::new()).collect(),
        };
    }

    let kq: Vec<usize> = views.iter().map(k_of_query).collect();
    let ku: Vec<usize> = updates.iter().map(k_of_update).collect();
    let pair_k = |vi: usize, ui: usize| config.k_override.unwrap_or(kq[vi] + ku[ui]);

    // ------------------------------------------------ explicit prepass
    // Each view (update) needs its chains at every distinct k it can be
    // paired with; with n distinct k_u values that is n inferences per view
    // instead of |U|.
    let mut query_tasks: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut update_tasks: BTreeSet<(usize, usize)> = BTreeSet::new();
    for vi in 0..views.len() {
        for ui in 0..updates.len() {
            let k = pair_k(vi, ui);
            query_tasks.insert((vi, k));
            update_tasks.insert((ui, k));
        }
    }

    let mut explicit_queries: ExplicitQueryCache = HashMap::new();
    let mut explicit_updates: ExplicitUpdateCache = HashMap::new();
    if config.engine != EngineKind::Cdag {
        let qt: Vec<(usize, usize)> = query_tasks.iter().copied().collect();
        let ut: Vec<(usize, usize)> = update_tasks.iter().copied().collect();
        let n_qt = qt.len();
        let results = run_indexed(jobs, n_qt + ut.len(), |i| {
            if i < n_qt {
                let (vi, k) = qt[i];
                PrepassOut::Query(vi, k, infer_query_explicit(schema, config, &views[vi], k))
            } else {
                let (ui, k) = ut[i - n_qt];
                PrepassOut::Update(
                    ui,
                    k,
                    infer_update_explicit(schema, config, &updates[ui], k),
                )
            }
        });
        for r in results {
            match r {
                PrepassOut::Query(vi, k, qc) => {
                    explicit_queries.insert((vi, k), qc.map(Arc::new));
                }
                PrepassOut::Update(ui, k, uc) => {
                    explicit_updates.insert((ui, k), uc.map(Arc::new));
                }
            }
        }
    }

    // ------------------------------------------------ CDAG prepass
    // Needed for every cell when the CDAG engine is forced, and — under the
    // auto policy — for the cells where either side of the explicit
    // inference overflowed its budget (the analyzer then falls back to the
    // CDAG engine for both sides of the pair).
    let mut cdag_query_tasks: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut cdag_update_tasks: BTreeSet<(usize, usize)> = BTreeSet::new();
    if config.engine != EngineKind::Explicit {
        for vi in 0..views.len() {
            for ui in 0..updates.len() {
                let k = pair_k(vi, ui);
                let explicit_ok = config.engine != EngineKind::Cdag
                    && explicit_queries.get(&(vi, k)).is_some_and(Option::is_some)
                    && explicit_updates.get(&(ui, k)).is_some_and(Option::is_some);
                if !explicit_ok {
                    cdag_query_tasks.insert((vi, k));
                    cdag_update_tasks.insert((ui, k));
                }
            }
        }
    }

    let mut cdag_queries: CdagQueryCache = HashMap::new();
    let mut cdag_updates: CdagUpdateCache = HashMap::new();
    if !cdag_query_tasks.is_empty() || !cdag_update_tasks.is_empty() {
        let qt: Vec<(usize, usize)> = cdag_query_tasks.iter().copied().collect();
        let ut: Vec<(usize, usize)> = cdag_update_tasks.iter().copied().collect();
        let n_qt = qt.len();
        let results = run_indexed(jobs, n_qt + ut.len(), |i| {
            if i < n_qt {
                let (vi, k) = qt[i];
                let eng = CdagEngine::new(schema, k).with_element_chains(config.element_chains);
                let qc = eng.infer_query(&eng.root_gamma(views[vi].free_vars()), &views[vi]);
                CdagOut::Query(vi, k, qc)
            } else {
                let (ui, k) = ut[i - n_qt];
                let eng = CdagEngine::new(schema, k).with_element_chains(config.element_chains);
                let uc = eng.infer_update(&eng.root_gamma(updates[ui].free_vars()), &updates[ui]);
                CdagOut::Update(ui, k, uc)
            }
        });
        for r in results {
            match r {
                CdagOut::Query(vi, k, qc) => {
                    cdag_queries.insert((vi, k), Arc::new(qc));
                }
                CdagOut::Update(ui, k, uc) => {
                    cdag_updates.insert((ui, k), Arc::new(uc));
                }
            }
        }
    }

    // ------------------------------------------------ cell pass
    let cells = run_indexed(jobs, views.len() * updates.len(), |cell| {
        let ui = cell / n_views;
        let vi = cell % n_views;
        cell_verdict(
            schema,
            config,
            (vi, ui),
            pair_k(vi, ui),
            (kq[vi], ku[ui]),
            (&explicit_queries, &explicit_updates),
            (&cdag_queries, &cdag_updates),
        )
    });
    let mut it = cells.into_iter();
    let rows: Vec<Vec<Verdict>> = (0..updates.len())
        .map(|_| it.by_ref().take(n_views).collect())
        .collect();
    MatrixVerdicts { n_views, rows }
}

enum PrepassOut {
    Query(usize, usize, Option<QueryChains>),
    Update(usize, usize, Option<UpdateChains>),
}

enum CdagOut {
    Query(usize, usize, DagQueryChains),
    Update(usize, usize, ChainDag),
}

/// Explicit query inference for one (expression, k); `None` on budget
/// overflow. Identical to what [`IndependenceAnalyzer::infer_explicit`]
/// computes for the query side of a pair.
fn infer_query_explicit<S: SchemaLike>(
    schema: &S,
    config: &AnalyzerConfig,
    q: &Query,
    k: usize,
) -> Option<QueryChains> {
    let universe = Universe::with_k(schema, k);
    let eng = ExplicitEngine::new(&universe, config.explicit_budget)
        .with_element_chains(config.element_chains);
    eng.infer_query(&eng.root_gamma(q.free_vars()), q).ok()
}

/// Explicit update inference for one (expression, k); `None` on overflow.
fn infer_update_explicit<S: SchemaLike>(
    schema: &S,
    config: &AnalyzerConfig,
    u: &Update,
    k: usize,
) -> Option<UpdateChains> {
    let universe = Universe::with_k(schema, k);
    let eng = ExplicitEngine::new(&universe, config.explicit_budget)
        .with_element_chains(config.element_chains);
    eng.infer_update(&eng.root_gamma(u.free_vars()), u).ok()
}

/// Produces one cell's verdict from the precomputed chain sets, mirroring
/// [`IndependenceAnalyzer::check`] case for case.
fn cell_verdict<S: SchemaLike>(
    schema: &S,
    config: &AnalyzerConfig,
    (vi, ui): (usize, usize),
    k: usize,
    (k_query, k_update): (usize, usize),
    (explicit_queries, explicit_updates): (&ExplicitQueryCache, &ExplicitUpdateCache),
    (cdag_queries, cdag_updates): (&CdagQueryCache, &CdagUpdateCache),
) -> Verdict {
    if config.engine != EngineKind::Cdag {
        let qc = explicit_queries.get(&(vi, k)).and_then(Option::as_ref);
        let uc = explicit_updates.get(&(ui, k)).and_then(Option::as_ref);
        if let (Some(qc), Some(uc)) = (qc, uc) {
            let witness = find_conflict(qc, uc);
            return Verdict {
                independent: witness.is_none(),
                k,
                k_query,
                k_update,
                engine_used: EngineKind::Explicit,
                query_chain_count: qc.total_len(),
                update_chain_count: uc.len(),
                witness,
            };
        }
        if config.engine == EngineKind::Explicit {
            // The caller insisted on the explicit engine; report the
            // conservative answer (dependence) rather than guessing.
            return Verdict {
                independent: false,
                k,
                k_query,
                k_update,
                engine_used: EngineKind::Explicit,
                witness: None,
                query_chain_count: 0,
                update_chain_count: 0,
            };
        }
    }
    let eng = CdagEngine::new(schema, k).with_element_chains(config.element_chains);
    let qc = &cdag_queries[&(vi, k)];
    let uc = &cdag_updates[&(ui, k)];
    Verdict {
        independent: eng.independent(qc, uc),
        k,
        k_query,
        k_update,
        engine_used: EngineKind::Cdag,
        witness: None,
        query_chain_count: qc.returns.edge_count() + qc.used.edge_count(),
        update_chain_count: uc.edge_count(),
    }
}

/// Asserts that the batch verdict for every cell equals the verdict of a
/// sequential per-pair [`IndependenceAnalyzer::check`]. Test-support helper
/// used by the equivalence suites; panics with the offending cell on any
/// mismatch.
pub fn assert_matches_sequential<S: SchemaLike + Sync>(
    schema: &S,
    views: &[Query],
    updates: &[Update],
    config: &AnalyzerConfig,
    matrix: &MatrixVerdicts,
) {
    let analyzer = IndependenceAnalyzer::with_config(schema, config.clone());
    for (ui, u) in updates.iter().enumerate() {
        for (vi, v) in views.iter().enumerate() {
            let seq = analyzer.check(v, u);
            let par = matrix.verdict(ui, vi);
            assert!(
                seq.is_independent() == par.is_independent()
                    && seq.k == par.k
                    && seq.k_query == par.k_query
                    && seq.k_update == par.k_update
                    && seq.engine_used == par.engine_used
                    && seq.witness == par.witness
                    && seq.query_chain_count == par.query_chain_count
                    && seq.update_chain_count == par.update_chain_count,
                "cell (view {vi}, update {ui}) diverged: sequential {seq:?} vs batch {par:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn figure1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    fn small_matrix() -> (Vec<Query>, Vec<Update>) {
        let views = ["//a//c", "//c", "//b", "//a", "//node()"]
            .iter()
            .map(|s| parse_query(s).unwrap())
            .collect();
        let updates = [
            "delete //b//c",
            "delete //c",
            "for $x in /a return insert <c/> into $x",
            "for $x in /a return rename $x as b",
        ]
        .iter()
        .map(|s| parse_update(s).unwrap())
        .collect();
        (views, updates)
    }

    #[test]
    fn batch_matches_sequential_for_every_engine_and_job_count() {
        let d = figure1();
        let (views, updates) = small_matrix();
        for engine in [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag] {
            let config = AnalyzerConfig {
                engine,
                ..Default::default()
            };
            for jobs in [1, 2, 8] {
                let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(jobs));
                assert_matches_sequential(&d, &views, &updates, &config, &m);
            }
        }
    }

    #[test]
    fn budget_overflow_falls_back_to_cdag_like_the_analyzer() {
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let views = vec![
            parse_query("//b//c//b").unwrap(),
            parse_query("//b").unwrap(),
        ];
        let updates = vec![parse_update("delete //c//b//c").unwrap()];
        let config = AnalyzerConfig {
            explicit_budget: 100,
            ..Default::default()
        };
        let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(2));
        assert_eq!(m.verdict(0, 0).engine_used, EngineKind::Cdag);
        assert_matches_sequential(&d, &views, &updates, &config, &m);
    }

    #[test]
    fn matrix_shape_and_counts() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let m = analyze_matrix(
            &d,
            &views,
            &updates,
            &AnalyzerConfig::default(),
            Jobs::Fixed(1),
        );
        assert_eq!(m.n_views(), 5);
        assert_eq!(m.n_updates(), 4);
        assert_eq!(m.cell_count(), 20);
        assert_eq!(m.row(0).len(), 5);
        assert_eq!(
            m.independent_flags(0),
            views
                .iter()
                .map(|v| IndependenceAnalyzer::new(&d)
                    .check(v, &updates[0])
                    .is_independent())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_inputs_yield_empty_matrices() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let m = analyze_matrix(&d, &[], &updates, &AnalyzerConfig::default(), Jobs::Auto);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.n_updates(), 4);
        let m = analyze_matrix(&d, &views, &[], &AnalyzerConfig::default(), Jobs::Auto);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.n_updates(), 0);
    }

    #[test]
    fn k_override_is_respected() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let config = AnalyzerConfig {
            k_override: Some(7),
            ..Default::default()
        };
        let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(2));
        assert!(m.rows.iter().flatten().all(|v| v.k == 7));
        assert_matches_sequential(&d, &views, &updates, &config, &m);
    }
}
