//! Batched analysis of the views × updates independence matrix.
//!
//! The naive matrix (what [`IndependenceAnalyzer::check`] in a double loop
//! gives you) re-runs chain inference for every cell: `|V| · |U|` query
//! inferences and as many update inferences. But inference is *per
//! expression*: the chains of a query depend only on the query and the
//! multiplicity bound `k`, never on which update it is paired with — and
//! symmetrically for updates. Since `k = k_q + k_u`, a view only ever needs
//! its chains at the handful of distinct `k_u` values present in the update
//! set (and vice versa), so the whole matrix needs `O(|V| + |U|)` inferences
//! (times the small number of distinct `k` values), after which every cell is
//! a cheap conflict check over two precomputed chain sets.
//!
//! Since the session API landed, the implementation of all of this lives in
//! [`crate::session`]: [`analyze_matrix`] constructs a one-shot
//! [`AnalysisSession`](crate::session::AnalysisSession), registers the
//! workload in bulk (one batched prepass: per-expression k-ladders for the
//! CDAG side, per-`(expression, k)` explicit inference for the cells the
//! CDAG could not prove, all sharded over the [`pool`](super::pool)
//! work-stealing thread pool), and returns the materialized matrix. With
//! `jobs = 1` nothing is spawned and the evaluation order matches a
//! sequential double loop, so verdicts — including witnesses — are
//! bit-identical whatever the worker count: per-cell work never mutates
//! shared state, and each cell's verdict is a pure function of the
//! precomputed sets. Long-lived callers should hold a session directly and
//! reuse it; these free functions are retained as thin stateless wrappers.

use super::pool::Jobs;
use crate::analyzer::{AnalyzerConfig, IndependenceAnalyzer, Verdict};
use crate::kbound::{k_of_query, k_of_update};
use crate::session::SessionBuilder;
use qui_schema::SchemaLike;
use qui_xquery::{Query, Update};
use std::collections::BTreeSet;

/// The verdicts of a full views × updates matrix, indexed `[update][view]`.
#[derive(Clone, Debug)]
pub struct MatrixVerdicts {
    n_views: usize,
    rows: Vec<Vec<Verdict>>,
}

impl MatrixVerdicts {
    /// Assembles a matrix from its rows (the session's materialized state).
    pub(crate) fn from_rows(n_views: usize, rows: Vec<Vec<Verdict>>) -> Self {
        MatrixVerdicts { n_views, rows }
    }

    /// Number of views (columns).
    pub fn n_views(&self) -> usize {
        self.n_views
    }

    /// Number of updates (rows).
    pub fn n_updates(&self) -> usize {
        self.rows.len()
    }

    /// The verdict for one cell.
    pub fn verdict(&self, update: usize, view: usize) -> &Verdict {
        &self.rows[update][view]
    }

    /// All verdicts for one update, in view order.
    pub fn row(&self, update: usize) -> &[Verdict] {
        &self.rows[update]
    }

    /// Per-view independence flags for one update (the historical
    /// `check_views` result shape).
    pub fn independent_flags(&self, update: usize) -> Vec<bool> {
        self.rows[update]
            .iter()
            .map(Verdict::is_independent)
            .collect()
    }

    /// Total number of independent cells in the matrix.
    pub fn independent_count(&self) -> usize {
        self.rows
            .iter()
            .flatten()
            .filter(|v| v.is_independent())
            .count()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.n_views * self.rows.len()
    }
}

/// The batch analyzer: a one-shot wrapper pairing a schema with a
/// configuration and a worker policy.
///
/// **Session note:** this type predates
/// [`AnalysisSession`](crate::session::AnalysisSession); it is retained as a
/// thin wrapper (every [`analyze`](Self::analyze) call builds a fresh
/// session). Long-lived callers should construct a session once and reuse
/// its caches across calls.
pub struct BatchAnalyzer<'a, S: SchemaLike> {
    schema: &'a S,
    config: AnalyzerConfig,
    jobs: Jobs,
}

impl<'a, S: SchemaLike + Sync> BatchAnalyzer<'a, S> {
    /// Creates a batch analyzer with the default configuration.
    pub fn new(schema: &'a S) -> Self {
        BatchAnalyzer {
            schema,
            config: AnalyzerConfig::default(),
            jobs: Jobs::Auto,
        }
    }

    /// Creates a batch analyzer with an explicit configuration.
    pub fn with_config(schema: &'a S, config: AnalyzerConfig) -> Self {
        BatchAnalyzer {
            schema,
            config,
            jobs: Jobs::Auto,
        }
    }

    /// Sets the worker-count policy (`Jobs::Fixed(1)` = sequential).
    pub fn jobs(mut self, jobs: Jobs) -> Self {
        self.jobs = jobs;
        self
    }

    /// Analyzes the full matrix.
    pub fn analyze(&self, views: &[Query], updates: &[Update]) -> MatrixVerdicts {
        analyze_matrix(self.schema, views, updates, &self.config, self.jobs)
    }
}

/// Analyzes every (view, update) cell of the matrix, sharing chain inference
/// across cells and sharding the work over `jobs` workers.
///
/// This is a stateless wrapper over [`crate::session::AnalysisSession`]: a
/// fresh session is built, the whole workload registered in one batched
/// pass, and the materialized matrix returned. Callers that analyze more
/// than one workload against the same schema should hold a session instead
/// and keep its caches warm.
pub fn analyze_matrix<S: SchemaLike + Sync>(
    schema: &S,
    views: &[Query],
    updates: &[Update],
    config: &AnalyzerConfig,
    jobs: Jobs,
) -> MatrixVerdicts {
    let mut session = SessionBuilder::new(schema)
        .config(config.clone())
        .jobs(jobs)
        .build();
    session.add_workload(
        views
            .iter()
            .enumerate()
            .map(|(i, q)| (format!("v{}", i + 1), q.clone())),
        updates
            .iter()
            .enumerate()
            .map(|(i, u)| (format!("u{}", i + 1), u.clone())),
    );
    session.into_verdicts()
}

/// One side's sorted `(expression index, k)` inference tasks.
pub type PrepassTasks = BTreeSet<(usize, usize)>;

/// The distinct `(expression index, k)` inference tasks of a full matrix
/// prepass (query side, update side). This is exactly the task set the CDAG
/// prepass covers under the CDAG-first auto policy; it is public so the
/// `cdag` perf harness measures the very same workload the production
/// prepass runs.
pub fn matrix_prepass_tasks(
    views: &[Query],
    updates: &[Update],
    k_override: Option<usize>,
) -> (PrepassTasks, PrepassTasks) {
    let kq: Vec<usize> = views.iter().map(k_of_query).collect();
    let ku: Vec<usize> = updates.iter().map(k_of_update).collect();
    let mut qt = BTreeSet::new();
    let mut ut = BTreeSet::new();
    for (vi, &kqv) in kq.iter().enumerate() {
        for (ui, &kuv) in ku.iter().enumerate() {
            let k = k_override.unwrap_or(kqv + kuv);
            qt.insert((vi, k));
            ut.insert((ui, k));
        }
    }
    (qt, ut)
}

/// Groups sorted `(expression, k)` tasks into per-expression ascending bound
/// lists — the shape the k-ladders' `walk_bounds` consumes. Public for the
/// same reason as [`matrix_prepass_tasks`].
pub fn group_prepass_tasks(tasks: &PrepassTasks) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &(i, k) in tasks {
        match groups.last_mut() {
            Some((gi, ks)) if *gi == i => ks.push(k),
            _ => groups.push((i, vec![k])),
        }
    }
    groups
}

/// Asserts that the batch verdict for every cell equals the verdict of a
/// sequential per-pair [`IndependenceAnalyzer::check`]. Test-support helper
/// used by the equivalence suites; panics with the offending cell on any
/// mismatch.
pub fn assert_matches_sequential<S: SchemaLike + Sync>(
    schema: &S,
    views: &[Query],
    updates: &[Update],
    config: &AnalyzerConfig,
    matrix: &MatrixVerdicts,
) {
    let analyzer = IndependenceAnalyzer::with_config(schema, config.clone());
    for (ui, u) in updates.iter().enumerate() {
        for (vi, v) in views.iter().enumerate() {
            let seq = analyzer.check(v, u);
            let par = matrix.verdict(ui, vi);
            assert!(
                seq.is_independent() == par.is_independent()
                    && seq.k == par.k
                    && seq.k_query == par.k_query
                    && seq.k_update == par.k_update
                    && seq.engine_used == par.engine_used
                    && seq.witness == par.witness
                    && seq.query_chain_count == par.query_chain_count
                    && seq.update_chain_count == par.update_chain_count,
                "cell (view {vi}, update {ui}) diverged: sequential {seq:?} vs batch {par:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::EngineKind;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn figure1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    fn small_matrix() -> (Vec<Query>, Vec<Update>) {
        let views = ["//a//c", "//c", "//b", "//a", "//node()"]
            .iter()
            .map(|s| parse_query(s).unwrap())
            .collect();
        let updates = [
            "delete //b//c",
            "delete //c",
            "for $x in /a return insert <c/> into $x",
            "for $x in /a return rename $x as b",
        ]
        .iter()
        .map(|s| parse_update(s).unwrap())
        .collect();
        (views, updates)
    }

    #[test]
    fn batch_matches_sequential_for_every_engine_and_job_count() {
        let d = figure1();
        let (views, updates) = small_matrix();
        for engine in [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag] {
            for cdag_first in [true, false] {
                let config = AnalyzerConfig {
                    engine,
                    cdag_first,
                    ..Default::default()
                };
                for jobs in [1, 2, 8] {
                    let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(jobs));
                    assert_matches_sequential(&d, &views, &updates, &config, &m);
                }
            }
        }
    }

    #[test]
    fn budget_overflow_falls_back_to_cdag_like_the_analyzer() {
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let views = vec![
            parse_query("//b//c//b").unwrap(),
            parse_query("//b").unwrap(),
        ];
        let updates = vec![parse_update("delete //c//b//c").unwrap()];
        let config = AnalyzerConfig {
            explicit_budget: 100,
            ..Default::default()
        };
        let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(2));
        assert_eq!(m.verdict(0, 0).engine_used, EngineKind::Cdag);
        assert_matches_sequential(&d, &views, &updates, &config, &m);
    }

    #[test]
    fn matrix_shape_and_counts() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let m = analyze_matrix(
            &d,
            &views,
            &updates,
            &AnalyzerConfig::default(),
            Jobs::Fixed(1),
        );
        assert_eq!(m.n_views(), 5);
        assert_eq!(m.n_updates(), 4);
        assert_eq!(m.cell_count(), 20);
        assert_eq!(m.row(0).len(), 5);
        assert_eq!(
            m.independent_flags(0),
            views
                .iter()
                .map(|v| IndependenceAnalyzer::new(&d)
                    .check(v, &updates[0])
                    .is_independent())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_inputs_yield_empty_matrices() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let m = analyze_matrix(&d, &[], &updates, &AnalyzerConfig::default(), Jobs::Auto);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.n_updates(), 4);
        let m = analyze_matrix(&d, &views, &[], &AnalyzerConfig::default(), Jobs::Auto);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.n_updates(), 0);
    }

    #[test]
    fn k_override_is_respected() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let config = AnalyzerConfig {
            k_override: Some(7),
            ..Default::default()
        };
        let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(2));
        assert!(m.rows.iter().flatten().all(|v| v.k == 7));
        assert_matches_sequential(&d, &views, &updates, &config, &m);
    }
}
