//! Batched analysis of the views × updates independence matrix.
//!
//! The naive matrix (what [`IndependenceAnalyzer::check`] in a double loop
//! gives you) re-runs chain inference for every cell: `|V| · |U|` query
//! inferences and as many update inferences. But inference is *per
//! expression*: the chains of a query depend only on the query and the
//! multiplicity bound `k`, never on which update it is paired with — and
//! symmetrically for updates. Since `k = k_q + k_u`, a view only ever needs
//! its chains at the handful of distinct `k_u` values present in the update
//! set (and vice versa), so the whole matrix needs `O(|V| + |U|)` inferences
//! (times the small number of distinct `k` values), after which every cell is
//! a cheap conflict check over two precomputed chain sets.
//!
//! On top of the per-`(expr, k)` sharing, the CDAG prepass walks each
//! expression's distinct `k` values in ascending order through a
//! [`QueryKLadder`]/[`UpdateKLadder`]: whenever the inference at the smallest
//! bound never hit its depth cap (every non-recursive expression), all later
//! bounds are served from the same DAG, collapsing the per-`(expr, k)` work
//! to per-`expr` work across *overlapping* bounds, not just identical ones.
//!
//! The engine order mirrors [`IndependenceAnalyzer::check`] cell for cell.
//! Under the default CDAG-first auto policy the CDAG pass runs every cell
//! and proves most independent ones outright; only the remaining cells'
//! expressions enter the explicit prepass, and explicit budget overflow
//! leaves the conservative CDAG verdict in place. The precomputed sets are
//! immutable and shared behind [`Arc`] across all cells; every pass is
//! sharded over the [`pool`](super::pool) work-stealing thread pool. With
//! `jobs = 1` nothing is spawned and the evaluation order matches a
//! sequential double loop, so verdicts — including witnesses — are
//! bit-identical whatever the worker count: per-cell work never mutates
//! shared state, and each cell's verdict is a pure function of the
//! precomputed sets.

use super::pool::{run_indexed, Jobs};
use crate::analyzer::{
    conservative_explicit_verdict, AnalyzerConfig, EngineKind, IndependenceAnalyzer, Verdict,
};
use crate::conflict::find_conflict;
use crate::engine::cdag::{CdagEngine, ChainDag, DagQueryChains, QueryKLadder, UpdateKLadder};
use crate::engine::explicit::ExplicitEngine;
use crate::kbound::{k_of_query, k_of_update};
use crate::types::{QueryChains, UpdateChains};
use crate::universe::Universe;
use qui_schema::SchemaLike;
use qui_xquery::{Query, Update};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The verdicts of a full views × updates matrix, indexed `[update][view]`.
#[derive(Clone, Debug)]
pub struct MatrixVerdicts {
    n_views: usize,
    rows: Vec<Vec<Verdict>>,
}

impl MatrixVerdicts {
    /// Number of views (columns).
    pub fn n_views(&self) -> usize {
        self.n_views
    }

    /// Number of updates (rows).
    pub fn n_updates(&self) -> usize {
        self.rows.len()
    }

    /// The verdict for one cell.
    pub fn verdict(&self, update: usize, view: usize) -> &Verdict {
        &self.rows[update][view]
    }

    /// All verdicts for one update, in view order.
    pub fn row(&self, update: usize) -> &[Verdict] {
        &self.rows[update]
    }

    /// Per-view independence flags for one update (the historical
    /// `check_views` result shape).
    pub fn independent_flags(&self, update: usize) -> Vec<bool> {
        self.rows[update]
            .iter()
            .map(Verdict::is_independent)
            .collect()
    }

    /// Total number of independent cells in the matrix.
    pub fn independent_count(&self) -> usize {
        self.rows
            .iter()
            .flatten()
            .filter(|v| v.is_independent())
            .count()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.n_views * self.rows.len()
    }
}

/// Explicit-engine chain sets precomputed for one expression at one `k`
/// (`None` = the materialization budget was exceeded for that expression).
type ExplicitQueryCache = HashMap<(usize, usize), Option<Arc<QueryChains>>>;
type ExplicitUpdateCache = HashMap<(usize, usize), Option<Arc<UpdateChains>>>;
type CdagQueryCache = HashMap<(usize, usize), Arc<DagQueryChains>>;
type CdagUpdateCache = HashMap<(usize, usize), Arc<ChainDag>>;

/// The batch analyzer: precomputes shared chain sets for a view set and an
/// update set, then evaluates matrix cells in parallel.
///
/// This is the engine under [`IndependenceAnalyzer::check_views`],
/// [`matrix_report`](crate::explain::matrix_report) and the `qui matrix`
/// subcommand; it produces, for every cell, exactly the [`Verdict`] the
/// sequential [`IndependenceAnalyzer::check`] would.
pub struct BatchAnalyzer<'a, S: SchemaLike> {
    schema: &'a S,
    config: AnalyzerConfig,
    jobs: Jobs,
}

impl<'a, S: SchemaLike + Sync> BatchAnalyzer<'a, S> {
    /// Creates a batch analyzer with the default configuration.
    pub fn new(schema: &'a S) -> Self {
        BatchAnalyzer {
            schema,
            config: AnalyzerConfig::default(),
            jobs: Jobs::Auto,
        }
    }

    /// Creates a batch analyzer with an explicit configuration.
    pub fn with_config(schema: &'a S, config: AnalyzerConfig) -> Self {
        BatchAnalyzer {
            schema,
            config,
            jobs: Jobs::Auto,
        }
    }

    /// Sets the worker-count policy (`Jobs::Fixed(1)` = sequential).
    pub fn jobs(mut self, jobs: Jobs) -> Self {
        self.jobs = jobs;
        self
    }

    /// Analyzes the full matrix.
    pub fn analyze(&self, views: &[Query], updates: &[Update]) -> MatrixVerdicts {
        analyze_matrix(self.schema, views, updates, &self.config, self.jobs)
    }
}

/// Analyzes every (view, update) cell of the matrix, sharing chain inference
/// across cells and sharding the work over `jobs` workers.
pub fn analyze_matrix<S: SchemaLike + Sync>(
    schema: &S,
    views: &[Query],
    updates: &[Update],
    config: &AnalyzerConfig,
    jobs: Jobs,
) -> MatrixVerdicts {
    let n_views = views.len();
    if n_views == 0 || updates.is_empty() {
        return MatrixVerdicts {
            n_views,
            rows: updates.iter().map(|_| Vec::new()).collect(),
        };
    }

    let kq: Vec<usize> = views.iter().map(k_of_query).collect();
    let ku: Vec<usize> = updates.iter().map(k_of_update).collect();
    let pair_k = |vi: usize, ui: usize| config.k_override.unwrap_or(kq[vi] + ku[ui]);
    let n_cells = views.len() * updates.len();
    let cell_pos = |cell: usize| (cell % n_views, cell / n_views); // (vi, ui)

    // ------------------------------------------------ CDAG prepass
    // Under the CDAG-first auto policy (and the forced CDAG engine) every
    // cell starts with a CDAG check, so the prepass covers all (expr, k)
    // pairs — each expression walking its bounds through a k-ladder.
    let cdag_all = config.engine == EngineKind::Cdag
        || (config.engine == EngineKind::Auto && config.cdag_first);
    let (mut cdag_queries, mut cdag_updates) = if cdag_all {
        let (qt, ut) = matrix_prepass_tasks(views, updates, config.k_override);
        cdag_prepass(schema, config, views, updates, &qt, &ut, jobs)
    } else {
        (CdagQueryCache::new(), CdagUpdateCache::new())
    };

    // ------------------------------------------------ CDAG cell pass
    // Precompute each cell's CDAG independence so the explicit prepass knows
    // which expressions still need the reference engine.
    let cdag_independent: Vec<Option<bool>> = if cdag_all {
        run_indexed(jobs, n_cells, |cell| {
            let (vi, ui) = cell_pos(cell);
            let k = pair_k(vi, ui);
            let eng = CdagEngine::new(schema, k).with_element_chains(config.element_chains);
            Some(eng.independent(&cdag_queries[&(vi, k)], &cdag_updates[&(ui, k)]))
        })
    } else {
        vec![None; n_cells]
    };

    // ------------------------------------------------ explicit prepass
    // Forced-explicit and legacy-auto need every expression; CDAG-first auto
    // only the expressions of cells the CDAG could not prove independent.
    let (explicit_queries, explicit_updates) = if config.engine != EngineKind::Cdag {
        let mut qt: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut ut: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (cell, proved) in cdag_independent.iter().enumerate() {
            let (vi, ui) = cell_pos(cell);
            if config.engine == EngineKind::Auto && config.cdag_first && *proved == Some(true) {
                continue;
            }
            let k = pair_k(vi, ui);
            qt.insert((vi, k));
            ut.insert((ui, k));
        }
        explicit_prepass(schema, config, views, updates, &qt, &ut, jobs)
    } else {
        (ExplicitQueryCache::new(), ExplicitUpdateCache::new())
    };

    // ------------------------------------------------ legacy CDAG prepass
    // Under the legacy (explicit-first) auto order the CDAG engine only runs
    // for the cells where either side of the explicit inference overflowed
    // its budget — mirrored cell for cell from the analyzer's fallback.
    if config.engine == EngineKind::Auto && !config.cdag_first {
        let mut qt: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut ut: BTreeSet<(usize, usize)> = BTreeSet::new();
        for cell in 0..n_cells {
            let (vi, ui) = cell_pos(cell);
            let k = pair_k(vi, ui);
            let explicit_ok = explicit_queries.get(&(vi, k)).is_some_and(Option::is_some)
                && explicit_updates.get(&(ui, k)).is_some_and(Option::is_some);
            if !explicit_ok {
                qt.insert((vi, k));
                ut.insert((ui, k));
            }
        }
        if !qt.is_empty() || !ut.is_empty() {
            let (cq, cu) = cdag_prepass(schema, config, views, updates, &qt, &ut, jobs);
            cdag_queries.extend(cq);
            cdag_updates.extend(cu);
        }
    }

    // ------------------------------------------------ cell pass
    let cells = run_indexed(jobs, n_cells, |cell| {
        let (vi, ui) = cell_pos(cell);
        cell_verdict(
            schema,
            config,
            (vi, ui),
            pair_k(vi, ui),
            (kq[vi], ku[ui]),
            (&explicit_queries, &explicit_updates),
            (&cdag_queries, &cdag_updates),
            cdag_independent[cell],
        )
    });
    let mut it = cells.into_iter();
    let rows: Vec<Vec<Verdict>> = (0..updates.len())
        .map(|_| it.by_ref().take(n_views).collect())
        .collect();
    MatrixVerdicts { n_views, rows }
}

/// One side's sorted `(expression index, k)` inference tasks.
pub type PrepassTasks = BTreeSet<(usize, usize)>;

/// The distinct `(expression index, k)` inference tasks of a full matrix
/// prepass (query side, update side). This is exactly the task set the CDAG
/// prepass covers under the CDAG-first auto policy; it is public so the
/// `cdag` perf harness measures the very same workload the production
/// prepass runs.
pub fn matrix_prepass_tasks(
    views: &[Query],
    updates: &[Update],
    k_override: Option<usize>,
) -> (PrepassTasks, PrepassTasks) {
    let kq: Vec<usize> = views.iter().map(k_of_query).collect();
    let ku: Vec<usize> = updates.iter().map(k_of_update).collect();
    let mut qt = BTreeSet::new();
    let mut ut = BTreeSet::new();
    for (vi, &kqv) in kq.iter().enumerate() {
        for (ui, &kuv) in ku.iter().enumerate() {
            let k = k_override.unwrap_or(kqv + kuv);
            qt.insert((vi, k));
            ut.insert((ui, k));
        }
    }
    (qt, ut)
}

/// Groups sorted `(expression, k)` tasks into per-expression ascending bound
/// lists — the shape the k-ladders' `walk_bounds` consumes. Public for the
/// same reason as [`matrix_prepass_tasks`].
pub fn group_prepass_tasks(tasks: &PrepassTasks) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &(i, k) in tasks {
        match groups.last_mut() {
            Some((gi, ks)) if *gi == i => ks.push(k),
            _ => groups.push((i, vec![k])),
        }
    }
    groups
}

enum PrepassOut {
    Query(usize, usize, Option<QueryChains>),
    Update(usize, usize, Option<UpdateChains>),
}

enum CdagOut {
    Query(usize, Vec<(usize, Arc<DagQueryChains>)>),
    Update(usize, Vec<(usize, Arc<ChainDag>)>),
}

/// Runs the explicit engine for every requested `(expression, k)` pair in
/// parallel; `None` marks a budget overflow.
fn explicit_prepass<S: SchemaLike + Sync>(
    schema: &S,
    config: &AnalyzerConfig,
    views: &[Query],
    updates: &[Update],
    query_tasks: &PrepassTasks,
    update_tasks: &PrepassTasks,
    jobs: Jobs,
) -> (ExplicitQueryCache, ExplicitUpdateCache) {
    let mut queries = ExplicitQueryCache::new();
    let mut updates_out = ExplicitUpdateCache::new();
    let qt: Vec<(usize, usize)> = query_tasks.iter().copied().collect();
    let ut: Vec<(usize, usize)> = update_tasks.iter().copied().collect();
    let n_qt = qt.len();
    let results = run_indexed(jobs, n_qt + ut.len(), |i| {
        if i < n_qt {
            let (vi, k) = qt[i];
            PrepassOut::Query(vi, k, infer_query_explicit(schema, config, &views[vi], k))
        } else {
            let (ui, k) = ut[i - n_qt];
            PrepassOut::Update(
                ui,
                k,
                infer_update_explicit(schema, config, &updates[ui], k),
            )
        }
    });
    for r in results {
        match r {
            PrepassOut::Query(vi, k, qc) => {
                queries.insert((vi, k), qc.map(Arc::new));
            }
            PrepassOut::Update(ui, k, uc) => {
                updates_out.insert((ui, k), uc.map(Arc::new));
            }
        }
    }
    (queries, updates_out)
}

/// Runs the CDAG engine for every requested `(expression, k)` pair, one
/// k-ladder per expression: tasks are grouped by expression, the distinct
/// bounds walked in ascending order, and a bound served from the ladder
/// cache shares the *same* `Arc` as the bound it was derived from.
fn cdag_prepass<S: SchemaLike + Sync>(
    schema: &S,
    config: &AnalyzerConfig,
    views: &[Query],
    updates: &[Update],
    query_tasks: &PrepassTasks,
    update_tasks: &PrepassTasks,
    jobs: Jobs,
) -> (CdagQueryCache, CdagUpdateCache) {
    // BTreeSet iteration is sorted by (expression, k), so consecutive runs
    // group into ascending-k ladders.
    let q_groups = group_prepass_tasks(query_tasks);
    let u_groups = group_prepass_tasks(update_tasks);
    let n_q = q_groups.len();
    let results = run_indexed(jobs, n_q + u_groups.len(), |i| {
        if i < n_q {
            let (vi, ks) = &q_groups[i];
            let (out, _) =
                QueryKLadder::walk_bounds(schema, &views[*vi], ks, config.element_chains);
            CdagOut::Query(*vi, out)
        } else {
            let (ui, ks) = &u_groups[i - n_q];
            let (out, _) =
                UpdateKLadder::walk_bounds(schema, &updates[*ui], ks, config.element_chains);
            CdagOut::Update(*ui, out)
        }
    });
    let mut queries = CdagQueryCache::new();
    let mut updates_out = CdagUpdateCache::new();
    for r in results {
        match r {
            CdagOut::Query(vi, ks) => {
                for (k, qc) in ks {
                    queries.insert((vi, k), qc);
                }
            }
            CdagOut::Update(ui, ks) => {
                for (k, uc) in ks {
                    updates_out.insert((ui, k), uc);
                }
            }
        }
    }
    (queries, updates_out)
}

/// Explicit query inference for one (expression, k); `None` on budget
/// overflow. Identical to what [`IndependenceAnalyzer::infer_explicit`]
/// computes for the query side of a pair.
fn infer_query_explicit<S: SchemaLike>(
    schema: &S,
    config: &AnalyzerConfig,
    q: &Query,
    k: usize,
) -> Option<QueryChains> {
    let universe = Universe::with_k(schema, k);
    let eng = ExplicitEngine::new(&universe, config.explicit_budget)
        .with_element_chains(config.element_chains);
    eng.infer_query(&eng.root_gamma(q.free_vars()), q).ok()
}

/// Explicit update inference for one (expression, k); `None` on overflow.
fn infer_update_explicit<S: SchemaLike>(
    schema: &S,
    config: &AnalyzerConfig,
    u: &Update,
    k: usize,
) -> Option<UpdateChains> {
    let universe = Universe::with_k(schema, k);
    let eng = ExplicitEngine::new(&universe, config.explicit_budget)
        .with_element_chains(config.element_chains);
    eng.infer_update(&eng.root_gamma(u.free_vars()), u).ok()
}

/// Produces one cell's verdict from the precomputed chain sets, mirroring
/// [`IndependenceAnalyzer::check`] case for case (including the engine
/// order selected by [`AnalyzerConfig::cdag_first`]).
#[allow(clippy::too_many_arguments)]
fn cell_verdict<S: SchemaLike>(
    schema: &S,
    config: &AnalyzerConfig,
    (vi, ui): (usize, usize),
    k: usize,
    (k_query, k_update): (usize, usize),
    (explicit_queries, explicit_updates): (&ExplicitQueryCache, &ExplicitUpdateCache),
    (cdag_queries, cdag_updates): (&CdagQueryCache, &CdagUpdateCache),
    cdag_independent: Option<bool>,
) -> Verdict {
    let explicit = || -> Option<Verdict> {
        let qc = explicit_queries.get(&(vi, k)).and_then(Option::as_ref)?;
        let uc = explicit_updates.get(&(ui, k)).and_then(Option::as_ref)?;
        let witness = find_conflict(qc, uc);
        Some(Verdict {
            independent: witness.is_none(),
            k,
            k_query,
            k_update,
            engine_used: EngineKind::Explicit,
            query_chain_count: qc.total_len(),
            update_chain_count: uc.len(),
            witness,
        })
    };
    let cdag = |independent: Option<bool>| -> Verdict {
        let qc = &cdag_queries[&(vi, k)];
        let uc = &cdag_updates[&(ui, k)];
        let independent = independent.unwrap_or_else(|| {
            let eng = CdagEngine::new(schema, k).with_element_chains(config.element_chains);
            eng.independent(qc, uc)
        });
        Verdict {
            independent,
            k,
            k_query,
            k_update,
            engine_used: EngineKind::Cdag,
            witness: None,
            query_chain_count: qc.returns.edge_count() + qc.used.edge_count(),
            update_chain_count: uc.edge_count(),
        }
    };
    match config.engine {
        EngineKind::Explicit => {
            explicit().unwrap_or_else(|| conservative_explicit_verdict((k, k_query, k_update)))
        }
        EngineKind::Cdag => cdag(cdag_independent),
        EngineKind::Auto if config.cdag_first => {
            if cdag_independent == Some(true) {
                return cdag(Some(true));
            }
            explicit().unwrap_or_else(|| cdag(cdag_independent))
        }
        EngineKind::Auto => explicit().unwrap_or_else(|| cdag(None)),
    }
}

/// Asserts that the batch verdict for every cell equals the verdict of a
/// sequential per-pair [`IndependenceAnalyzer::check`]. Test-support helper
/// used by the equivalence suites; panics with the offending cell on any
/// mismatch.
pub fn assert_matches_sequential<S: SchemaLike + Sync>(
    schema: &S,
    views: &[Query],
    updates: &[Update],
    config: &AnalyzerConfig,
    matrix: &MatrixVerdicts,
) {
    let analyzer = IndependenceAnalyzer::with_config(schema, config.clone());
    for (ui, u) in updates.iter().enumerate() {
        for (vi, v) in views.iter().enumerate() {
            let seq = analyzer.check(v, u);
            let par = matrix.verdict(ui, vi);
            assert!(
                seq.is_independent() == par.is_independent()
                    && seq.k == par.k
                    && seq.k_query == par.k_query
                    && seq.k_update == par.k_update
                    && seq.engine_used == par.engine_used
                    && seq.witness == par.witness
                    && seq.query_chain_count == par.query_chain_count
                    && seq.update_chain_count == par.update_chain_count,
                "cell (view {vi}, update {ui}) diverged: sequential {seq:?} vs batch {par:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qui_schema::Dtd;
    use qui_xquery::{parse_query, parse_update};

    fn figure1() -> Dtd {
        Dtd::parse_compact("doc -> (a|b)* ; a -> c ; b -> c", "doc").unwrap()
    }

    fn small_matrix() -> (Vec<Query>, Vec<Update>) {
        let views = ["//a//c", "//c", "//b", "//a", "//node()"]
            .iter()
            .map(|s| parse_query(s).unwrap())
            .collect();
        let updates = [
            "delete //b//c",
            "delete //c",
            "for $x in /a return insert <c/> into $x",
            "for $x in /a return rename $x as b",
        ]
        .iter()
        .map(|s| parse_update(s).unwrap())
        .collect();
        (views, updates)
    }

    #[test]
    fn batch_matches_sequential_for_every_engine_and_job_count() {
        let d = figure1();
        let (views, updates) = small_matrix();
        for engine in [EngineKind::Auto, EngineKind::Explicit, EngineKind::Cdag] {
            for cdag_first in [true, false] {
                let config = AnalyzerConfig {
                    engine,
                    cdag_first,
                    ..Default::default()
                };
                for jobs in [1, 2, 8] {
                    let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(jobs));
                    assert_matches_sequential(&d, &views, &updates, &config, &m);
                }
            }
        }
    }

    #[test]
    fn budget_overflow_falls_back_to_cdag_like_the_analyzer() {
        let d = Dtd::parse_compact("a -> (b|c)* ; b -> (b|c)* ; c -> (b|c)*", "a").unwrap();
        let views = vec![
            parse_query("//b//c//b").unwrap(),
            parse_query("//b").unwrap(),
        ];
        let updates = vec![parse_update("delete //c//b//c").unwrap()];
        let config = AnalyzerConfig {
            explicit_budget: 100,
            ..Default::default()
        };
        let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(2));
        assert_eq!(m.verdict(0, 0).engine_used, EngineKind::Cdag);
        assert_matches_sequential(&d, &views, &updates, &config, &m);
    }

    #[test]
    fn matrix_shape_and_counts() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let m = analyze_matrix(
            &d,
            &views,
            &updates,
            &AnalyzerConfig::default(),
            Jobs::Fixed(1),
        );
        assert_eq!(m.n_views(), 5);
        assert_eq!(m.n_updates(), 4);
        assert_eq!(m.cell_count(), 20);
        assert_eq!(m.row(0).len(), 5);
        assert_eq!(
            m.independent_flags(0),
            views
                .iter()
                .map(|v| IndependenceAnalyzer::new(&d)
                    .check(v, &updates[0])
                    .is_independent())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_inputs_yield_empty_matrices() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let m = analyze_matrix(&d, &[], &updates, &AnalyzerConfig::default(), Jobs::Auto);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.n_updates(), 4);
        let m = analyze_matrix(&d, &views, &[], &AnalyzerConfig::default(), Jobs::Auto);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.n_updates(), 0);
    }

    #[test]
    fn k_override_is_respected() {
        let d = figure1();
        let (views, updates) = small_matrix();
        let config = AnalyzerConfig {
            k_override: Some(7),
            ..Default::default()
        };
        let m = analyze_matrix(&d, &views, &updates, &config, Jobs::Fixed(2));
        assert!(m.rows.iter().flatten().all(|v| v.k == 7));
        assert_matches_sequential(&d, &views, &updates, &config, &m);
    }
}
