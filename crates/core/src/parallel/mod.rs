//! Parallel batch analysis of the views × updates matrix.
//!
//! The paper's headline experiment (Fig. 3.a) checks every update of the
//! workload against every view — an embarrassingly parallel workload with a
//! lot of shared structure. This subsystem exploits both properties:
//!
//! * [`pool`] is a dependency-free work-stealing thread pool: scoped threads
//!   pulling chunks of work from a shared injector queue, controlled by
//!   [`Jobs`] (`--jobs N` on the CLI, the `QUI_JOBS` environment variable, or
//!   the machine's available parallelism).
//! * [`batch`] computes each update's chain inference and each view's chain
//!   inference **once per distinct multiplicity bound `k`** and shares the
//!   immutable results (behind [`std::sync::Arc`]) across all matrix cells,
//!   turning `O(|V|·|U|)` inferences into `O(|V|+|U|)` plus cheap per-cell
//!   conflict checks. The implementation lives in [`crate::session`]
//!   (the batch entry points are thin one-shot-session wrappers), which
//!   additionally keeps those shared results warm across calls and edits.
//!
//! `jobs = 1` runs the same batched algorithm strictly sequentially (no
//! threads spawned), and any worker count produces bit-identical verdicts —
//! the property tests in `tests/parallel_matrix.rs` assert parallel ≡
//! sequential on random schemas and workloads.

pub mod batch;
pub mod pool;

pub use batch::{
    analyze_matrix, assert_matches_sequential, group_prepass_tasks, matrix_prepass_tasks,
    BatchAnalyzer, MatrixVerdicts,
};
pub use pool::{machine_parallelism, run_indexed, Jobs, JOBS_ENV};
