//! A dependency-free work-stealing thread pool built on scoped threads.
//!
//! The pool is deliberately minimal: callers hand it a number of independent
//! work items (`0..len`) and a `Fn(usize) -> R`; workers pull contiguous
//! chunks of indices from a shared injector queue until it runs dry, so a
//! worker that finishes its chunk early immediately steals the next one
//! instead of idling behind a static partition. Results come back in index
//! order regardless of which worker produced them, and `jobs = 1` runs the
//! items inline on the caller's thread — no threads are spawned and the
//! execution is bit-identical to a plain sequential loop, which is what the
//! parallel ≡ sequential property tests rely on.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable consulted by [`Jobs::Auto`].
pub const JOBS_ENV: &str = "QUI_JOBS";

/// Worker-count selection for the batch analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Jobs {
    /// Use `QUI_JOBS` when set, otherwise the machine's available
    /// parallelism.
    #[default]
    Auto,
    /// Use exactly this many workers (clamped to at least 1). `Fixed(1)` is
    /// the strictly sequential path.
    Fixed(usize),
}

impl Jobs {
    /// An explicit worker count (`--jobs N`), clamped to at least 1.
    pub fn fixed(n: usize) -> Jobs {
        Jobs::Fixed(n.max(1))
    }

    /// The worker policy implied by the environment: `Jobs::Fixed(n)` when
    /// `QUI_JOBS` is set to a positive integer, `Jobs::Auto` otherwise.
    ///
    /// This is the single place `QUI_JOBS` is interpreted — the CLI and the
    /// harness entry points all resolve their "no `--jobs` flag given"
    /// default through it.
    pub fn from_env() -> Jobs {
        match env_jobs() {
            Some(n) => Jobs::Fixed(n),
            None => Jobs::Auto,
        }
    }

    /// Resolves the selection to a concrete worker count.
    pub fn resolve(self) -> usize {
        match self {
            Jobs::Fixed(n) => n.max(1),
            Jobs::Auto => match Jobs::from_env() {
                Jobs::Fixed(n) => n,
                Jobs::Auto => machine_parallelism(),
            },
        }
    }
}

/// The `QUI_JOBS` override, when set to a positive integer.
fn env_jobs() -> Option<usize> {
    let raw = std::env::var(JOBS_ENV).ok()?;
    raw.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// The number of hardware threads available to this process (at least 1).
pub fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The shared injector queue: hands out contiguous chunks of `0..len`.
///
/// Chunks are sized so each worker performs a handful of steals over the
/// whole run — small enough that uneven cell costs cannot strand the tail of
/// the queue behind one slow worker, large enough to amortize the atomic
/// fetch-add.
struct Injector {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl Injector {
    fn new(len: usize, workers: usize) -> Self {
        let chunk = (len / (workers * 8)).max(1);
        Injector {
            next: AtomicUsize::new(0),
            len,
            chunk,
        }
    }

    fn steal(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// Applies `f` to every index in `0..len` using up to `jobs` workers and
/// returns the results in index order.
///
/// `f` only needs `Sync` (shared state is borrowed, not moved): the scoped
/// threads all borrow the same closure and the same inputs, so immutable
/// batch state — schemas, precomputed chain sets — is shared without any
/// cloning. A panic in any worker propagates to the caller once the scope
/// joins.
pub fn run_indexed<R, F>(jobs: Jobs, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = jobs.resolve().min(len.max(1));
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let injector = Injector::new(len, workers);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                while let Some(range) = injector.steal() {
                    for i in range {
                        local.push((i, f(i)));
                    }
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [Jobs::Fixed(1), Jobs::Fixed(2), Jobs::Fixed(8)] {
            let out = run_indexed(jobs, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(Jobs::Fixed(4), 1000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(run_indexed(Jobs::Fixed(4), 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(Jobs::Fixed(4), 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn fixed_is_clamped_and_resolves() {
        assert_eq!(Jobs::fixed(0).resolve(), 1);
        assert_eq!(Jobs::Fixed(3).resolve(), 3);
        assert!(Jobs::Auto.resolve() >= 1);
    }

    #[test]
    fn fixed_jobs_actually_use_multiple_os_threads() {
        // Guards against an inline-fallback bug silently serializing the
        // pool (which would mask every parallel win while keeping results
        // correct): with 8 workers over deliberately slow tasks, at least
        // two distinct OS threads must run tasks — true even on a
        // single-core machine, since sleeping workers yield the core.
        let ids: HashSet<std::thread::ThreadId> = run_indexed(Jobs::Fixed(8), 32, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        })
        .into_iter()
        .collect();
        assert!(ids.len() > 1, "expected >1 OS thread, got {}", ids.len());
    }

    #[test]
    fn injector_hands_out_disjoint_covering_chunks() {
        let inj = Injector::new(37, 3);
        let mut seen = Vec::new();
        while let Some(r) = inj.steal() {
            seen.extend(r);
        }
        assert_eq!(seen, (0..37).collect::<Vec<_>>());
    }
}
